"""Tests for repro.io (CSV / JSON persistence)."""

import pytest

from repro.core import Worker, WorkerPool
from repro.estimation import AnswerMatrix
from repro.io import (
    budget_table_to_json,
    load_answers_csv,
    load_pool_csv,
    load_pool_json,
    pool_from_json,
    pool_to_json,
    save_answers_csv,
    save_budget_table_json,
    save_pool_csv,
    save_pool_json,
)


class TestPoolCSV:
    def test_round_trip(self, figure1_pool, tmp_path):
        path = tmp_path / "pool.csv"
        save_pool_csv(figure1_pool, path)
        loaded = load_pool_csv(path)
        assert loaded == figure1_pool

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,quality\nw1,0.5\n")
        with pytest.raises(ValueError, match="expected columns"):
            load_pool_csv(path)

    def test_bad_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("worker_id,quality,cost\nw1,not-a-number,1\n")
        with pytest.raises(ValueError, match="bad.csv:2"):
            load_pool_csv(path)

    def test_out_of_range_quality_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("worker_id,quality,cost\nw1,1.5,1\n")
        with pytest.raises(ValueError):
            load_pool_csv(path)


class TestPoolJSON:
    def test_round_trip_string(self, figure1_pool):
        assert pool_from_json(pool_to_json(figure1_pool)) == figure1_pool

    def test_round_trip_file(self, figure1_pool, tmp_path):
        path = tmp_path / "pool.json"
        save_pool_json(figure1_pool, path)
        assert load_pool_json(path) == figure1_pool

    def test_missing_key(self):
        with pytest.raises(ValueError, match="workers"):
            pool_from_json("{}")


class TestAnswersCSV:
    def test_round_trip(self, tmp_path):
        answers = AnswerMatrix(num_labels=3)
        answers.record("w1", "t1", 2)
        answers.record("w1", "t2", 0)
        answers.record("w2", "t1", 1)
        path = tmp_path / "answers.csv"
        save_answers_csv(answers, path)
        loaded = load_answers_csv(path, num_labels=3)
        assert loaded.num_answers == 3
        assert loaded.answers_by("w1") == {"t1": 2, "t2": 0}

    def test_label_domain_enforced_on_load(self, tmp_path):
        path = tmp_path / "answers.csv"
        path.write_text("worker_id,task_id,label\nw1,t1,2\n")
        with pytest.raises(ValueError):
            load_answers_csv(path, num_labels=2)

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "answers.csv"
        path.write_text("who,what\nw1,t1\n")
        with pytest.raises(ValueError, match="expected columns"):
            load_answers_csv(path)


class TestBudgetTableJSON:
    def test_export(self, figure1_pool, tmp_path):
        import json

        import numpy as np

        from repro.selection import (
            ExhaustiveSelector,
            JQObjective,
            budget_quality_table,
        )

        table = budget_quality_table(
            figure1_pool, [5, 15], ExhaustiveSelector(JQObjective()),
            rng=np.random.default_rng(0),
        )
        payload = json.loads(budget_table_to_json(table))
        assert len(payload["rows"]) == 2
        assert payload["rows"][0]["jq"] == pytest.approx(0.75)
        path = tmp_path / "table.json"
        save_budget_table_json(table, path)
        assert json.loads(path.read_text()) == payload
