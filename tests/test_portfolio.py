"""Tests for repro.portfolio (multi-task budget allocation)."""

import numpy as np
import pytest

from repro.core import Worker, WorkerPool
from repro.frontier import Frontier, FrontierPoint, exact_frontier
from repro.portfolio import (
    CampaignPlan,
    TaskAllocation,
    allocate_budget,
    concave_envelope,
    plan_campaign,
)


def frontier(*points):
    return Frontier(
        tuple(FrontierPoint(c, j, (f"w{i}",)) for i, (c, j) in enumerate(points)),
        exact=True,
    )


class TestConcaveEnvelope:
    def test_keeps_concave_points(self):
        pts = frontier((1, 0.7), (2, 0.85), (3, 0.9)).points
        hull = concave_envelope(pts, 0.5)
        assert [p.cost for p in hull] == [0, 1, 2, 3]

    def test_removes_convex_dip(self):
        # The middle point gains little; a rational spender skips it.
        pts = frontier((1, 0.55), (2, 0.9)).points
        hull = concave_envelope(pts, 0.5)
        assert [p.cost for p in hull] == [0, 2]

    def test_drops_points_below_baseline(self):
        pts = frontier((1, 0.4), (2, 0.8)).points
        hull = concave_envelope(pts, 0.5)
        assert [p.cost for p in hull] == [0, 2]

    def test_slopes_strictly_decrease(self):
        pts = frontier((1, 0.7), (2, 0.8), (4, 0.95), (8, 0.99)).points
        hull = concave_envelope(pts, 0.5)
        slopes = [
            (b.jq - a.jq) / (b.cost - a.cost)
            for a, b in zip(hull, hull[1:])
        ]
        assert all(s1 > s2 - 1e-12 for s1, s2 in zip(slopes, slopes[1:]))


class TestAllocateBudget:
    def test_prefers_high_marginal_task(self):
        frontiers = {
            "easy": frontier((1, 0.95)),   # huge gain per unit
            "hard": frontier((1, 0.55)),   # tiny gain per unit
        }
        plan = allocate_budget(frontiers, budget=1)
        assert plan.allocation_for("easy").point is not None
        assert plan.allocation_for("hard").point is None
        assert plan.total_cost == 1

    def test_splits_budget_when_affordable(self):
        frontiers = {
            "a": frontier((1, 0.8)),
            "b": frontier((1, 0.75)),
        }
        plan = allocate_budget(frontiers, budget=2)
        assert plan.allocation_for("a").point is not None
        assert plan.allocation_for("b").point is not None
        assert plan.total_jq == pytest.approx(0.8 + 0.75)

    def test_respects_budget(self):
        frontiers = {
            "a": frontier((1, 0.8), (5, 0.99)),
            "b": frontier((1, 0.75), (5, 0.98)),
        }
        plan = allocate_budget(frontiers, budget=3)
        assert plan.total_cost <= 3 + 1e-9

    def test_zero_budget(self):
        plan = allocate_budget({"a": frontier((1, 0.9))}, budget=0)
        assert plan.total_cost == 0
        assert plan.mean_jq == 0.5

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            allocate_budget({}, budget=-1)

    def test_monotone_in_budget(self):
        frontiers = {
            "a": frontier((1, 0.7), (2, 0.85), (4, 0.95)),
            "b": frontier((1, 0.65), (3, 0.9)),
        }
        jqs = [
            allocate_budget(frontiers, budget=b).total_jq
            for b in (0, 1, 2, 4, 7)
        ]
        assert all(x <= y + 1e-12 for x, y in zip(jqs, jqs[1:]))

    def test_matches_brute_force_small(self):
        """Greedy on concave envelopes is optimal when the budget lands
        on step boundaries; verify against brute force."""
        frontiers = {
            "a": frontier((1, 0.7), (2, 0.85)),
            "b": frontier((1, 0.8), (3, 0.9)),
        }
        budget = 3
        plan = allocate_budget(frontiers, budget)
        # Brute force over all (point-or-none) combinations.
        best = 0.0
        options_a = [None] + list(frontiers["a"].points)
        options_b = [None] + list(frontiers["b"].points)
        for pa in options_a:
            for pb in options_b:
                cost = (pa.cost if pa else 0) + (pb.cost if pb else 0)
                if cost > budget:
                    continue
                jq = (pa.jq if pa else 0.5) + (pb.jq if pb else 0.5)
                best = max(best, jq)
        assert plan.total_jq == pytest.approx(best)

    def test_render(self):
        plan = allocate_budget({"a": frontier((1, 0.9))}, budget=1)
        text = plan.render()
        assert "Task" in text and "90.00%" in text


class TestPlanCampaign:
    def test_end_to_end_small_pools(self, rng):
        pools = {
            f"q{i}": WorkerPool(
                Worker(f"q{i}-w{j}", float(q), float(c))
                for j, (q, c) in enumerate(
                    zip(rng.uniform(0.55, 0.9, 5), rng.uniform(0.5, 2.0, 5))
                )
            )
            for i in range(4)
        }
        plan = plan_campaign(pools, budget=6.0, rng=rng)
        assert isinstance(plan, CampaignPlan)
        assert plan.total_cost <= 6.0 + 1e-9
        assert plan.mean_jq > 0.5  # funding helps

    def test_unknown_task_lookup(self):
        plan = CampaignPlan((TaskAllocation("a", None),), 1.0, 0.5)
        with pytest.raises(KeyError):
            plan.allocation_for("missing")
