"""The HTTP serving layer: endpoint correctness, adversarial traffic,
daemon lifecycle, and the HTTP-vs-in-process fingerprint parity pin.

The parity pin is the load-bearing test: a seeded client fleet driving
a campaign over the wire (POST /tasks, GET /assignments, POST /votes)
must land on a fingerprint byte-identical to the same fleet driving the
synchronous facade in-process — across shard counts and state backends.
"""

import hashlib
import json
import re
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import (
    Campaign,
    CampaignConfig,
    CampaignServer,
    EngineTask,
    LoopMailbox,
    NoOpenOffer,
    SQLiteBackend,
    ServerError,
)
from repro.simulation import SyntheticPoolConfig, generate_pool

# ---------------------------------------------------------------------------
# Workload helpers
# ---------------------------------------------------------------------------


def make_pool(num_workers=16, seed=11):
    rng = np.random.default_rng(seed)
    return generate_pool(
        SyntheticPoolConfig(num_workers=num_workers, quality_ceiling=0.95),
        rng,
    )


def make_tasks(num_tasks=10, seed=3):
    rng = np.random.default_rng(seed)
    truths = rng.integers(0, 2, size=num_tasks)
    return [
        EngineTask(f"t{i:03d}", ground_truth=int(t))
        for i, t in enumerate(truths)
    ]


def task_rows(tasks):
    return [
        {"task_id": t.task_id, "prior": t.prior, "ground_truth": t.ground_truth}
        for t in tasks
    ]


def make_config(**overrides):
    defaults = dict(
        budget=40.0,
        capacity=3,
        batch_size=4,
        confidence_target=0.95,
        seed=7,
        ingestion="async",
        vote_source="external",
        ingest_grace=0.02,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def fleet_vote(task_id, worker_id, seed=0):
    """Deterministic vote for (task, worker): the seeded fleet's crowd."""
    digest = hashlib.sha256(
        f"{seed}:{task_id}:{worker_id}".encode()
    ).hexdigest()
    return int(digest, 16) & 1


# ---------------------------------------------------------------------------
# HTTP helpers
# ---------------------------------------------------------------------------


def http_get(url, raw=False):
    with urllib.request.urlopen(url, timeout=10) as response:
        body = response.read()
        if raw:
            return response.status, body.decode()
        return response.status, json.loads(body)


def http_post(url, payload, timeout=10):
    """POST JSON; returns (status, body) without raising on 4xx/5xx."""
    data = (
        payload if isinstance(payload, bytes)
        else json.dumps(payload).encode()
    )
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class serving:
    """Context manager: a Campaign served by a CampaignServer on an
    ephemeral port, with the serve loop on a background thread.  Always
    shuts the listener down; joins the loop when the test drained it."""

    def __init__(self, config=None, backend=None, campaign=None, **server_kw):
        self.campaign = campaign or Campaign.open(
            make_pool(), config or make_config(), backend=backend
        )
        self.server = CampaignServer(self.campaign, port=0, **server_kw)
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.metrics = None

    def _serve(self):
        self.metrics = self.server.serve()

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc_info):
        self.server.stop()
        self.thread.join(timeout=10)
        self.server.shutdown()
        if not self.campaign._closed:
            self.campaign.close()

    @property
    def url(self):
        return self.server.url

    def join(self, timeout=20):
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "serve loop failed to finish"
        return self.metrics


# ---------------------------------------------------------------------------
# Seeded client fleets — the same sweep discipline in-process and on the wire
# ---------------------------------------------------------------------------


def barrier_http(url, deadline=20.0):
    """Wait until every accepted task is seated (idle && staged == 0 &&
    queued_events == 0) — the documented client barrier."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        _, status = http_get(url + "/status")
        if (
            status["idle"]
            and status["staged"] == 0
            and status["queued_events"] == 0
        ):
            return status
        time.sleep(0.005)
    raise AssertionError("campaign never quiesced")


def drive_fleet_http(url, worker_ids, seed=0, deadline=30.0):
    """Sweep workers in sorted order, voting on every open offer, until
    the campaign holds no open offers and no active tasks."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        _, status = http_get(url + "/status")
        if (
            status["open_offers"] == 0
            and status["active"] == 0
            and status["staged"] == 0
            and status["queued_events"] == 0
        ):
            return
        progressed = False
        for worker_id in sorted(worker_ids):
            _, payload = http_get(f"{url}/assignments?worker={worker_id}")
            for row in sorted(
                payload["assignments"], key=lambda r: r["task_id"]
            ):
                code, _ = http_post(url + "/votes", {
                    "task_id": row["task_id"],
                    "worker_id": worker_id,
                    "vote": fleet_vote(row["task_id"], worker_id, seed),
                })
                assert code in (200, 409), code
                if code == 200:
                    progressed = True
        if not progressed:
            time.sleep(0.01)
    raise AssertionError("HTTP fleet never drained the campaign")


def drive_fleet_in_process(campaign, worker_ids, seed=0, max_sweeps=500):
    """The same fleet against the synchronous facade."""
    for _ in range(max_sweeps):
        offers = campaign.offers
        if offers.open_count == 0 and not campaign.engine._active:
            return
        progressed = False
        for worker_id in sorted(worker_ids):
            for row in sorted(
                campaign.assignments(worker_id),
                key=lambda r: r["task_id"],
            ):
                try:
                    campaign.vote(
                        row["task_id"],
                        worker_id,
                        fleet_vote(row["task_id"], worker_id, seed),
                    )
                    progressed = True
                except NoOpenOffer:
                    pass
        if not progressed:
            raise AssertionError("in-process fleet stalled")
    raise AssertionError("in-process fleet never drained the campaign")


def run_http_campaign(config, backend, tasks, fleet_seed=0):
    with serving(config=config, backend=backend) as srv:
        worker_ids = list(srv.campaign.registry.worker_ids)
        code, body = http_post(
            srv.url + "/tasks", {"tasks": task_rows(tasks), "spacing": 1.0}
        )
        assert code == 202 and body["staged"] == len(tasks)
        barrier_http(srv.url)
        drive_fleet_http(srv.url, worker_ids, seed=fleet_seed)
        code, _ = http_post(srv.url + "/admin/close", {"mode": "drain"})
        assert code == 200
        metrics = srv.join()
        assert srv.campaign.done
        return metrics.fingerprint(), metrics


def run_in_process_campaign(config, backend, tasks, fleet_seed=0):
    campaign = Campaign.open(make_pool(), config, backend=backend)
    worker_ids = list(campaign.registry.worker_ids)
    campaign.submit(tasks)
    campaign.run()  # seats the juries; pauses awaiting external votes
    drive_fleet_in_process(campaign, worker_ids, seed=fleet_seed)
    campaign.close_intake()
    metrics = campaign.run()
    assert campaign.done
    fingerprint = metrics.fingerprint()
    campaign.close()
    return fingerprint, metrics


# ---------------------------------------------------------------------------
# The tentpole pin: HTTP == in-process, across shards × backends
# ---------------------------------------------------------------------------


class TestFingerprintParity:
    @pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_http_fleet_matches_in_process(
        self, num_shards, backend_kind, tmp_path
    ):
        tasks = make_tasks(num_tasks=8)

        def backend(tag):
            if backend_kind == "memory":
                return None
            return SQLiteBackend(tmp_path / f"{tag}.db")

        config = make_config(num_shards=num_shards)
        http_fp, http_metrics = run_http_campaign(
            config, backend("http"), tasks
        )
        sync_fp, sync_metrics = run_in_process_campaign(
            config, backend("sync"), tasks
        )
        assert http_metrics.completed == len(tasks)
        assert http_metrics.votes_cast == sync_metrics.votes_cast
        assert http_metrics.votes_cancelled == sync_metrics.votes_cancelled
        assert http_fp == sync_fp

    def test_fleet_seed_changes_the_outcome(self):
        # The pin above is meaningful only if the fingerprint actually
        # depends on the votes the fleet casts.
        tasks = make_tasks(num_tasks=8)
        fp_a, _ = run_in_process_campaign(make_config(), None, tasks, 0)
        fp_b, _ = run_in_process_campaign(make_config(), None, tasks, 99)
        assert fp_a != fp_b


# ---------------------------------------------------------------------------
# Endpoint correctness and hostile payloads
# ---------------------------------------------------------------------------


class TestEndpoints:
    def test_status_reports_live_counters(self):
        with serving() as srv:
            tasks = make_tasks(num_tasks=4)
            code, body = http_post(
                srv.url + "/tasks", {"tasks": task_rows(tasks)}
            )
            assert code == 202 and body == {"staged": 4}
            status = barrier_http(srv.url)
            assert status["submitted"] == 4
            assert status["active"] == 4
            assert status["vote_source"] == "external"
            assert status["open_offers"] > 0
            assert status["serving"] is True
            assert status["done"] is False

    def test_metrics_endpoint_serves_prometheus_text(self):
        with serving(config=make_config(telemetry="on")) as srv:
            http_post(srv.url + "/tasks", {"tasks": task_rows(make_tasks(4))})
            barrier_http(srv.url)
            status, body = http_get(srv.url + "/metrics", raw=True)
            assert status == 200
            assert "repro_engine_tasks_submitted_total 4" in body

    def test_assignments_requires_worker_param(self):
        with serving() as srv:
            code, body = http_post(srv.url + "/tasks", {
                "tasks": task_rows(make_tasks(2))})
            assert code == 202
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_get(srv.url + "/assignments")
            assert excinfo.value.code == 400

    def test_unknown_routes_404(self):
        with serving() as srv:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_get(srv.url + "/nope")
            assert excinfo.value.code == 404
            code, _ = http_post(srv.url + "/nope", {})
            assert code == 404

    def test_invalid_json_400(self):
        with serving() as srv:
            code, body = http_post(srv.url + "/tasks", b"{not json")
            assert code == 400
            assert "JSON" in body["error"]

    def test_non_object_body_400(self):
        with serving() as srv:
            code, _ = http_post(srv.url + "/tasks", b"[1, 2, 3]")
            assert code == 400

    def test_oversized_body_413(self):
        with serving(max_body=256) as srv:
            bomb = {"tasks": [{"task_id": "x" * 1000}]}
            code, body = http_post(srv.url + "/tasks", bomb)
            assert code == 413
            assert "cap" in body["error"]

    def test_task_payload_validation_400(self):
        with serving() as srv:
            for payload in (
                {},
                {"tasks": []},
                {"tasks": "t0"},
                {"tasks": [42]},
                {"tasks": [{"prior": 0.5}]},
                {"tasks": [{"task_id": ""}]},
                {"tasks": [{"task_id": "t0", "prior": "high"}]},
            ):
                code, _ = http_post(srv.url + "/tasks", payload)
                assert code == 400, payload

    def test_duplicate_task_409(self):
        with serving() as srv:
            rows = task_rows(make_tasks(2))
            code, _ = http_post(srv.url + "/tasks", {"tasks": rows})
            assert code == 202
            barrier_http(srv.url)
            code, body = http_post(srv.url + "/tasks", {"tasks": rows})
            assert code == 409
            assert "duplicate" in body["error"]

    def test_vote_payload_validation_400(self):
        with serving() as srv:
            for payload in (
                {},
                {"task_id": "t", "worker_id": "w"},
                {"task_id": "t", "worker_id": "w", "vote": 2},
                {"task_id": "t", "worker_id": "w", "vote": "1"},
                {"task_id": "t", "worker_id": "w", "vote": True},
                {"task_id": "t", "worker_id": 3, "vote": 1},
                {"task_id": None, "worker_id": "w", "vote": 0},
            ):
                code, _ = http_post(srv.url + "/votes", payload)
                assert code == 400, payload

    def test_vote_without_offer_409(self):
        with serving() as srv:
            code, body = http_post(srv.url + "/votes", {
                "task_id": "ghost", "worker_id": "w0", "vote": 1})
            assert code == 409

    def test_simulated_campaign_rejects_external_votes(self):
        with serving(config=make_config(vote_source="simulated")) as srv:
            code, body = http_post(srv.url + "/votes", {
                "task_id": "t", "worker_id": "w", "vote": 1})
            assert code == 409
            assert "simulate" in body["error"]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_get(srv.url + "/assignments?worker=w0")
            assert excinfo.value.code == 409

    def test_simulated_campaign_still_serves_tasks(self):
        # Tasks over the wire, votes simulated in-engine: the serving
        # layer works for pure task-intake deployments too.
        with serving(config=make_config(vote_source="simulated")) as srv:
            code, _ = http_post(
                srv.url + "/tasks", {"tasks": task_rows(make_tasks(4))}
            )
            assert code == 202
            code, _ = http_post(srv.url + "/admin/close", {"mode": "drain"})
            assert code == 200
            metrics = srv.join()
            assert metrics.completed == 4

    def test_submit_after_close_409(self):
        with serving() as srv:
            code, _ = http_post(srv.url + "/admin/close", {"mode": "drain"})
            assert code == 200
            srv.join()
            code, _ = http_post(
                srv.url + "/tasks", {"tasks": task_rows(make_tasks(1))}
            )
            assert code == 409

    def test_close_mode_validation(self):
        with serving() as srv:
            code, _ = http_post(
                srv.url + "/admin/close", {"mode": "detonate"}
            )
            assert code == 400


# ---------------------------------------------------------------------------
# Adversarial traffic
# ---------------------------------------------------------------------------


class TestAdversarialTraffic:
    def test_spammer_double_votes_are_rejected(self):
        """A worker replaying the same vote gets exactly one acceptance;
        the campaign's vote accounting stays exact."""
        with serving() as srv:
            http_post(srv.url + "/tasks", {"tasks": task_rows(make_tasks(2))})
            barrier_http(srv.url)
            # Pick a worker the engine actually seated.
            row = srv.campaign.offers.open_offers()[0]
            outcomes = []
            for _ in range(5):
                code, _ = http_post(srv.url + "/votes", {
                    "task_id": row["task_id"],
                    "worker_id": row["worker_id"],
                    "vote": 1,
                })
                outcomes.append(code)
            assert outcomes.count(200) == 1
            assert outcomes.count(409) == 4
            _, status = http_get(srv.url + "/status")
            assert status["votes_cast"] == 1

    def test_latency_skewed_concurrent_fleet_completes(self):
        """Workers voting concurrently with wildly different latencies:
        no deadlock, no lost votes, every task completes."""
        config = make_config(budget=60.0)
        with serving(config=config) as srv:
            worker_ids = list(srv.campaign.registry.worker_ids)
            tasks = make_tasks(num_tasks=6)
            http_post(srv.url + "/tasks", {"tasks": task_rows(tasks)})
            barrier_http(srv.url)
            stop = threading.Event()
            errors = []

            def worker_loop(worker_id, delay):
                try:
                    while not stop.is_set():
                        _, payload = http_get(
                            f"{srv.url}/assignments?worker={worker_id}"
                        )
                        if not payload["assignments"]:
                            time.sleep(delay)
                            continue
                        for row in payload["assignments"]:
                            code, _ = http_post(srv.url + "/votes", {
                                "task_id": row["task_id"],
                                "worker_id": worker_id,
                                "vote": fleet_vote(row["task_id"], worker_id),
                            })
                            assert code in (200, 409), code
                            time.sleep(delay)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=worker_loop,
                    args=(worker_id, 0.001 * (1 + 20 * (i % 3 == 0))),
                    daemon=True,
                )
                for i, worker_id in enumerate(worker_ids)
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, status = http_get(srv.url + "/status")
                if status["active"] == 0 and status["open_offers"] == 0:
                    break
                time.sleep(0.02)
            stop.set()
            for thread in threads:
                thread.join(timeout=5)
            assert not errors, errors
            http_post(srv.url + "/admin/close", {"mode": "drain"})
            metrics = srv.join()
            assert metrics.completed == len(tasks)
            records = metrics.records
            assert sum(r.votes_used for r in records) == metrics.votes_cast

    def test_hostile_payload_storm_leaves_campaign_consistent(self):
        """A barrage of malformed requests must not perturb a normal
        workload running through the same server."""
        with serving() as srv:
            garbage = [
                (srv.url + "/votes", b"\xff\xfe\x00"),
                (srv.url + "/tasks", b'{"tasks": [{"task_id": 1}]}'),
                (srv.url + "/votes", {"task_id": "t000", "vote": 7}),
                (srv.url + "/admin/close", {"mode": "wipe"}),
                (srv.url + "/elsewhere", {}),
            ]
            for target, payload in garbage * 10:
                code, _ = http_post(target, payload)
                assert 400 <= code < 500
            tasks = make_tasks(num_tasks=4)
            worker_ids = list(srv.campaign.registry.worker_ids)
            code, _ = http_post(srv.url + "/tasks", {"tasks": task_rows(tasks)})
            assert code == 202
            barrier_http(srv.url)
            drive_fleet_http(srv.url, worker_ids)
            http_post(srv.url + "/admin/close", {"mode": "drain"})
            metrics = srv.join()
            assert metrics.completed == len(tasks)


# ---------------------------------------------------------------------------
# Hostile Prometheus labels through the live exporter (satellite 2)
# ---------------------------------------------------------------------------

#: One Prometheus text-format sample line: name{labels} value — label
#: values may contain any character except raw newline/quote/backslash,
#: which must appear escaped.
_PROM_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*")*\})?'
    r' \S+$'
)


def assert_valid_prometheus(body):
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _PROM_SAMPLE.match(line), f"invalid exposition line: {line!r}"


class TestHostileMetricsLabels:
    def test_metrics_endpoint_survives_hostile_producer_names(self):
        hostile = 'evil"producer\nname\\with everything'
        with serving(config=make_config(telemetry="on")) as srv:
            thread = threading.Thread(
                target=srv.campaign.submit,
                args=(make_tasks(3),),
                name=hostile,
            )
            thread.start()
            thread.join(timeout=10)
            barrier_http(srv.url)
            status, body = http_get(srv.url + "/metrics", raw=True)
            assert status == 200
            assert_valid_prometheus(body)
            assert 'evil\\"producer\\nname\\\\with everything' in body

    def test_server_response_labels_are_escaped(self):
        with serving(config=make_config(telemetry="on")) as srv:
            code, _ = http_post(srv.url + '/votes?x="\n', {})
            assert code in (400, 404)
            _, body = http_get(srv.url + "/metrics", raw=True)
            assert_valid_prometheus(body)


# ---------------------------------------------------------------------------
# Daemon lifecycle (satellite 4)
# ---------------------------------------------------------------------------


class TestDaemonLifecycle:
    def test_close_intake_ends_serve(self):
        with serving() as srv:
            http_post(srv.url + "/tasks", {"tasks": task_rows(make_tasks(2))})
            barrier_http(srv.url)
            worker_ids = list(srv.campaign.registry.worker_ids)
            drive_fleet_http(srv.url, worker_ids)
            code, body = http_post(srv.url + "/admin/close", {"mode": "drain"})
            assert code == 200 and body == {"closing": "drain"}
            metrics = srv.join()
            assert srv.campaign.done
            assert metrics.completed == 2

    def test_close_stop_pauses_without_finalizing(self):
        with serving() as srv:
            http_post(srv.url + "/tasks", {"tasks": task_rows(make_tasks(2))})
            barrier_http(srv.url)
            code, _ = http_post(srv.url + "/admin/close", {"mode": "stop"})
            assert code == 200
            srv.join()
            assert not srv.campaign.done
            assert srv.campaign.engine._active

    def test_admin_checkpoint_persists_mid_serve(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "live.db")
        with serving(backend=backend) as srv:
            http_post(srv.url + "/tasks", {"tasks": task_rows(make_tasks(3))})
            barrier_http(srv.url)
            code, body = http_post(srv.url + "/admin/checkpoint", {})
            assert code == 200 and body["checkpointed"] is True
        assert backend.exists()

    def test_serve_stop_checkpoint_resume_is_fingerprint_identical(
        self, tmp_path
    ):
        """The daemon pin: pause a served campaign mid-flight, resume
        it from the checkpoint, finish the fleet — byte-identical to
        the same workload served without interruption."""
        tasks = make_tasks(num_tasks=6)
        baseline_fp, _ = run_http_campaign(make_config(), None, tasks)

        backend = SQLiteBackend(tmp_path / "paused.db")
        campaign = Campaign.open(make_pool(), make_config(), backend=backend)
        worker_ids = list(campaign.registry.worker_ids)
        with serving(campaign=campaign) as srv:
            http_post(srv.url + "/tasks", {"tasks": task_rows(tasks)})
            barrier_http(srv.url)
            # Deliver the first sweep's worth of votes for two workers,
            # then pause mid-campaign.
            for worker_id in sorted(worker_ids)[:2]:
                _, payload = http_get(
                    f"{srv.url}/assignments?worker={worker_id}"
                )
                for row in sorted(
                    payload["assignments"], key=lambda r: r["task_id"]
                ):
                    http_post(srv.url + "/votes", {
                        "task_id": row["task_id"],
                        "worker_id": worker_id,
                        "vote": fleet_vote(row["task_id"], worker_id),
                    })
            srv.server.stop()
            srv.join()
            assert not campaign.done
            campaign.checkpoint()
        campaign.close()

        resumed = Campaign.resume(backend)
        assert resumed.offers.open_count > 0  # offers rebuilt on resume
        with serving(campaign=resumed) as srv:
            drive_fleet_http(srv.url, worker_ids)
            http_post(srv.url + "/admin/close", {"mode": "drain"})
            metrics = srv.join()
            assert resumed.done
            assert metrics.fingerprint() == baseline_fp

    def test_stopped_server_rejects_staged_commands(self):
        with serving() as srv:
            srv.server.stop()
            srv.join()
            code, body = http_post(srv.url + "/admin/checkpoint", {})
            assert code == 503
            assert "no longer serving" in body["error"]


# ---------------------------------------------------------------------------
# Backpressure hints: Retry-After derived from the admit-latency EWMA
# ---------------------------------------------------------------------------


def http_post_headers(url, payload):
    """POST JSON; returns (status, headers) without raising on 4xx/5xx."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            response.read()
            return response.status, dict(response.headers)
    except urllib.error.HTTPError as error:
        error.read()
        return error.code, dict(error.headers)


class TestRetryAfterHint:
    def test_cold_engine_floors_at_one_second(self):
        # Before any admit the EWMA is unset: the hint is the 1s floor
        # (the historical hardcoded hint — light campaigns keep it).
        campaign = Campaign.open(make_pool(), make_config())
        with CampaignServer(campaign, port=0) as server:
            assert server.retry_after_hint() == 1
        campaign.close()

    def test_heavy_campaign_scales_the_hint(self):
        # ewma * (max_pending / batch_size): time to drain one full
        # intake buffer, floored at 1s and capped at 60s.
        campaign = Campaign.open(
            make_pool(),
            make_config(batch_size=25, ingest_max_pending=100),
        )
        with CampaignServer(campaign, port=0) as server:
            campaign.engine.admit_latency_ewma = 2.0
            assert server.retry_after_hint() == 8
            campaign.engine.admit_latency_ewma = 0.001
            assert server.retry_after_hint() == 1  # floor
            campaign.engine.admit_latency_ewma = 1e9
            assert server.retry_after_hint() == 60  # cap
        campaign.close()

    def test_503_carries_the_derived_hint_both_regimes(self):
        campaign = Campaign.open(
            make_pool(), make_config(ingest_max_pending=100)
        )
        with serving(campaign=campaign) as srv:
            srv.server.stop()
            srv.join()
            # Cold regime: no admits observed yet → the floor.
            code, headers = http_post_headers(
                srv.url + "/admin/checkpoint", {}
            )
            assert code == 503
            assert headers["Retry-After"] == "1"
            # Heavy regime: a slow admit EWMA must push the hint out —
            # the hardcoded "1" invited retry storms exactly here.
            campaign.engine.admit_latency_ewma = 2.0
            code, headers = http_post_headers(
                srv.url + "/admin/checkpoint", {}
            )
            assert code == 503
            assert headers["Retry-After"] == "50"  # 2.0s * (100/4)


# ---------------------------------------------------------------------------
# LoopMailbox unit behavior
# ---------------------------------------------------------------------------


class TestLoopMailbox:
    def test_call_blocks_until_drained(self):
        mailbox = LoopMailbox()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(mailbox.call(lambda: 42)),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 5
        while mailbox.pending == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        for command in mailbox.drain():
            command.run()
        thread.join(timeout=5)
        assert results == [42]
        assert mailbox.pending == 0

    def test_call_propagates_the_commands_exception(self):
        mailbox = LoopMailbox()
        errors = []

        def caller():
            try:
                mailbox.call(self._boom)
            except RuntimeError as exc:
                errors.append(str(exc))

        thread = threading.Thread(target=caller, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5
        while mailbox.pending == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        for command in mailbox.drain():
            command.run()
        thread.join(timeout=5)
        assert errors == ["kaboom"]

    @staticmethod
    def _boom():
        raise RuntimeError("kaboom")

    def test_call_times_out_when_nobody_drains(self):
        mailbox = LoopMailbox()
        with pytest.raises(ServerError, match="did not apply"):
            mailbox.call(lambda: None, timeout=0.05)

    def test_reject_all_fails_pending_and_future_calls(self):
        mailbox = LoopMailbox()
        outcome = []

        def caller():
            try:
                mailbox.call(lambda: None, timeout=10)
            except ServerError as exc:
                outcome.append(str(exc))

        thread = threading.Thread(target=caller, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5
        while mailbox.pending == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        mailbox.reject_all(ServerError("loop gone"))
        thread.join(timeout=5)
        assert outcome == ["loop gone"]
        with pytest.raises(ServerError, match="loop gone"):
            mailbox.call(lambda: None)

    def test_kick_fires_on_every_call(self):
        kicks = []
        mailbox = LoopMailbox(kick=lambda: kicks.append(1))
        thread = threading.Thread(
            target=lambda: mailbox.call(lambda: None, timeout=10),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 5
        while not kicks and time.monotonic() < deadline:
            time.sleep(0.001)
        assert kicks
        for command in mailbox.drain():
            command.run()
        thread.join(timeout=5)


class TestServerConstruction:
    def test_requires_async_ingestion(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_FORCE_INGESTION", raising=False)
        campaign = Campaign.open(
            make_pool(), make_config(ingestion="sync")
        )
        with pytest.raises(ValueError, match="async"):
            CampaignServer(campaign)
        campaign.close()

    def test_ephemeral_port_is_reported(self):
        campaign = Campaign.open(make_pool(), make_config())
        with CampaignServer(campaign, port=0) as server:
            assert server.port != 0
            assert str(server.port) in server.url
        campaign.close()
