"""Randomized campaign-invariant and concurrency stress harness.

The DB-nets direction in PAPERS.md treats state transitions of a
data-aware process as explicit, checkable invariants.  This suite makes
that executable for the (sharded) campaign engine: seeded randomized
campaigns across pool sizes, shard counts, and routing policies, with
the global serving invariants asserted **after every event** the loop
dispatches:

* **capacity** — no worker ever seated above their concurrent cap;
* **budget** — gross reservations net of refunds never exceed the
  campaign budget, and the allocator's entitlement never exceeds it;
* **ledger conservation** — every granted unit is either reserved by a
  shard or re-absorbed, cumulatively and exactly;
* **spend** — workers are only ever paid out of reserved cost.

End-of-run laws (refund conservation across shard re-absorption, spend
reconciliation between registry and metrics, every submitted task
completing) and **byte-identical replay** for identical seeds round out
the harness.

The second half is the *concurrency* stress harness for the async
ingestion + parallel shard dispatch path (`repro.engine.ingest`): the
same per-event laws under randomized seeded interleavings
(submit-while-running producers, pause/checkpoint mid-flight, shard
rebalance under load), byte-identical replay of seeded interleavings,
and the deterministic-mode pins — a preloaded or run-boundary-fed
async campaign must reproduce the sync path's fingerprint, and
parallel shard dispatch must reproduce sequential dispatch exactly.
"""

import threading

import numpy as np
import pytest

from repro.engine import (
    AsyncIngestLoop,
    Campaign,
    CampaignConfig,
    CampaignEngine,
    EngineConfig,
    EngineTask,
    InterleavingSchedule,
    MemoryBackend,
    SQLiteBackend,
    ShardedCampaignEngine,
    ShardedScheduler,
    ShardingConfig,
)
from repro.simulation import SyntheticPoolConfig, generate_pool

EPS = 1e-9
SEEDS = (1, 7, 13, 42, 2015)


class InvariantViolation(AssertionError):
    pass


class _CheckedMixin:
    """Engine mixin asserting the global invariants after every event."""

    def _dispatch(self, event):
        super()._dispatch(event)
        self.check_invariants()

    def check_invariants(self):
        budget = self.config.budget
        for state in self.registry.states:
            if state.load > state.capacity:
                raise InvariantViolation(
                    f"worker {state.worker.worker_id} seated "
                    f"{state.load}/{state.capacity}"
                )
            if state.peak_load > state.capacity:
                raise InvariantViolation(
                    f"worker {state.worker.worker_id} peaked above capacity"
                )

        scheduler = self.scheduler
        if scheduler is None:
            return
        if isinstance(scheduler, ShardedScheduler):
            allocator = scheduler.allocator
            gross_reserved = allocator.reserved
            refunded = allocator.refunded
            if allocator.entitled > budget + EPS:
                raise InvariantViolation(
                    f"entitled {allocator.entitled} beyond budget {budget}"
                )
            ledger_gap = abs(
                allocator.granted
                - (allocator.reserved + allocator.reabsorbed)
            )
            if ledger_gap > 1e-6:
                raise InvariantViolation(
                    f"allocator ledger leaks: granted {allocator.granted} "
                    f"!= reserved {allocator.reserved} "
                    f"+ reabsorbed {allocator.reabsorbed}"
                )
            shard_reserved = sum(
                shard.scheduler.reserved for shard in scheduler.shards
            )
            if abs(shard_reserved - gross_reserved) > 1e-6:
                raise InvariantViolation(
                    f"shard reservations {shard_reserved} diverge from "
                    f"allocator ledger {gross_reserved}"
                )
        else:
            gross_reserved = scheduler.reserved
            refunded = scheduler.refunded

        if gross_reserved - refunded > budget + 1e-6:
            raise InvariantViolation(
                f"net reservations {gross_reserved - refunded} "
                f"exceed budget {budget}"
            )
        # Workers are only ever paid out of reserved jury cost.
        if self.registry.total_spend > gross_reserved + 1e-6:
            raise InvariantViolation(
                f"worker payouts {self.registry.total_spend} exceed "
                f"gross reservations {gross_reserved}"
            )


class CheckedEngine(_CheckedMixin, CampaignEngine):
    pass


class CheckedShardedEngine(_CheckedMixin, ShardedCampaignEngine):
    pass


def build_campaign(
    seed,
    pool_size,
    shards,
    num_tasks=60,
    policy="hash",
    checked=True,
    reestimate_every=0,
    rebalance_threshold=0.25,
):
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=pool_size, quality_ceiling=0.95), rng
    )
    config = EngineConfig(
        budget=0.3 * num_tasks,
        capacity=3,
        batch_size=20,
        confidence_target=0.95,
        reestimate_every=reestimate_every,
        seed=seed,
    )
    if shards == 0:  # the plain, pre-sharding engine
        cls = CheckedEngine if checked else CampaignEngine
        engine = cls(pool, config)
    else:
        cls = CheckedShardedEngine if checked else ShardedCampaignEngine
        engine = cls(
            pool,
            config,
            ShardingConfig(
                shards,
                policy=policy,
                rebalance_threshold=rebalance_threshold,
            ),
        )
    truths = rng.integers(0, 2, size=num_tasks)
    engine.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    return engine


def final_laws(engine, metrics):
    """End-of-run conservation laws, common to every configuration."""
    budget = engine.config.budget
    assert metrics.completed == metrics.submitted
    assert metrics.total_spend <= budget + 1e-6
    # Every landed vote was paid exactly once: the registry's payout
    # ledger and the per-task records must reconcile.
    assert metrics.total_spend == pytest.approx(
        engine.registry.total_spend, abs=1e-9
    )
    if isinstance(engine.scheduler, ShardedScheduler):
        allocator = engine.scheduler.allocator
        # Refund conservation across shard re-absorption: everything
        # the tasks handed back landed in the allocator's pot.
        assert allocator.refunded == pytest.approx(
            metrics.total_refunded, abs=1e-9
        )
        assert allocator.granted == pytest.approx(
            allocator.reserved + allocator.reabsorbed, abs=1e-6
        )
        assert metrics.allocator_snapshot is not None
        assert metrics.shard_snapshots is not None
        reserved = sum(s.reserved for s in metrics.shard_snapshots)
        assert reserved == pytest.approx(allocator.reserved, abs=1e-6)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("pool_size,shards", [(12, 1), (24, 2), (48, 4)])
def test_invariants_hold_after_every_event(seed, pool_size, shards):
    # Rotate routing policies with the seed so all three are exercised
    # across the matrix.
    policy = ("hash", "least-loaded", "quality-balanced")[seed % 3]
    engine = build_campaign(seed, pool_size, shards, policy=policy)
    metrics = engine.run()
    final_laws(engine, metrics)


@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_under_quality_drift(seed):
    """Re-estimation perturbs every quality estimate mid-campaign;
    the budget and capacity laws must be indifferent to it."""
    engine = build_campaign(
        seed, 32, 4, policy="least-loaded", reestimate_every=25
    )
    metrics = engine.run()
    final_laws(engine, metrics)
    assert metrics.reestimations > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_replay_is_byte_identical(seed):
    """Identical seeds => identical campaigns, fingerprint-for-
    fingerprint — across a run that routes, grants, rebalances, and
    early-stops."""
    first = build_campaign(seed, 32, 4, checked=False).run()
    second = build_campaign(seed, 32, 4, checked=False).run()
    assert first.fingerprint() == second.fingerprint()


@pytest.mark.parametrize("seed", SEEDS)
def test_single_shard_matches_presharding_engine(seed):
    """The single-shard path is pinned to the pre-sharding engine:
    same seed => byte-identical metrics (fingerprints cover every task
    record at full float precision plus all campaign counters)."""
    plain = build_campaign(seed, 16, 0, checked=False).run()
    sharded = build_campaign(seed, 16, 1, checked=False).run()
    assert plain.fingerprint() == sharded.fingerprint()


def test_unfunded_starved_campaign_still_conserves():
    """Zero budget: every task must complete unfunded, spend nothing,
    and violate nothing."""
    rng = np.random.default_rng(3)
    pool = generate_pool(SyntheticPoolConfig(num_workers=8), rng)
    config = EngineConfig(budget=0.0, capacity=2, batch_size=5, seed=3)
    engine = CheckedShardedEngine(pool, config, ShardingConfig(2))
    engine.submit(EngineTask(f"t{i}") for i in range(20))
    metrics = engine.run()
    final_laws(engine, metrics)
    assert metrics.unfunded == 20
    assert metrics.total_spend == 0.0


def test_wide_frontier_pool_campaign_conserves():
    """A candidate pool past the old [1, 12] cap (and past the dense
    lattice at 14): scheduler frontiers build through the streamed
    lattice sweep, and every per-event and end-of-run conservation law
    must hold exactly as before."""
    rng = np.random.default_rng(11)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=18, quality_ceiling=0.95), rng
    )
    config = EngineConfig(
        budget=6.0,
        capacity=3,
        batch_size=10,
        confidence_target=0.95,
        frontier_pool_size=15,
        seed=11,
    )
    engine = CheckedEngine(pool, config)
    engine.submit(EngineTask(f"t{i}") for i in range(20))
    metrics = engine.run()
    final_laws(engine, metrics)
    assert metrics.completed == 20


def build_facade_campaign(
    seed,
    pool_size,
    shards,
    backend=None,
    num_tasks=60,
    reestimate_every=0,
    submit=True,
    **config_kwargs,
):
    """The :func:`build_campaign` scenario through the Campaign facade.
    Extra keyword arguments reach :class:`CampaignConfig` (the async
    and parallel-dispatch knobs); ``submit=False`` returns the campaign
    with its tasks unsubmitted, for script-driven interleavings."""
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=pool_size, quality_ceiling=0.95), rng
    )
    config = CampaignConfig(
        budget=0.3 * num_tasks,
        capacity=3,
        batch_size=20,
        confidence_target=0.95,
        reestimate_every=reestimate_every,
        seed=seed,
        num_shards=shards,
        **config_kwargs,
    )
    campaign = Campaign.open(pool, config, backend=backend)
    truths = rng.integers(0, 2, size=num_tasks)
    tasks = [
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    ]
    if submit:
        campaign.submit(tasks)
        return campaign
    return campaign, tasks


CHECKPOINT_SEEDS = SEEDS[:3]


@pytest.mark.parametrize("seed", CHECKPOINT_SEEDS)
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
def test_checkpoint_resume_is_byte_identical(
    seed, shards, backend_kind, tmp_path
):
    """A campaign checkpointed mid-run and resumed from its backend
    must finish with a metrics fingerprint byte-identical to an
    uninterrupted run — the full persistence surface (registry, votes,
    ledgers, shard membership, caches, frontier memos, pending events,
    in-flight sessions, RNG) is on the line, across seeds x shard
    counts x backends."""
    pool_size = 16 if shards == 1 else 48
    uninterrupted = build_facade_campaign(seed, pool_size, shards)
    reference = uninterrupted.run().fingerprint()

    path = tmp_path / f"{seed}-{shards}.db"
    if backend_kind == "memory":
        backend = MemoryBackend()
    else:
        backend = SQLiteBackend(path)
    interrupted = build_facade_campaign(seed, pool_size, shards, backend)
    # Cut at a seed-dependent point so the matrix hits different loop
    # phases (mid-batch, mid-jury, between re-estimations).
    interrupted.run(until=10 + (seed % 3) * 15)
    assert not interrupted.done
    interrupted.checkpoint()
    if backend_kind == "sqlite":
        # The realistic restart: the process dies, a new one reopens
        # the file.  (A MemoryBackend's whole point is living in the
        # process, so it is resumed in place.)
        interrupted.close()
        backend = SQLiteBackend(path)

    resumed = Campaign.resume(backend)
    assert resumed.run().fingerprint() == reference
    final_laws(resumed.engine, resumed.metrics)


@pytest.mark.parametrize("seed", CHECKPOINT_SEEDS)
def test_checkpoint_resume_under_quality_drift(seed, tmp_path):
    """Re-estimation perturbs every quality estimate from streamed
    votes; resume must restore the answer matrix (in both iteration
    orders) and the drifted estimates exactly or EM diverges."""
    backend = SQLiteBackend(tmp_path / "drift.db")
    reference = build_facade_campaign(
        seed, 32, 4, num_tasks=80, reestimate_every=25
    )
    fingerprint = reference.run().fingerprint()
    assert reference.metrics.reestimations > 0

    interrupted = build_facade_campaign(
        seed, 32, 4, backend, num_tasks=80, reestimate_every=25
    )
    interrupted.run(until=40)
    interrupted.checkpoint()
    resumed = Campaign.resume(backend)
    assert resumed.run().fingerprint() == fingerprint


def test_facade_matches_legacy_engines():
    """The facade is a re-spelling, not a re-implementation: same seed
    => same fingerprint as the deprecated classes it wraps."""
    legacy = build_campaign(7, 16, 0, checked=False).run().fingerprint()
    assert build_facade_campaign(7, 16, 1).run().fingerprint() == legacy
    legacy_sharded = build_campaign(7, 48, 4, checked=False).run().fingerprint()
    assert (
        build_facade_campaign(7, 48, 4).run().fingerprint() == legacy_sharded
    )


def test_rebalancing_campaign_migrates_and_conserves():
    """A hash-routed campaign on a skewed pool should trigger idle
    migrations; all laws must survive workers changing shards."""
    engine = build_campaign(
        11, 48, 4, num_tasks=120, policy="hash", rebalance_threshold=0.05
    )
    metrics = engine.run()
    final_laws(engine, metrics)
    assert engine.scheduler.migrations > 0
    moved_in = sum(s.migrations_in for s in metrics.shard_snapshots)
    moved_out = sum(s.migrations_out for s in metrics.shard_snapshots)
    assert moved_in == moved_out == engine.scheduler.migrations


# ======================================================================
# Concurrency stress harness: async ingestion + parallel shard dispatch
# ======================================================================
def build_async_loop(
    seed,
    pool_size,
    shards,
    num_tasks=60,
    parallel=0,
    checked=True,
    interleave=None,
    max_pending=10_000,
    expected_tasks=None,
    policy="hash",
    rebalance_threshold=0.25,
    grace=0.05,
    telemetry="off",
):
    """The :func:`build_campaign` scenario served through an
    :class:`AsyncIngestLoop` (checked engines assert the global laws
    after every event, concurrency or not).  Returns ``(loop, tasks)``
    with the tasks *not yet submitted* — the test decides who submits
    them, from which thread, and when."""
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=pool_size, quality_ceiling=0.95), rng
    )
    config = EngineConfig(
        budget=0.3 * num_tasks,
        capacity=3,
        batch_size=20,
        confidence_target=0.95,
        expected_tasks=expected_tasks,
        ingestion="async",
        parallel_shards=parallel,
        telemetry=telemetry,
        seed=seed,
    )
    if shards == 0:
        cls = CheckedEngine if checked else CampaignEngine
        engine = cls(pool, config)
    else:
        cls = CheckedShardedEngine if checked else ShardedCampaignEngine
        engine = cls(
            pool,
            config,
            ShardingConfig(
                shards,
                policy=policy,
                rebalance_threshold=rebalance_threshold,
            ),
        )
    truths = rng.integers(0, 2, size=num_tasks)
    tasks = [
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    ]
    loop = AsyncIngestLoop(
        engine, max_pending=max_pending, grace=grace, interleave=interleave
    )
    return loop, tasks


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "pool_size,shards,parallel", [(16, 1, 0), (48, 4, 4)]
)
def test_async_preloaded_matches_sync_fingerprint(
    seed, pool_size, shards, parallel
):
    """Deterministic async mode, preloaded: the intake path plus
    parallel shard dispatch must reproduce the synchronous engine's
    fingerprint byte for byte — while the checked engine asserts every
    per-event law along the way."""
    reference = build_campaign(
        seed, pool_size, shards, checked=False
    ).run().fingerprint()
    loop, tasks = build_async_loop(
        seed, pool_size, shards, parallel=parallel
    )
    loop.submit(tasks)
    metrics = loop.run()
    final_laws(loop.engine, metrics)
    assert metrics.fingerprint() == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_dispatch_is_byte_identical(seed):
    """Thread-pool shard dispatch is purely a throughput lever: same
    routing, same grants, same seatings, same floats as the sequential
    in-loop dispatch."""
    reference = build_campaign(seed, 48, 4, checked=False).run().fingerprint()
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=48, quality_ceiling=0.95), rng
    )
    config = EngineConfig(
        budget=0.3 * 60,
        capacity=3,
        batch_size=20,
        confidence_target=0.95,
        parallel_shards=4,
        seed=seed,
    )
    engine = CheckedShardedEngine(pool, config, ShardingConfig(4))
    truths = rng.integers(0, 2, size=60)
    engine.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    metrics = engine.run()
    final_laws(engine, metrics)
    assert metrics.fingerprint() == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_interleavings_replay_and_conserve(seed):
    """Randomized seeded interleavings: the schedule chops intake
    drains into odd-sized bites at odd moments, so arrivals interleave
    with in-flight votes very differently from the batch path — every
    per-event law must hold regardless, every task must complete, and
    the same schedule seed must replay byte-identically."""

    def one_run():
        loop, tasks = build_async_loop(
            seed,
            48,
            4,
            parallel=2,
            interleave=InterleavingSchedule(seed * 31 + 1),
            expected_tasks=60,
        )
        loop.submit(tasks)
        metrics = loop.run()
        final_laws(loop.engine, metrics)
        assert metrics.completed == metrics.submitted == 60
        return metrics.fingerprint()

    assert one_run() == one_run()


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_submit_while_running_under_backpressure(seed):
    """Live traffic: four producer threads stream tasks into a tightly
    bounded intake while the serving loop seats juries and dispatches
    shard admits in parallel.  Backpressure must bound staging, every
    task must be served exactly once, and the per-event laws must hold
    throughout."""
    loop, tasks = build_async_loop(
        seed,
        32,
        4,
        parallel=2,
        max_pending=8,
        expected_tasks=60,
        grace=2.0,
    )
    chunks = [tasks[i::4] for i in range(4)]

    def producer(chunk):
        for k, task in enumerate(chunk):
            loop.submit([task], start_time=float(k))

    producers = [
        threading.Thread(target=producer, args=(chunk,)) for chunk in chunks
    ]

    def closer():
        for thread in producers:
            thread.join()
        loop.close_intake()

    closer_thread = threading.Thread(target=closer)
    for thread in producers:
        thread.start()
    closer_thread.start()
    metrics = loop.run()
    closer_thread.join(timeout=10.0)
    assert not closer_thread.is_alive()
    final_laws(loop.engine, metrics)
    assert metrics.completed == metrics.submitted == 60
    assert loop.intake.stats.submitted == 60
    assert loop.intake.stats.peak_pending <= 8


@pytest.mark.parametrize("seed", CHECKPOINT_SEEDS)
def test_async_pause_checkpoint_resume_matches_sync(seed, tmp_path):
    """Pause/checkpoint mid-flight on the async path: a concurrent
    campaign checkpointed with juries in flight and resumed from SQLite
    must land on the synchronous path's fingerprint."""
    reference = build_facade_campaign(seed, 48, 4).run().fingerprint()

    path = tmp_path / f"async-{seed}.db"
    interrupted = build_facade_campaign(
        seed,
        48,
        4,
        SQLiteBackend(path),
        ingestion="async",
        parallel_shards=2,
    )
    interrupted.run(until=10 + (seed % 3) * 15)
    assert not interrupted.done
    interrupted.checkpoint()
    interrupted.close()

    resumed = Campaign.resume(SQLiteBackend(path))
    assert resumed.config.ingestion == "async"
    assert resumed.run().fingerprint() == reference
    final_laws(resumed.engine, resumed.metrics)
    resumed.close()


@pytest.mark.parametrize("seed", CHECKPOINT_SEEDS)
def test_scripted_submission_interleavings_match_sync(seed):
    """Submit-while-running, deterministically: a seeded script of
    (submit a batch, serve until N) steps drives a sync campaign and an
    async one through identical run-boundary traffic; the async path —
    intake, drain-before-step, parallel dispatch — must reproduce the
    sync fingerprint byte for byte."""
    rng = np.random.default_rng(seed)
    splits = np.sort(rng.choice(np.arange(5, 55), size=2, replace=False))
    batches = (int(splits[0]), int(splits[1] - splits[0]), int(60 - splits[1]))
    cut_a = int(rng.integers(1, splits[0]))
    cut_b = int(rng.integers(cut_a + 1, splits[1]))

    def scripted(**config_kwargs):
        campaign, tasks = build_facade_campaign(
            seed, 48, 4, submit=False, expected_tasks=60, **config_kwargs
        )
        first = batches[0]
        second = batches[0] + batches[1]
        campaign.submit(tasks[:first])
        campaign.run(until=cut_a)
        campaign.submit(tasks[first:second])
        campaign.run(until=cut_b)
        campaign.submit(tasks[second:])
        metrics = campaign.run()
        assert campaign.done
        assert metrics.completed == 60
        return metrics.fingerprint()

    sync_fp = scripted()
    async_fp = scripted(ingestion="async", parallel_shards=2)
    assert async_fp == sync_fp


def test_async_rebalance_under_interleaved_load():
    """Shard rebalancing triggered while interleaved intake and
    parallel dispatch are live: migrations must happen and every law
    must survive workers changing shards mid-traffic."""
    loop, tasks = build_async_loop(
        11,
        48,
        4,
        num_tasks=120,
        parallel=4,
        rebalance_threshold=0.05,
        interleave=InterleavingSchedule(11),
        expected_tasks=120,
    )
    loop.submit(tasks)
    metrics = loop.run()
    final_laws(loop.engine, metrics)
    assert metrics.completed == 120
    assert loop.engine.scheduler.migrations > 0


def _assert_histogram_invariants(telemetry):
    """Bucket laws for every histogram the hub holds: internal counts
    conserve the observation count, the cumulative export is monotone
    and ends at that count under a ``+Inf`` bound."""
    snapshot = telemetry.snapshot()
    assert snapshot["histograms"], "stress run recorded no histograms"
    for hist in snapshot["histograms"]:
        counts = [bucket["count"] for bucket in hist["buckets"]]
        assert counts == sorted(counts), hist["name"]
        assert hist["buckets"][-1]["le"] == "+Inf"
        assert counts[-1] == hist["count"], hist["name"]
        assert hist["count"] > 0
        assert hist["sum"] >= 0.0


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_telemetry_histograms_consistent_under_concurrent_stress(seed):
    """Telemetry on during the threaded submit-while-running scenario:
    producers, the serving loop, and parallel dispatch workers all
    report into the hub concurrently.  Every histogram must conserve
    its counts, the hub's counters must reconcile with the intake's own
    ledger, and the per-event campaign laws must hold throughout."""
    loop, tasks = build_async_loop(
        seed,
        32,
        4,
        parallel=2,
        max_pending=8,
        expected_tasks=60,
        grace=2.0,
        telemetry="on",
    )
    chunks = [tasks[i::4] for i in range(4)]

    def producer(chunk):
        for k, task in enumerate(chunk):
            loop.submit([task], start_time=float(k))

    producers = [
        threading.Thread(target=producer, args=(chunk,)) for chunk in chunks
    ]

    def closer():
        for thread in producers:
            thread.join()
        loop.close_intake()

    closer_thread = threading.Thread(target=closer)
    for thread in producers:
        thread.start()
    closer_thread.start()
    metrics = loop.run()
    closer_thread.join(timeout=10.0)
    assert not closer_thread.is_alive()
    final_laws(loop.engine, metrics)
    assert metrics.completed == metrics.submitted == 60

    telemetry = loop.engine.telemetry
    _assert_histogram_invariants(telemetry)
    counters = {}
    for row in telemetry.snapshot()["counters"]:
        counters[row["name"]] = counters.get(row["name"], 0) + row["value"]
    assert counters["intake.submitted"] == loop.intake.stats.submitted == 60
    assert counters["engine.tasks_submitted"] == 60
    assert counters["engine.tasks_completed"] == 60
    # Per-producer rows cover every submitting thread and reconcile.
    per_producer = loop.intake.stats.per_producer
    assert sum(row["submits"] for row in per_producer.values()) == 60


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_telemetry_is_observation_only_under_seeded_interleavings(seed):
    """The deterministic interleaved path must land on the same
    fingerprint with the hub recording as with NullTelemetry — spans,
    counters, and drain timing never leak into campaign decisions."""

    def one_run(telemetry):
        loop, tasks = build_async_loop(
            seed,
            48,
            4,
            parallel=2,
            interleave=InterleavingSchedule(seed * 31 + 1),
            expected_tasks=60,
            checked=False,
            telemetry=telemetry,
        )
        loop.submit(tasks)
        metrics = loop.run()
        if telemetry == "on":
            _assert_histogram_invariants(loop.engine.telemetry)
        return metrics.fingerprint()

    assert one_run("off") == one_run("on")
