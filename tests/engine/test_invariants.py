"""Randomized campaign-invariant harness.

The DB-nets direction in PAPERS.md treats state transitions of a
data-aware process as explicit, checkable invariants.  This suite makes
that executable for the (sharded) campaign engine: seeded randomized
campaigns across pool sizes, shard counts, and routing policies, with
the global serving invariants asserted **after every event** the loop
dispatches:

* **capacity** — no worker ever seated above their concurrent cap;
* **budget** — gross reservations net of refunds never exceed the
  campaign budget, and the allocator's entitlement never exceeds it;
* **ledger conservation** — every granted unit is either reserved by a
  shard or re-absorbed, cumulatively and exactly;
* **spend** — workers are only ever paid out of reserved cost.

End-of-run laws (refund conservation across shard re-absorption, spend
reconciliation between registry and metrics, every submitted task
completing) and **byte-identical replay** for identical seeds round out
the harness.
"""

import numpy as np
import pytest

from repro.engine import (
    Campaign,
    CampaignConfig,
    CampaignEngine,
    EngineConfig,
    EngineTask,
    MemoryBackend,
    SQLiteBackend,
    ShardedCampaignEngine,
    ShardedScheduler,
    ShardingConfig,
)
from repro.simulation import SyntheticPoolConfig, generate_pool

EPS = 1e-9
SEEDS = (1, 7, 13, 42, 2015)


class InvariantViolation(AssertionError):
    pass


class _CheckedMixin:
    """Engine mixin asserting the global invariants after every event."""

    def _dispatch(self, event):
        super()._dispatch(event)
        self.check_invariants()

    def check_invariants(self):
        budget = self.config.budget
        for state in self.registry.states:
            if state.load > state.capacity:
                raise InvariantViolation(
                    f"worker {state.worker.worker_id} seated "
                    f"{state.load}/{state.capacity}"
                )
            if state.peak_load > state.capacity:
                raise InvariantViolation(
                    f"worker {state.worker.worker_id} peaked above capacity"
                )

        scheduler = self.scheduler
        if scheduler is None:
            return
        if isinstance(scheduler, ShardedScheduler):
            allocator = scheduler.allocator
            gross_reserved = allocator.reserved
            refunded = allocator.refunded
            if allocator.entitled > budget + EPS:
                raise InvariantViolation(
                    f"entitled {allocator.entitled} beyond budget {budget}"
                )
            ledger_gap = abs(
                allocator.granted
                - (allocator.reserved + allocator.reabsorbed)
            )
            if ledger_gap > 1e-6:
                raise InvariantViolation(
                    f"allocator ledger leaks: granted {allocator.granted} "
                    f"!= reserved {allocator.reserved} "
                    f"+ reabsorbed {allocator.reabsorbed}"
                )
            shard_reserved = sum(
                shard.scheduler.reserved for shard in scheduler.shards
            )
            if abs(shard_reserved - gross_reserved) > 1e-6:
                raise InvariantViolation(
                    f"shard reservations {shard_reserved} diverge from "
                    f"allocator ledger {gross_reserved}"
                )
        else:
            gross_reserved = scheduler.reserved
            refunded = scheduler.refunded

        if gross_reserved - refunded > budget + 1e-6:
            raise InvariantViolation(
                f"net reservations {gross_reserved - refunded} "
                f"exceed budget {budget}"
            )
        # Workers are only ever paid out of reserved jury cost.
        if self.registry.total_spend > gross_reserved + 1e-6:
            raise InvariantViolation(
                f"worker payouts {self.registry.total_spend} exceed "
                f"gross reservations {gross_reserved}"
            )


class CheckedEngine(_CheckedMixin, CampaignEngine):
    pass


class CheckedShardedEngine(_CheckedMixin, ShardedCampaignEngine):
    pass


def build_campaign(
    seed,
    pool_size,
    shards,
    num_tasks=60,
    policy="hash",
    checked=True,
    reestimate_every=0,
    rebalance_threshold=0.25,
):
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=pool_size, quality_ceiling=0.95), rng
    )
    config = EngineConfig(
        budget=0.3 * num_tasks,
        capacity=3,
        batch_size=20,
        confidence_target=0.95,
        reestimate_every=reestimate_every,
        seed=seed,
    )
    if shards == 0:  # the plain, pre-sharding engine
        cls = CheckedEngine if checked else CampaignEngine
        engine = cls(pool, config)
    else:
        cls = CheckedShardedEngine if checked else ShardedCampaignEngine
        engine = cls(
            pool,
            config,
            ShardingConfig(
                shards,
                policy=policy,
                rebalance_threshold=rebalance_threshold,
            ),
        )
    truths = rng.integers(0, 2, size=num_tasks)
    engine.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    return engine


def final_laws(engine, metrics):
    """End-of-run conservation laws, common to every configuration."""
    budget = engine.config.budget
    assert metrics.completed == metrics.submitted
    assert metrics.total_spend <= budget + 1e-6
    # Every landed vote was paid exactly once: the registry's payout
    # ledger and the per-task records must reconcile.
    assert metrics.total_spend == pytest.approx(
        engine.registry.total_spend, abs=1e-9
    )
    if isinstance(engine.scheduler, ShardedScheduler):
        allocator = engine.scheduler.allocator
        # Refund conservation across shard re-absorption: everything
        # the tasks handed back landed in the allocator's pot.
        assert allocator.refunded == pytest.approx(
            metrics.total_refunded, abs=1e-9
        )
        assert allocator.granted == pytest.approx(
            allocator.reserved + allocator.reabsorbed, abs=1e-6
        )
        assert metrics.allocator_snapshot is not None
        assert metrics.shard_snapshots is not None
        reserved = sum(s.reserved for s in metrics.shard_snapshots)
        assert reserved == pytest.approx(allocator.reserved, abs=1e-6)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("pool_size,shards", [(12, 1), (24, 2), (48, 4)])
def test_invariants_hold_after_every_event(seed, pool_size, shards):
    # Rotate routing policies with the seed so all three are exercised
    # across the matrix.
    policy = ("hash", "least-loaded", "quality-balanced")[seed % 3]
    engine = build_campaign(seed, pool_size, shards, policy=policy)
    metrics = engine.run()
    final_laws(engine, metrics)


@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_under_quality_drift(seed):
    """Re-estimation perturbs every quality estimate mid-campaign;
    the budget and capacity laws must be indifferent to it."""
    engine = build_campaign(
        seed, 32, 4, policy="least-loaded", reestimate_every=25
    )
    metrics = engine.run()
    final_laws(engine, metrics)
    assert metrics.reestimations > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_replay_is_byte_identical(seed):
    """Identical seeds => identical campaigns, fingerprint-for-
    fingerprint — across a run that routes, grants, rebalances, and
    early-stops."""
    first = build_campaign(seed, 32, 4, checked=False).run()
    second = build_campaign(seed, 32, 4, checked=False).run()
    assert first.fingerprint() == second.fingerprint()


@pytest.mark.parametrize("seed", SEEDS)
def test_single_shard_matches_presharding_engine(seed):
    """The single-shard path is pinned to the pre-sharding engine:
    same seed => byte-identical metrics (fingerprints cover every task
    record at full float precision plus all campaign counters)."""
    plain = build_campaign(seed, 16, 0, checked=False).run()
    sharded = build_campaign(seed, 16, 1, checked=False).run()
    assert plain.fingerprint() == sharded.fingerprint()


def test_unfunded_starved_campaign_still_conserves():
    """Zero budget: every task must complete unfunded, spend nothing,
    and violate nothing."""
    rng = np.random.default_rng(3)
    pool = generate_pool(SyntheticPoolConfig(num_workers=8), rng)
    config = EngineConfig(budget=0.0, capacity=2, batch_size=5, seed=3)
    engine = CheckedShardedEngine(pool, config, ShardingConfig(2))
    engine.submit(EngineTask(f"t{i}") for i in range(20))
    metrics = engine.run()
    final_laws(engine, metrics)
    assert metrics.unfunded == 20
    assert metrics.total_spend == 0.0


def build_facade_campaign(
    seed, pool_size, shards, backend=None, num_tasks=60, reestimate_every=0
):
    """The :func:`build_campaign` scenario through the Campaign facade."""
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=pool_size, quality_ceiling=0.95), rng
    )
    config = CampaignConfig(
        budget=0.3 * num_tasks,
        capacity=3,
        batch_size=20,
        confidence_target=0.95,
        reestimate_every=reestimate_every,
        seed=seed,
        num_shards=shards,
    )
    campaign = Campaign.open(pool, config, backend=backend)
    truths = rng.integers(0, 2, size=num_tasks)
    campaign.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    return campaign


CHECKPOINT_SEEDS = SEEDS[:3]


@pytest.mark.parametrize("seed", CHECKPOINT_SEEDS)
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
def test_checkpoint_resume_is_byte_identical(
    seed, shards, backend_kind, tmp_path
):
    """A campaign checkpointed mid-run and resumed from its backend
    must finish with a metrics fingerprint byte-identical to an
    uninterrupted run — the full persistence surface (registry, votes,
    ledgers, shard membership, caches, frontier memos, pending events,
    in-flight sessions, RNG) is on the line, across seeds x shard
    counts x backends."""
    pool_size = 16 if shards == 1 else 48
    uninterrupted = build_facade_campaign(seed, pool_size, shards)
    reference = uninterrupted.run().fingerprint()

    path = tmp_path / f"{seed}-{shards}.db"
    if backend_kind == "memory":
        backend = MemoryBackend()
    else:
        backend = SQLiteBackend(path)
    interrupted = build_facade_campaign(seed, pool_size, shards, backend)
    # Cut at a seed-dependent point so the matrix hits different loop
    # phases (mid-batch, mid-jury, between re-estimations).
    interrupted.run(until=10 + (seed % 3) * 15)
    assert not interrupted.done
    interrupted.checkpoint()
    if backend_kind == "sqlite":
        # The realistic restart: the process dies, a new one reopens
        # the file.  (A MemoryBackend's whole point is living in the
        # process, so it is resumed in place.)
        interrupted.close()
        backend = SQLiteBackend(path)

    resumed = Campaign.resume(backend)
    assert resumed.run().fingerprint() == reference
    final_laws(resumed.engine, resumed.metrics)


@pytest.mark.parametrize("seed", CHECKPOINT_SEEDS)
def test_checkpoint_resume_under_quality_drift(seed, tmp_path):
    """Re-estimation perturbs every quality estimate from streamed
    votes; resume must restore the answer matrix (in both iteration
    orders) and the drifted estimates exactly or EM diverges."""
    backend = SQLiteBackend(tmp_path / "drift.db")
    reference = build_facade_campaign(
        seed, 32, 4, num_tasks=80, reestimate_every=25
    )
    fingerprint = reference.run().fingerprint()
    assert reference.metrics.reestimations > 0

    interrupted = build_facade_campaign(
        seed, 32, 4, backend, num_tasks=80, reestimate_every=25
    )
    interrupted.run(until=40)
    interrupted.checkpoint()
    resumed = Campaign.resume(backend)
    assert resumed.run().fingerprint() == fingerprint


def test_facade_matches_legacy_engines():
    """The facade is a re-spelling, not a re-implementation: same seed
    => same fingerprint as the deprecated classes it wraps."""
    legacy = build_campaign(7, 16, 0, checked=False).run().fingerprint()
    assert build_facade_campaign(7, 16, 1).run().fingerprint() == legacy
    legacy_sharded = build_campaign(7, 48, 4, checked=False).run().fingerprint()
    assert (
        build_facade_campaign(7, 48, 4).run().fingerprint() == legacy_sharded
    )


def test_rebalancing_campaign_migrates_and_conserves():
    """A hash-routed campaign on a skewed pool should trigger idle
    migrations; all laws must survive workers changing shards."""
    engine = build_campaign(
        11, 48, 4, num_tasks=120, policy="hash", rebalance_threshold=0.05
    )
    metrics = engine.run()
    final_laws(engine, metrics)
    assert engine.scheduler.migrations > 0
    moved_in = sum(s.migrations_in for s in metrics.shard_snapshots)
    moved_out = sum(s.migrations_out for s in metrics.shard_snapshots)
    assert moved_in == moved_out == engine.scheduler.migrations
