"""JQ cache: identity with the uncached objective, keying, stats."""

import numpy as np
import pytest

from repro.core import Jury, Worker
from repro.engine import (
    CachedJQObjective,
    JQCache,
    adaptive_quantization,
    load_cache_file,
    save_cache_file,
)
from repro.selection import JQObjective


def jury_of(qualities):
    return Jury(Worker(f"w{i}", q, 1.0) for i, q in enumerate(qualities))


class TestExactKeys:
    def test_bitwise_identical_to_uncached_objective(self):
        """With exact keys, the cache must return exactly the float the
        stock objective computes (same canonical evaluation order)."""
        cache = JQCache(alpha=0.3, num_buckets=50, quantization=None)
        uncached = JQObjective(alpha=0.3, num_buckets=50)
        rng = np.random.default_rng(42)
        for n in (1, 3, 5, 13, 17):  # spans exact and bucket paths
            qualities = np.sort(rng.uniform(0.05, 0.98, size=n))
            jury = jury_of(qualities)
            assert cache.jq_jury(jury) == uncached(jury)

    def test_hit_returns_same_float(self):
        cache = JQCache()
        q = [0.8, 0.7, 0.65]
        first = cache.jq(q)
        second = cache.jq(q)
        assert first == second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_order_invariance_shares_one_entry(self):
        """JQ depends on the quality multiset, so permutations must hit
        the same entry (and agree to float tolerance with the uncached
        objective applied to any ordering)."""
        cache = JQCache()
        uncached = JQObjective()
        qualities = [0.9, 0.6, 0.75, 0.55]
        value = cache.jq(qualities)
        permuted = cache.jq(list(reversed(qualities)))
        assert value == permuted
        assert cache.stats.entries == 1
        assert value == pytest.approx(uncached(jury_of(qualities)), abs=1e-12)

    def test_empty_jury_scores_prior_mode(self):
        cache = JQCache(alpha=0.8)
        assert cache.jq([]) == 0.8


class TestQuantizedKeys:
    def test_nearby_qualities_share_an_entry(self):
        cache = JQCache(quantization=200)  # 0.005 grid
        a = cache.jq([0.7001, 0.8002])
        b = cache.jq([0.6999, 0.7998])
        assert a == b
        assert cache.stats.entries == 1
        assert cache.stats.hits == 1

    def test_value_matches_objective_on_snapped_qualities(self):
        cache = JQCache(quantization=200)
        uncached = JQObjective()
        value = cache.jq([0.7002, 0.8004])
        assert value == uncached(jury_of([0.70, 0.80]))

    def test_distant_qualities_do_not_collide(self):
        cache = JQCache(quantization=200)
        cache.jq([0.7])
        cache.jq([0.75])
        assert cache.stats.entries == 2

    def test_invalid_quantization_rejected(self):
        with pytest.raises(ValueError):
            JQCache(quantization=0)
        with pytest.raises(ValueError):
            JQCache(quantization="fine")


class TestAdaptiveQuantization:
    def test_derived_from_bucket_resolution(self):
        assert adaptive_quantization(50) == 200
        assert adaptive_quantization(100) == 400
        assert adaptive_quantization(25) == 100
        with pytest.raises(ValueError):
            adaptive_quantization(0)

    def test_auto_reproduces_the_historical_default_grid(self):
        """At the paper's 50-bucket default the adaptive grid must be
        the old fixed 200 — the switch to 'auto' must not move a single
        cached value."""
        auto = JQCache(quantization="auto")
        assert auto.quantization == 200
        fixed = JQCache(quantization=200)
        rng = np.random.default_rng(11)
        for n in (1, 2, 4, 7, 14):
            qualities = rng.uniform(0.05, 0.98, size=n)
            assert auto.jq(qualities) == fixed.jq(qualities)
            assert auto.canonicalize(qualities) == fixed.canonicalize(
                qualities
            )

    def test_auto_tracks_num_buckets(self):
        coarse = JQCache(num_buckets=10, quantization="auto")
        assert coarse.quantization == adaptive_quantization(10) == 40
        # A coarser estimator gets a coarser key grid: qualities one
        # fine-grid step apart now share an entry.
        coarse.jq([0.701])
        coarse.jq([0.699])
        assert coarse.stats.entries == 1


class TestCachePersistence:
    def test_state_round_trip_preserves_values_counters_and_lru_order(self):
        cache = JQCache(max_entries=3)
        for q in ([0.6], [0.7], [0.8]):
            cache.jq(q)
        cache.jq([0.6])  # refresh: 0.7 is now the LRU victim
        restored = JQCache(max_entries=3)
        restored.load_state(cache.state_dict())
        assert restored.stats == cache.stats
        restored.jq([0.9])  # evicts 0.7, like the original would
        cache.jq([0.9])
        assert cache.stats == restored.stats
        assert cache.jq([0.6]) == restored.jq([0.6])

    def test_file_round_trip_warms_a_cold_cache(self, tmp_path):
        path = tmp_path / "warm.json"
        donor = JQCache(quantization=200)
        values = {tuple([q]): donor.jq([q]) for q in (0.6, 0.7, 0.8)}
        assert save_cache_file(path, [donor]) == 3
        cold = JQCache(quantization=200)
        assert load_cache_file(path, [cold]) == 3
        for key, value in values.items():
            assert cold.jq(list(key)) == value
        assert cold.stats.hits == 3  # every lookup warmed

    def test_file_import_rejects_mismatched_parameters(self, tmp_path):
        path = tmp_path / "warm.json"
        save_cache_file(path, [JQCache(alpha=0.3)])
        with pytest.raises(ValueError, match="alpha"):
            load_cache_file(path, [JQCache(alpha=0.5)])
        save_cache_file(path, [JQCache(quantization=200)])
        with pytest.raises(ValueError, match="quantization"):
            load_cache_file(path, [JQCache(quantization=100)])

    def test_export_rejects_heterogeneous_caches(self, tmp_path):
        with pytest.raises(ValueError, match="share"):
            save_cache_file(
                tmp_path / "warm.json",
                [JQCache(alpha=0.3), JQCache(alpha=0.5)],
            )

    def test_warming_never_overrides_resident_entries(self):
        cache = JQCache()
        resident = cache.jq([0.7])
        added = cache.warm([[[0.7], -1.0], [[0.8], 0.8]])
        assert added == 1
        assert cache.jq([0.7]) == resident


class TestCachedObjective:
    def test_drop_in_for_jq_objective(self):
        """Selectors and frontiers accept the cached objective and get
        the same answers."""
        from repro.frontier import exact_frontier
        from repro.core import WorkerPool

        pool = WorkerPool(
            [Worker("a", 0.8, 2.0), Worker("b", 0.7, 1.0), Worker("c", 0.6, 0.5)]
        )
        cache = JQCache()
        cached = exact_frontier(pool, CachedJQObjective(cache))
        plain = exact_frontier(pool, JQObjective())
        assert [(p.cost, p.jq) for p in cached.points] == [
            (p.cost, p.jq) for p in plain.points
        ]
        assert cache.stats.lookups == 7  # 2^3 - 1 juries

    def test_evaluations_counter_still_counts_calls(self):
        cache = JQCache()
        objective = CachedJQObjective(cache)
        jury = jury_of([0.7, 0.8])
        objective(jury)
        objective(jury)
        assert objective.evaluations == 2
        assert cache.stats.hits == 1

    def test_clear_resets_everything(self):
        cache = JQCache()
        cache.jq([0.7])
        cache.clear()
        assert cache.stats.lookups == 0
        assert len(cache) == 0


class TestLRUBound:
    def test_unbounded_by_default(self):
        cache = JQCache()
        for q in np.linspace(0.51, 0.94, 300):
            cache.jq([q])
        assert cache.stats.entries == 300
        assert cache.stats.evictions == 0

    def test_validates_max_entries(self):
        with pytest.raises(ValueError, match="max_entries"):
            JQCache(max_entries=0)

    def test_bounded_cache_never_exceeds_the_bound(self):
        cache = JQCache(max_entries=10)
        for q in np.linspace(0.51, 0.94, 50):
            cache.jq([q])
        assert cache.stats.entries == 10
        assert cache.stats.evictions == 40

    def test_evicts_the_least_recently_used_entry(self):
        cache = JQCache(max_entries=2)
        cache.jq([0.6])
        cache.jq([0.7])
        cache.jq([0.6])          # refresh 0.6 -> 0.7 is now the oldest
        cache.jq([0.8])          # evicts 0.7
        hits_before = cache.stats.hits
        cache.jq([0.6])          # still resident
        assert cache.stats.hits == hits_before + 1
        misses_before = cache.stats.misses
        cache.jq([0.7])          # was evicted: must re-miss
        assert cache.stats.misses == misses_before + 1

    def test_eviction_never_changes_returned_values(self):
        """A bounded cache may forget, but a re-miss must recompute the
        identical float the unbounded cache (and the stock objective)
        returns."""
        rng = np.random.default_rng(7)
        juries = [
            np.sort(rng.uniform(0.05, 0.98, size=rng.integers(1, 6)))
            for _ in range(120)
        ]
        bounded = JQCache(max_entries=5)
        unbounded = JQCache()
        # Two interleaved passes: the second pass re-misses almost
        # everything in the bounded cache.
        for jury in juries + juries:
            assert bounded.jq(jury) == unbounded.jq(jury)
        assert bounded.stats.evictions > 0

    def test_clear_resets_evictions(self):
        cache = JQCache(max_entries=1)
        cache.jq([0.6])
        cache.jq([0.7])
        assert cache.stats.evictions == 1
        cache.clear()
        assert cache.stats.evictions == 0

    def test_cache_stats_merge_pools_counters(self):
        a = JQCache(max_entries=1)
        a.jq([0.6]); a.jq([0.7]); a.jq([0.7])
        b = JQCache()
        b.jq([0.8])
        merged = a.stats.merge(b.stats)
        assert merged.lookups == 4
        assert merged.hits == 1
        assert merged.entries == 2
        assert merged.evictions == 1
        assert "evicted" in merged.render()
