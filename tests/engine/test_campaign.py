"""The Campaign facade: lifecycle, unified config, resumable stepping,
equivalence with the deprecated engine entry points."""

import numpy as np
import pytest

from repro.engine import (
    Campaign,
    CampaignConfig,
    CampaignEngine,
    EngineConfig,
    EngineTask,
    MemoryBackend,
    ShardedCampaignEngine,
    ShardingConfig,
)
from repro.simulation import SyntheticPoolConfig, generate_pool


def make_pool(num_workers=24, seed=1):
    rng = np.random.default_rng(seed)
    return generate_pool(
        SyntheticPoolConfig(num_workers=num_workers, quality_ceiling=0.95),
        rng,
    )


def make_tasks(num_tasks=80, seed=5):
    rng = np.random.default_rng(seed)
    truths = rng.integers(0, 2, size=num_tasks)
    return [
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    ]


def make_campaign(num_shards=1, seed=5, backend=None, **overrides):
    defaults = dict(
        budget=30.0, confidence_target=0.95, seed=seed, num_shards=num_shards
    )
    defaults.update(overrides)
    campaign = Campaign.open(
        make_pool(), CampaignConfig(**defaults), backend=backend
    )
    campaign.submit(make_tasks(seed=seed))
    return campaign


class TestCampaignConfig:
    def test_engine_view_forwards_every_engine_field(self):
        config = CampaignConfig(
            budget=9.0, capacity=2, batch_size=7, seed=3, num_shards=4
        )
        engine_config = config.engine_config()
        assert isinstance(engine_config, EngineConfig)
        assert engine_config.budget == 9.0
        assert engine_config.capacity == 2
        assert engine_config.batch_size == 7
        assert engine_config.seed == 3

    def test_sharding_view(self):
        config = CampaignConfig(
            budget=1.0, num_shards=4, routing_policy="least-loaded"
        )
        sharding = config.sharding_config()
        assert isinstance(sharding, ShardingConfig)
        assert sharding.num_shards == 4
        assert sharding.policy == "least-loaded"
        assert CampaignConfig(budget=1.0).sharding_config() is None

    def test_validation_delegates_to_subsumed_configs(self):
        with pytest.raises(ValueError):
            CampaignConfig(budget=-1.0)
        with pytest.raises(ValueError):
            CampaignConfig(budget=1.0, num_shards=0)
        with pytest.raises(ValueError):
            CampaignConfig(budget=1.0, routing_policy="round-robin")
        with pytest.raises(ValueError):
            CampaignConfig(budget=1.0, quantization=0)

    def test_dict_round_trip(self):
        config = CampaignConfig(
            budget=4.0, num_shards=2, quantization=None, seed=11
        )
        assert CampaignConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            CampaignConfig.from_dict({"budget": 1.0, "shards": 2})

    def test_lift_from_legacy_configs(self):
        engine_config = EngineConfig(budget=5.0, capacity=3, seed=2)
        config = CampaignConfig.from_engine_config(
            engine_config, ShardingConfig(3, policy="quality-balanced")
        )
        assert config.budget == 5.0
        assert config.capacity == 3
        assert config.num_shards == 3
        assert config.routing_policy == "quality-balanced"
        assert config.engine_config() == engine_config


class TestFacadeEquivalence:
    """The facade must reproduce the deprecated entry points bit-for-bit
    — migration changes spelling, never campaign decisions."""

    def test_matches_campaign_engine(self):
        with pytest.deprecated_call():
            engine = CampaignEngine(
                make_pool(),
                EngineConfig(budget=30.0, confidence_target=0.95, seed=5),
            )
        engine.submit(make_tasks())
        legacy = engine.run().fingerprint()
        assert make_campaign().run().fingerprint() == legacy

    def test_matches_sharded_campaign_engine(self):
        with pytest.deprecated_call():
            engine = ShardedCampaignEngine(
                make_pool(),
                EngineConfig(budget=30.0, confidence_target=0.95, seed=5),
                ShardingConfig(4),
            )
        engine.submit(make_tasks())
        legacy = engine.run().fingerprint()
        assert make_campaign(num_shards=4).run().fingerprint() == legacy

    def test_paused_and_drained_equals_one_shot(self):
        one_shot = make_campaign().run().fingerprint()
        stepped = make_campaign()
        stepped.run(until=20)
        assert not stepped.done
        stepped.run(until=50)
        assert stepped.run().fingerprint() == one_shot
        assert stepped.done


class TestLifecycle:
    def test_direct_construction_is_refused(self):
        with pytest.raises(TypeError, match="Campaign.open"):
            Campaign()

    def test_run_until_pauses_at_completion_count(self):
        campaign = make_campaign()
        metrics = campaign.run(until=25)
        assert 25 <= metrics.completed < 80
        assert not campaign.done
        campaign.run()
        assert campaign.done
        assert campaign.metrics.completed == 80

    def test_submit_between_runs_is_served(self):
        campaign = make_campaign()
        campaign.run(until=25)
        campaign.submit(
            [EngineTask("late-arrival", ground_truth=1)],
            start_time=1e6,
        )
        campaign.run()
        assert campaign.metrics.completed == 81

    def test_submit_after_done_is_refused(self):
        campaign = make_campaign()
        campaign.run()
        with pytest.raises(RuntimeError, match="finished"):
            campaign.submit([EngineTask("too-late")])

    def test_closed_campaign_refuses_everything(self):
        campaign = make_campaign()
        campaign.close()
        campaign.close()  # idempotent
        for call in (
            lambda: campaign.run(),
            lambda: campaign.checkpoint(),
            lambda: campaign.submit([EngineTask("x")]),
        ):
            with pytest.raises(RuntimeError, match="closed"):
                call()

    def test_context_manager_closes(self):
        with make_campaign() as campaign:
            campaign.run(until=10)
        with pytest.raises(RuntimeError, match="closed"):
            campaign.run()

    def test_default_backend_is_memory(self):
        campaign = make_campaign()
        assert isinstance(campaign.backend, MemoryBackend)
        campaign.run(until=10)
        campaign.checkpoint()
        assert campaign.backend.exists()

    def test_render_uses_config_budget(self):
        campaign = make_campaign()
        campaign.run()
        assert "/ budget 30" in campaign.render()

    def test_facade_construction_emits_no_deprecation(self, recwarn):
        make_campaign(num_shards=2)
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]


class TestWarmCacheShipping:
    def test_export_import_round_trip(self, tmp_path):
        path = tmp_path / "warm.json"
        donor = make_campaign()
        donor.run()
        exported = donor.export_cache(path)
        assert exported > 0

        cold = make_campaign(seed=6)
        warmed = cold.import_cache(path)
        assert warmed == exported
        cold.run()
        # A warmed campaign must never *miss* on a shipped entry: its
        # miss count is bounded by the cold run's.
        reference = make_campaign(seed=6)
        reference.run()
        assert (
            cold.metrics.cache_stats.misses
            <= reference.metrics.cache_stats.misses
        )

    def test_sharded_export_merges_shard_caches(self, tmp_path):
        path = tmp_path / "warm.json"
        campaign = make_campaign(num_shards=4)
        campaign.run()
        merged = campaign.export_cache(path)
        per_shard = [
            shard.cache.stats.entries
            for shard in campaign.engine.scheduler.shards
        ]
        assert merged <= sum(per_shard)
        assert merged >= max(per_shard)

    def test_import_into_sharded_campaign_warms_every_shard(self, tmp_path):
        path = tmp_path / "warm.json"
        donor = make_campaign()
        donor.run()
        donor.export_cache(path)
        target = make_campaign(num_shards=2, seed=8)
        target.import_cache(path)
        for shard in target.engine.scheduler.shards:
            assert shard.cache.stats.entries > 0
