"""State backends: snapshot round trips, the SQLite schema, and error
paths.  Fingerprint-level resume identity lives in test_invariants.py;
these are the unit-level contracts."""

import json
import sqlite3
import threading
import time

import numpy as np
import pytest

from repro.engine import (
    BackendError,
    Campaign,
    CampaignConfig,
    EngineTask,
    MemoryBackend,
    SQLiteBackend,
)
from repro.engine.backends import SNAPSHOT_SECTIONS, SNAPSHOT_VERSION
from repro.simulation import SyntheticPoolConfig, generate_pool


def checkpointed_snapshot(num_shards=1, seed=5):
    rng = np.random.default_rng(1)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=24, quality_ceiling=0.95), rng
    )
    campaign = Campaign.open(
        pool,
        CampaignConfig(
            budget=30.0, confidence_target=0.95, seed=seed,
            num_shards=num_shards,
        ),
    )
    task_rng = np.random.default_rng(seed)
    campaign.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(task_rng.integers(0, 2, size=80))
    )
    campaign.run(until=30)
    campaign.checkpoint()
    return campaign.backend.load()


class TestMemoryBackend:
    def test_empty_backend_raises(self):
        backend = MemoryBackend()
        assert not backend.exists()
        with pytest.raises(BackendError, match="no checkpoint"):
            backend.load()

    def test_round_trip_is_value_identical(self):
        snapshot = checkpointed_snapshot()
        backend = MemoryBackend()
        backend.save(snapshot)
        assert backend.exists()
        assert backend.load() == snapshot

    def test_load_never_aliases_the_stored_snapshot(self):
        backend = MemoryBackend()
        backend.save(checkpointed_snapshot())
        first = backend.load()
        first["campaign"]["clock"] = -1.0
        assert backend.load()["campaign"]["clock"] != -1.0

    def test_rejects_malformed_snapshot(self):
        with pytest.raises(BackendError, match="missing sections"):
            MemoryBackend().save({"version": SNAPSHOT_VERSION})


class TestSQLiteBackend:
    def test_empty_file_raises(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "empty.db")
        assert not backend.exists()
        with pytest.raises(BackendError, match="no campaign checkpoint"):
            backend.load()

    def test_mistyped_resume_path_leaves_no_stray_files(self, tmp_path):
        """Resuming from a path that never held a campaign must fail
        without creating an empty .db (+ WAL sidecars) a later resume
        could be pointed at by accident."""
        path = tmp_path / "typo.db"
        backend = SQLiteBackend(path)
        with pytest.raises(BackendError):
            Campaign.resume(backend)
        backend.close()
        assert list(tmp_path.iterdir()) == []

    def test_round_trip_matches_memory_backend(self, tmp_path):
        """Both backends must surface the identical snapshot — that is
        what lets one restore code path serve both."""
        snapshot = checkpointed_snapshot(num_shards=2)
        memory = MemoryBackend()
        memory.save(snapshot)
        sqlite_backend = SQLiteBackend(tmp_path / "c.db")
        sqlite_backend.save(snapshot)
        assert sqlite_backend.exists()
        assert sqlite_backend.load() == memory.load()

    def test_save_replaces_previous_checkpoint(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        first = checkpointed_snapshot()
        second = checkpointed_snapshot(seed=9)
        backend.save(first)
        backend.save(second)
        assert backend.load() == MemoryBackend_normalize(second)

    def test_schema_has_the_five_tables_and_wal(self, tmp_path):
        path = tmp_path / "c.db"
        backend = SQLiteBackend(path)
        backend.save(checkpointed_snapshot(num_shards=2))
        backend.close()
        conn = sqlite3.connect(path)
        tables = {
            name
            for (name,) in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert {"campaign", "workers", "votes", "ledger", "cache"} <= tables
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        # Relational content spot-checks: every vote row references a
        # known worker; per-shard caches landed as distinct cache ids.
        workers = {
            w for (w,) in conn.execute("SELECT worker_id FROM workers")
        }
        vote_workers = {
            w for (w,) in conn.execute("SELECT DISTINCT worker_id FROM votes")
        }
        assert vote_workers <= workers
        # Per-shard caches landed as distinct cache ids (the sharded
        # engine's campaign-level cache is empty, so it contributes a
        # ledger meta row but no entry rows).
        cache_ids = {
            c for (c,) in conn.execute("SELECT DISTINCT cache_id FROM cache")
        }
        assert {"shard:0", "shard:1"} <= cache_ids
        meta_scopes = {
            s for (s,) in conn.execute(
                "SELECT scope FROM ledger WHERE scope LIKE 'cache-meta:%'"
            )
        }
        assert "cache-meta:campaign" in meta_scopes
        conn.close()

    def test_floats_survive_exactly(self, tmp_path):
        snapshot = checkpointed_snapshot()
        backend = SQLiteBackend(tmp_path / "c.db")
        backend.save(snapshot)
        loaded = backend.load()
        for original, restored in zip(
            snapshot["workers"], loaded["workers"]
        ):
            assert restored["est_quality"] == original["est_quality"]
            assert restored["spend"] == original["spend"]
        for (key_a, value_a), (key_b, value_b) in zip(
            snapshot["caches"]["campaign"]["entries"],
            loaded["caches"]["campaign"]["entries"],
        ):
            assert list(key_a) == list(key_b)
            assert value_a == value_b

    def test_restore_rejects_shard_count_mismatch(self, tmp_path):
        """A checkpoint from a 2-shard campaign must not silently load
        into a differently sharded one."""
        snapshot = checkpointed_snapshot(num_shards=2)
        snapshot["campaign"]["config"]["num_shards"] = 4
        # Forge matching shard ledgers so only the structural check at
        # the scheduler layer can catch the mismatch.
        backend = MemoryBackend()
        backend.save(snapshot)
        with pytest.raises((ValueError, KeyError)):
            Campaign.resume(backend)

    def test_resume_rejects_unknown_version(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        snapshot = checkpointed_snapshot()
        snapshot["version"] = 99
        backend.save(snapshot)
        with pytest.raises(BackendError, match="version"):
            Campaign.resume(backend)

    def test_all_sections_present_in_round_trip(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        backend.save(checkpointed_snapshot())
        loaded = backend.load()
        for section in SNAPSHOT_SECTIONS:
            assert section in loaded

    def test_busy_timeout_pragma_is_set(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        backend.save(checkpointed_snapshot())
        assert (
            backend._conn.execute("PRAGMA busy_timeout").fetchone()[0]
            == SQLiteBackend.DEFAULT_BUSY_TIMEOUT_MS
        )
        custom = SQLiteBackend(tmp_path / "d.db", busy_timeout_ms=123)
        custom.save(checkpointed_snapshot())
        assert (
            custom._conn.execute("PRAGMA busy_timeout").fetchone()[0] == 123
        )

    def test_checkpoint_while_reader_holds_the_file(self, tmp_path):
        """A dashboard/cache-warming reader sitting in an open read
        transaction must not make ``checkpoint()`` raise ``database is
        locked`` — WAL plus the busy timeout ride it out."""
        path = tmp_path / "c.db"
        backend = SQLiteBackend(path)
        backend.save(checkpointed_snapshot())

        reader = sqlite3.connect(path)
        reader.execute("BEGIN")
        assert reader.execute("SELECT COUNT(*) FROM workers").fetchone()[0]
        try:
            backend.save(checkpointed_snapshot(seed=9))  # must not raise
        finally:
            reader.rollback()
            reader.close()
        assert backend.exists()

    def test_checkpoint_waits_out_a_transient_write_lock(self, tmp_path):
        """A second writer (another engine process exporting its cache)
        briefly holds the write lock mid-checkpoint; the busy timeout
        must absorb the hold instead of surfacing ``database is
        locked``.  A zero-timeout backend on the same file proves the
        pragma is what makes the difference."""
        path = tmp_path / "c.db"
        backend = SQLiteBackend(path)
        backend.save(checkpointed_snapshot())

        locker = sqlite3.connect(path, check_same_thread=False)
        locker.execute("BEGIN IMMEDIATE")
        try:
            impatient = SQLiteBackend(path, busy_timeout_ms=0)
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                impatient.save(checkpointed_snapshot(seed=9))
            impatient.close()

            release = threading.Timer(0.25, locker.commit)
            release.start()
            start = time.monotonic()
            backend.save(checkpointed_snapshot(seed=11))  # waits, succeeds
            assert time.monotonic() - start >= 0.2
            release.join()
        finally:
            locker.close()
        loaded = backend.load()
        for section in SNAPSHOT_SECTIONS:
            assert section in loaded


def MemoryBackend_normalize(snapshot):
    """A snapshot as any backend returns it (JSON value shapes)."""
    return json.loads(json.dumps(snapshot))
