"""End-to-end engine behavior: the event loop, invariants, refunds,
reproducibility, and the events/metrics building blocks."""

import numpy as np
import pytest

from repro.engine import (
    CampaignEngine,
    EngineConfig,
    EngineTask,
    EventQueue,
    TaskArrival,
    VoteArrival,
)
from repro.simulation import SyntheticPoolConfig, generate_pool


def make_pool(num_workers=30, seed=1):
    rng = np.random.default_rng(seed)
    return generate_pool(
        SyntheticPoolConfig(num_workers=num_workers, quality_ceiling=0.95),
        rng,
    )


def run_campaign(num_tasks=200, seed=5, pool_size=30, **overrides):
    pool = make_pool(pool_size)
    defaults = dict(
        budget=0.4 * num_tasks,
        capacity=4,
        batch_size=20,
        confidence_target=0.95,
        seed=seed,
    )
    defaults.update(overrides)
    config = EngineConfig(**defaults)
    engine = CampaignEngine(pool, config)
    rng = np.random.default_rng(seed)
    truths = rng.integers(0, 2, size=num_tasks)
    engine.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    metrics = engine.run()
    return engine, metrics, config


class TestEndToEnd:
    def test_every_task_completes(self):
        _, metrics, _ = run_campaign()
        assert metrics.completed == metrics.submitted == 200

    def test_capacity_never_exceeded(self):
        engine, metrics, config = run_campaign()
        assert metrics.peak_worker_load <= config.capacity
        for state in engine.registry.states:
            assert state.peak_load <= state.capacity
            assert state.load == 0  # everything released at the end

    def test_spend_within_budget(self):
        engine, metrics, config = run_campaign()
        assert metrics.total_spend <= config.budget + 1e-9
        # The registry's ledger (worker earnings) must agree with the
        # metrics' task-side ledger.
        assert metrics.total_spend == pytest.approx(
            engine.registry.total_spend
        )

    def test_accuracy_tracks_predicted_jq(self):
        _, metrics, _ = run_campaign(num_tasks=400)
        assert metrics.realized_accuracy is not None
        assert metrics.mean_predicted_jq is not None
        assert abs(
            metrics.realized_accuracy - metrics.mean_predicted_jq
        ) < 0.1

    def test_cache_serves_most_lookups(self):
        """Under serving load the candidate pool churns through
        overlapping configurations, so most frontier re-enumerations
        find their juries' quality vectors already cached.  (Small
        static pools are instead absorbed by the scheduler's frontier
        memo before any JQ lookup happens — also fine, also cheap.)"""
        _, metrics, _ = run_campaign(
            num_tasks=600, pool_size=60, capacity=6, budget=0.35 * 600
        )
        assert metrics.cache_stats.hit_rate > 0.5


class TestEarlyStopRefunds:
    def test_early_stops_refund_unspent_cost(self):
        engine, metrics, config = run_campaign(confidence_target=0.9)
        early = [r for r in metrics.records if r.reason == "early-stop"]
        assert early, "expected some early stops at a 0.9 target"
        for record in early:
            assert record.votes_used >= 1
            assert record.spent_cost < record.reserved_cost
            assert record.refund > 0
        # Refunds flowed back into the scheduler's pot.
        assert engine.scheduler.remaining_budget == pytest.approx(
            config.budget - engine.scheduler.reserved
            + metrics.total_refunded
        )

    def test_full_juries_refund_nothing(self):
        _, metrics, _ = run_campaign(confidence_target=1.0)
        assert metrics.early_stopped == 0
        for record in metrics.records:
            if record.reason == "all-votes":
                assert record.refund == pytest.approx(0.0)

    def test_cancelled_votes_cost_nothing(self):
        engine, metrics, _ = run_campaign(confidence_target=0.9)
        # Every cast vote was paid for; cancelled ones were not.
        paid = sum(s.votes_cast for s in engine.registry.states)
        assert paid == metrics.votes_cast


class TestReproducibility:
    def test_same_seed_same_campaign(self):
        _, a, _ = run_campaign(seed=11)
        _, b, _ = run_campaign(seed=11)
        assert [
            (r.task_id, r.answer, r.votes_used, r.spent_cost, r.reason)
            for r in a.records
        ] == [
            (r.task_id, r.answer, r.votes_used, r.spent_cost, r.reason)
            for r in b.records
        ]
        assert a.total_spend == b.total_spend
        assert a.votes_cast == b.votes_cast

    def test_different_seed_different_votes(self):
        _, a, _ = run_campaign(seed=11)
        _, b, _ = run_campaign(seed=12)
        assert [r.answer for r in a.records] != [r.answer for r in b.records]

    def test_reestimation_is_deterministic_too(self):
        _, a, _ = run_campaign(seed=11, reestimate_every=50)
        _, b, _ = run_campaign(seed=11, reestimate_every=50)
        assert [r.answer for r in a.records] == [r.answer for r in b.records]
        assert a.quality_estimation_error == b.quality_estimation_error


class TestEngineLifecycle:
    def test_duplicate_task_ids_rejected(self):
        engine = CampaignEngine(make_pool(), EngineConfig(budget=1.0))
        engine.submit([EngineTask("t0")])
        with pytest.raises(ValueError):
            engine.submit([EngineTask("t0")])

    def test_single_run_per_engine(self):
        engine = CampaignEngine(make_pool(), EngineConfig(budget=1.0))
        engine.submit([EngineTask("t0")])
        engine.run()
        with pytest.raises(RuntimeError):
            engine.run()

    def test_unknown_truth_tasks_are_served_but_not_scored(self):
        pool = make_pool()
        engine = CampaignEngine(pool, EngineConfig(budget=20.0, seed=3))
        engine.submit(EngineTask(f"t{i}") for i in range(40))
        metrics = engine.run()
        assert metrics.completed == 40
        assert metrics.realized_accuracy is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(budget=-1.0)
        with pytest.raises(ValueError):
            EngineConfig(budget=1.0, batch_size=0)
        with pytest.raises(ValueError):
            EngineConfig(budget=1.0, vote_latency=0.0)
        with pytest.raises(ValueError):
            EngineConfig(budget=1.0, confidence_target=0.3)
        with pytest.raises(ValueError):
            EngineConfig(budget=1.0, confidence_target=1.1)

    def test_zero_budget_campaign_answers_priors(self):
        engine = CampaignEngine(make_pool(), EngineConfig(budget=0.0, seed=2))
        engine.submit(
            EngineTask(f"t{i}", prior=0.7, ground_truth=0) for i in range(10)
        )
        metrics = engine.run()
        assert metrics.completed == 10
        assert metrics.total_spend == 0.0
        assert all(r.reason == "unfunded" for r in metrics.records)
        assert all(r.answer == 0 for r in metrics.records)  # prior mode


class TestEventQueue:
    def test_orders_by_time_then_fifo(self):
        queue = EventQueue()
        queue.push(VoteArrival(2.0, "t1", "w1"))
        queue.push(TaskArrival(1.0, EngineTask("t2")))
        queue.push(VoteArrival(2.0, "t1", "w2"))
        first = queue.pop()
        assert isinstance(first, TaskArrival)
        assert queue.pop().worker_id == "w1"
        assert queue.pop().worker_id == "w2"

    def test_pending_counts_by_type(self):
        queue = EventQueue()
        queue.push(TaskArrival(0.0, EngineTask("t1")))
        queue.push(VoteArrival(1.0, "t1", "w1"))
        assert queue.pending(TaskArrival) == 1
        queue.pop()
        assert queue.pending(TaskArrival) == 0
        assert queue.pending(VoteArrival) == 1

    def test_task_validation(self):
        with pytest.raises(ValueError):
            EngineTask("")
        with pytest.raises(ValueError):
            EngineTask("t", ground_truth=2)
