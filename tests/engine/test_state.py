"""Worker registry: capacity accounting, spend, quality drift."""

import numpy as np
import pytest

from repro.core import Worker, WorkerPool
from repro.engine import CapacityError, WorkerRegistry


@pytest.fixture
def pool():
    return WorkerPool(
        [
            Worker("a", 0.9, 1.0),
            Worker("b", 0.7, 0.5),
            Worker("c", 0.6, 0.2),
        ]
    )


class TestCapacity:
    def test_assign_consumes_seats(self, pool):
        registry = WorkerRegistry(pool, capacity=2)
        registry.assign("a", "t1")
        registry.assign("a", "t2")
        assert registry.free_capacity("a") == 0
        assert registry.state("a").peak_load == 2

    def test_assign_beyond_capacity_raises(self, pool):
        registry = WorkerRegistry(pool, capacity=1)
        registry.assign("a", "t1")
        with pytest.raises(CapacityError):
            registry.assign("a", "t2")

    def test_duplicate_assignment_rejected(self, pool):
        registry = WorkerRegistry(pool, capacity=3)
        registry.assign("a", "t1")
        with pytest.raises(ValueError):
            registry.assign("a", "t1")

    def test_release_frees_seat(self, pool):
        registry = WorkerRegistry(pool, capacity=1)
        registry.assign("a", "t1")
        registry.release("a", "t1")
        registry.assign("a", "t2")  # does not raise

    def test_per_worker_capacity_mapping(self, pool):
        registry = WorkerRegistry(pool, capacity={"a": 1, "b": 5, "c": 2})
        assert registry.state("b").capacity == 5
        registry.assign("a", "t1")
        with pytest.raises(CapacityError):
            registry.assign("a", "t2")

    def test_available_pool_excludes_saturated(self, pool):
        registry = WorkerRegistry(pool, capacity=1)
        registry.assign("b", "t1")
        available = registry.available_pool()
        assert "b" not in available
        assert "a" in available and "c" in available


class TestSpendAndHistory:
    def test_record_vote_pays_worker(self, pool):
        registry = WorkerRegistry(pool, capacity=2)
        registry.record_vote("a", "t1", 1)
        registry.record_vote("a", "t2", 0)
        assert registry.state("a").spend == pytest.approx(2.0)
        assert registry.total_spend == pytest.approx(2.0)
        assert registry.state("a").votes_cast == 2

    def test_resolve_credits_agreement(self, pool):
        registry = WorkerRegistry(pool, capacity=2)
        registry.record_vote("a", "t1", 1)
        registry.record_vote("b", "t1", 0)
        registry.resolve("t1", 1)
        assert registry.state("a").observed_accuracy == 1.0
        assert registry.state("b").observed_accuracy == 0.0


class TestReestimation:
    def _stream_votes(self, registry, rng, num_tasks=40):
        """Workers vote per their *true* quality on random truths."""
        for t in range(num_tasks):
            truth = int(rng.random() < 0.5)
            for worker_id in registry.worker_ids:
                q = registry.true_quality(worker_id)
                vote = truth if rng.random() < q else 1 - truth
                registry.record_vote(worker_id, f"t{t}", vote)

    def test_estimates_drift_toward_truth(self, pool):
        rng = np.random.default_rng(3)
        # Cold start: everyone assumed mediocre.
        registry = WorkerRegistry(pool, capacity=4, initial_quality=0.55)
        before = registry.estimation_error()
        self._stream_votes(registry, rng)
        registry.reestimate(learning_rate=1.0)
        assert registry.estimation_error() < before
        # The best worker should now be recognized as the best.
        estimates = {w: registry.worker(w).quality for w in registry.worker_ids}
        assert max(estimates, key=estimates.get) == "a"

    def test_learning_rate_blends(self, pool):
        rng = np.random.default_rng(3)
        registry = WorkerRegistry(pool, capacity=4, initial_quality=0.55)
        self._stream_votes(registry, rng)
        registry.reestimate(learning_rate=0.5)
        half = registry.worker("a").quality
        assert 0.55 < half < 0.98  # moved, but not all the way

    def test_min_votes_guard(self, pool):
        registry = WorkerRegistry(pool, capacity=4)
        registry.record_vote("a", "t1", 1)
        updated = registry.reestimate(min_votes=3)
        assert updated == {}

    def test_dawid_skene_method(self, pool):
        rng = np.random.default_rng(3)
        registry = WorkerRegistry(pool, capacity=4, initial_quality=0.55)
        self._stream_votes(registry, rng)
        before = registry.estimation_error()
        registry.reestimate(method="dawid-skene", learning_rate=1.0)
        assert registry.estimation_error() < before

    def test_unknown_method_rejected(self, pool):
        registry = WorkerRegistry(pool, capacity=4)
        registry.record_vote("a", "t1", 1)
        with pytest.raises(ValueError):
            registry.reestimate(method="majority-wins")

    def test_no_votes_is_a_noop(self, pool):
        registry = WorkerRegistry(pool, capacity=4)
        assert registry.reestimate() == {}


class TestValidation:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            WorkerRegistry(WorkerPool())

    def test_nonpositive_capacity_rejected(self, pool):
        with pytest.raises(ValueError):
            WorkerRegistry(pool, capacity=0)
