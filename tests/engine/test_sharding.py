"""Unit tests for the sharded serving layer: partitioning, registry
views, the budget allocator's ledger, routing policies, rebalancing,
and the sharded engine's reporting surface."""

import numpy as np
import pytest

from repro.core import Worker, WorkerPool
from repro.engine import (
    BudgetAllocator,
    CampaignEngine,
    EngineConfig,
    EngineTask,
    ShardedCampaignEngine,
    ShardedScheduler,
    ShardingConfig,
    ShardRegistryView,
    WorkerRegistry,
    partition_members,
    quality_mass,
)
from repro.engine.sharding import MIN_SHARD_MEMBERS
from repro.simulation import SyntheticPoolConfig, generate_pool


def make_registry(qualities, capacity=2):
    pool = WorkerPool(
        Worker(f"w{i}", q, 1.0) for i, q in enumerate(qualities)
    )
    return WorkerRegistry(pool, capacity=capacity)


def make_scheduler(
    num_workers=16,
    shards=4,
    policy="hash",
    budget=30.0,
    expected=100,
    capacity=2,
    seed=5,
    **sharding_kw,
):
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=num_workers, quality_ceiling=0.95),
        rng,
    )
    registry = WorkerRegistry(pool, capacity=capacity)
    config = EngineConfig(budget=budget, capacity=capacity, seed=seed)
    sharding = ShardingConfig(shards, policy=policy, **sharding_kw)
    return ShardedScheduler(registry, config, sharding, expected)


class TestShardingConfig:
    def test_validates_num_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardingConfig(0)

    def test_validates_policy(self):
        with pytest.raises(ValueError, match="routing policy"):
            ShardingConfig(2, policy="round-robin")

    def test_validates_rebalance_threshold(self):
        with pytest.raises(ValueError, match="rebalance_threshold"):
            ShardingConfig(2, rebalance_threshold=0.0)

    def test_validates_rebalance_moves(self):
        with pytest.raises(ValueError, match="rebalance_max_moves"):
            ShardingConfig(2, rebalance_max_moves=-1)


class TestPartition:
    def test_round_robin_deal_is_stratified(self):
        registry = make_registry([0.95, 0.9, 0.85, 0.8, 0.75, 0.7])
        members = partition_members(registry, 2)
        # Most-informative-first deal: shard 0 gets ranks 0,2,4...
        assert members[0] == ["w0", "w2", "w4"]
        assert members[1] == ["w1", "w3", "w5"]

    def test_every_worker_lands_exactly_once(self):
        registry = make_registry(np.linspace(0.55, 0.95, 13))
        members = partition_members(registry, 4)
        flat = [w for shard in members for w in shard]
        assert sorted(flat) == sorted(registry.worker_ids)

    def test_rejects_more_shards_than_workers(self):
        registry = make_registry([0.8, 0.7])
        with pytest.raises(ValueError, match="num_shards"):
            partition_members(registry, 3)


class TestShardRegistryView:
    def test_filters_to_members(self):
        registry = make_registry([0.9, 0.8, 0.7, 0.6])
        view = ShardRegistryView(registry, ["w0", "w2"])
        assert len(view) == 2
        assert {s.worker.worker_id for s in view.states} == {"w0", "w2"}
        pool_ids = {w.worker_id for w in view.available_pool()}
        assert pool_ids == {"w0", "w2"}

    def test_member_order_follows_global_registry(self):
        registry = make_registry([0.9, 0.8, 0.7, 0.6])
        view = ShardRegistryView(registry, ["w2", "w0"])
        assert view.member_ids == ("w0", "w2")

    def test_rejects_unknown_member(self):
        registry = make_registry([0.9])
        with pytest.raises(KeyError):
            ShardRegistryView(registry, ["ghost"])

    def test_assign_outside_shard_is_refused(self):
        registry = make_registry([0.9, 0.8])
        view = ShardRegistryView(registry, ["w0"])
        with pytest.raises(KeyError, match="not a member"):
            view.assign("w1", "t0")
        assert view.free_capacity("w1") == 0  # not ours to seat

    def test_assignment_flows_to_global_registry(self):
        registry = make_registry([0.9, 0.8], capacity=1)
        view = ShardRegistryView(registry, ["w0"])
        view.assign("w0", "t0")
        assert registry.state("w0").load == 1
        assert view.active_seats == 1
        assert view.load_ratio == 1.0

    def test_membership_moves_are_visible(self):
        registry = make_registry([0.9, 0.8])
        a = ShardRegistryView(registry, ["w0"])
        b = ShardRegistryView(registry, ["w1"])
        a.remove_member("w0")
        b.add_member("w0")
        assert len(a) == 0
        assert b.member_ids == ("w0", "w1")

    def test_quality_mass_counts_available_only(self):
        registry = make_registry([0.9, 0.8], capacity=1)
        view = ShardRegistryView(registry, ["w0", "w1"])
        full = view.quality_mass()
        view.assign("w0", "t0")
        assert view.quality_mass() < full
        assert view.quality_mass(available_only=False) == pytest.approx(
            quality_mass(view.states, available_only=False)
        )


class TestBudgetAllocator:
    def test_entitlement_grows_pro_rata_and_caps_at_budget(self):
        allocator = BudgetAllocator(budget=100.0, expected_tasks=10)
        assert allocator.open_round(["a", "b"]) == pytest.approx(20.0)
        assert allocator.entitled == pytest.approx(20.0)
        # Re-presenting the same ids mints nothing new.
        assert allocator.open_round(["a", "b"]) == pytest.approx(20.0)
        allocator.open_round([f"t{i}" for i in range(50)])
        assert allocator.entitled == 100.0

    def test_round_budget_nets_out_reservations_and_refunds(self):
        allocator = BudgetAllocator(budget=100.0, expected_tasks=10)
        allocator.open_round(["a", "b"])
        grants = allocator.split(20.0, {0: 1.0})
        allocator.settle(grants[0], 15.0)
        assert allocator.open_round([]) == pytest.approx(5.0)
        allocator.refund(5.0)
        assert allocator.open_round([]) == pytest.approx(10.0)

    def test_split_is_proportional_to_mass(self):
        allocator = BudgetAllocator(budget=100.0, expected_tasks=10)
        grants = allocator.split(30.0, {0: 2.0, 1: 1.0})
        assert grants[0] == pytest.approx(20.0)
        assert grants[1] == pytest.approx(10.0)
        assert allocator.granted == pytest.approx(30.0)

    def test_split_zero_mass_falls_back_to_equal(self):
        allocator = BudgetAllocator(budget=100.0, expected_tasks=10)
        grants = allocator.split(30.0, {0: 0.0, 2: 0.0})
        assert grants == {0: 15.0, 2: 15.0}

    def test_sole_recipient_gets_exact_round_budget(self):
        allocator = BudgetAllocator(budget=100.0, expected_tasks=10)
        budget = 0.1 + 0.2  # a float that proportional math would mangle
        assert allocator.split(budget, {3: 0.3})[3] == budget

    def test_settle_rejects_overspend_and_tracks_reabsorption(self):
        allocator = BudgetAllocator(budget=100.0, expected_tasks=10)
        grants = allocator.split(20.0, {0: 1.0, 1: 1.0})
        allocator.settle(grants[0], 4.0)
        assert allocator.reserved == pytest.approx(4.0)
        assert allocator.reabsorbed == pytest.approx(6.0)
        with pytest.raises(ValueError, match="beyond its grant"):
            allocator.settle(grants[1], 11.0)

    def test_refund_rejects_negative(self):
        allocator = BudgetAllocator(budget=10.0, expected_tasks=1)
        with pytest.raises(ValueError, match="refund"):
            allocator.refund(-1.0)

    def test_snapshot_carries_the_ledger(self):
        allocator = BudgetAllocator(budget=50.0, expected_tasks=5)
        allocator.open_round(["a"])
        grants = allocator.split(10.0, {0: 1.0})
        allocator.settle(grants[0], 7.0)
        allocator.refund(2.0)
        snap = allocator.snapshot()
        assert snap.rounds == 1
        assert snap.granted == pytest.approx(10.0)
        assert snap.reserved == pytest.approx(7.0)
        assert snap.reabsorbed == pytest.approx(3.0)
        assert snap.refunded == pytest.approx(2.0)
        assert "re-absorbed" in snap.render()


class TestRouting:
    def tasks(self, n):
        return [EngineTask(f"t{i}") for i in range(n)]

    def test_hash_routing_is_sticky_and_deterministic(self):
        scheduler = make_scheduler(policy="hash")
        routed = scheduler.route(self.tasks(40))
        again = scheduler.route(self.tasks(40))
        assert {
            k: [t.task_id for t in v] for k, v in routed.items()
        } == {k: [t.task_id for t in v] for k, v in again.items()}
        assert sum(len(v) for v in routed.values()) == 40
        assert len(routed) > 1  # 40 ids do not all collide

    def test_least_loaded_spreads_a_burst_evenly(self):
        scheduler = make_scheduler(policy="least-loaded", shards=4)
        routed = scheduler.route(self.tasks(40))
        sizes = sorted(len(v) for v in routed.values())
        assert sizes == [10, 10, 10, 10]

    def test_least_loaded_avoids_a_busy_shard(self):
        scheduler = make_scheduler(policy="least-loaded", shards=2)
        busy = scheduler.shards[0]
        for state in busy.view.states:
            busy.view.assign(state.worker.worker_id, "hog")
        routed = scheduler.route(self.tasks(4))
        assert set(routed) == {1}

    def test_quality_balanced_prefers_the_heavier_shard(self):
        scheduler = make_scheduler(policy="quality-balanced", shards=2)
        masses = {
            k: scheduler.shards[k].view.quality_mass() for k in (0, 1)
        }
        heavier = max(masses, key=masses.get)
        routed = scheduler.route(self.tasks(1))
        assert set(routed) == {heavier}

    def test_routing_preserves_task_order_within_shards(self):
        scheduler = make_scheduler(policy="hash")
        tasks = self.tasks(30)
        order = {t.task_id: i for i, t in enumerate(tasks)}
        for sub in scheduler.route(tasks).values():
            indices = [order[t.task_id] for t in sub]
            assert indices == sorted(indices)


class TestRebalancing:
    def skewed_scheduler(self, **kw):
        scheduler = make_scheduler(
            shards=2, num_workers=12, rebalance_threshold=0.1, **kw
        )
        # Saturate shard 1, leave shard 0 idle.
        needy = scheduler.shards[1]
        for state in needy.view.states:
            for i in range(state.free_capacity):
                needy.view.assign(state.worker.worker_id, f"hog-{i}")
        return scheduler

    def test_skew_migrates_idle_workers_to_the_needy_shard(self):
        scheduler = self.skewed_scheduler()
        before = len(scheduler.shards[1].view)
        moved = scheduler.rebalance()
        assert moved == scheduler.sharding.rebalance_max_moves
        assert len(scheduler.shards[1].view) == before + moved
        assert scheduler.shards[0].migrations_out == moved
        assert scheduler.shards[1].migrations_in == moved

    def test_balanced_load_does_not_migrate(self):
        scheduler = make_scheduler(shards=2, rebalance_threshold=0.5)
        assert scheduler.rebalance() == 0

    def test_donor_is_never_stripped_below_minimum(self):
        scheduler = self.skewed_scheduler(rebalance_max_moves=100)
        scheduler.rebalance()
        assert len(scheduler.shards[0].view) >= MIN_SHARD_MEMBERS

    def test_zero_max_moves_disables(self):
        scheduler = self.skewed_scheduler(rebalance_max_moves=0)
        assert scheduler.rebalance() == 0


class TestShardedEngine:
    def run_campaign(self, shards=4, num_tasks=80, pool_size=32, seed=9):
        rng = np.random.default_rng(seed)
        pool = generate_pool(
            SyntheticPoolConfig(
                num_workers=pool_size, quality_ceiling=0.95
            ),
            rng,
        )
        config = EngineConfig(
            budget=0.35 * num_tasks, capacity=3, batch_size=20, seed=seed
        )
        engine = ShardedCampaignEngine(pool, config, shards)
        truths = rng.integers(0, 2, size=num_tasks)
        engine.submit(
            EngineTask(f"t{i}", ground_truth=int(t))
            for i, t in enumerate(truths)
        )
        return engine, engine.run()

    def test_campaign_completes_with_shard_reporting(self):
        engine, metrics = self.run_campaign()
        assert metrics.completed == 80
        assert len(metrics.shard_snapshots) == 4
        assert metrics.allocator_snapshot.rounds > 0
        report = metrics.render(budget=engine.config.budget)
        assert "sharding" in report
        assert "shard 0:" in report

    def test_cache_stats_are_aggregated_across_shards(self):
        engine, metrics = self.run_campaign()
        per_shard = [s.cache for s in metrics.shard_snapshots]
        assert metrics.cache_stats.lookups == sum(
            c.lookups for c in per_shard
        )
        assert metrics.cache_stats.entries == sum(
            c.entries for c in per_shard
        )

    def test_accepts_bare_int_shard_count(self):
        engine, metrics = self.run_campaign(shards=2)
        assert engine.sharding.num_shards == 2

    def test_rejects_more_shards_than_workers(self):
        rng = np.random.default_rng(0)
        pool = generate_pool(SyntheticPoolConfig(num_workers=4), rng)
        config = EngineConfig(budget=10.0)
        with pytest.raises(ValueError, match="pool size"):
            ShardedCampaignEngine(pool, config, ShardingConfig(5))

    def test_matches_plain_engine_at_one_shard(self):
        """The headline regression: ShardingConfig(1) is the plain
        engine, bit for bit (full matrix in test_invariants.py)."""
        engine, sharded = self.run_campaign(shards=1)
        rng = np.random.default_rng(9)
        pool = generate_pool(
            SyntheticPoolConfig(num_workers=32, quality_ceiling=0.95), rng
        )
        config = EngineConfig(
            budget=0.35 * 80, capacity=3, batch_size=20, seed=9
        )
        plain_engine = CampaignEngine(pool, config)
        truths = rng.integers(0, 2, size=80)
        plain_engine.submit(
            EngineTask(f"t{i}", ground_truth=int(t))
            for i, t in enumerate(truths)
        )
        plain = plain_engine.run()
        assert plain.fingerprint() == sharded.fingerprint()


class TestAdmitErrorSettlement:
    """Regression: a shard scheduler raising mid-``admit`` used to leave
    that round's grants unsettled — the allocator then violated
    ``granted == reserved + reabsorbed`` for the rest of the campaign,
    and the round's unreserved budget was never re-absorbed (a
    permanent ledger leak).  The error path must settle every grant
    against what each shard actually reserved before re-raising."""

    @staticmethod
    def build(parallel=0, shards=4, seed=5):
        rng = np.random.default_rng(seed)
        pool = generate_pool(
            SyntheticPoolConfig(num_workers=16, quality_ceiling=0.95), rng
        )
        registry = WorkerRegistry(pool, capacity=2)
        config = EngineConfig(
            budget=30.0, capacity=2, seed=seed, parallel_shards=parallel
        )
        return ShardedScheduler(
            registry, config, ShardingConfig(shards), 100
        )

    @staticmethod
    def tasks(count, offset=0):
        return [EngineTask(f"t{offset + i}") for i in range(count)]

    @staticmethod
    def assert_ledger(scheduler):
        allocator = scheduler.allocator
        assert allocator.granted == pytest.approx(
            allocator.reserved + allocator.reabsorbed, abs=1e-9
        )
        shard_reserved = sum(
            shard.scheduler.reserved for shard in scheduler.shards
        )
        assert shard_reserved == pytest.approx(
            allocator.reserved, abs=1e-9
        )
        granted = sum(shard.granted for shard in scheduler.shards)
        assert granted == pytest.approx(allocator.granted, abs=1e-9)

    @pytest.mark.parametrize("parallel", [0, 4])
    def test_raise_before_reserving_reabsorbs_the_grant(self, parallel):
        scheduler = self.build(parallel=parallel)
        calls = []

        def exploding_admit(tasks, batch_budget=None):
            calls.append(len(tasks))
            raise RuntimeError("shard exploded")

        scheduler.shards[2].scheduler.admit = exploding_admit
        with pytest.raises(RuntimeError, match="shard exploded"):
            scheduler.admit(self.tasks(16))
        assert calls, "the broken shard was never dispatched to"
        self.assert_ledger(scheduler)

    @pytest.mark.parametrize("parallel", [0, 4])
    def test_raise_after_partial_reserve_settles_the_delta(self, parallel):
        scheduler = self.build(parallel=parallel)
        victim = scheduler.shards[1].scheduler
        real_admit = victim.admit

        def admit_then_explode(tasks, batch_budget=None):
            real_admit(tasks, batch_budget)
            raise RuntimeError("post-reserve failure")

        scheduler.shards[1].scheduler.admit = admit_then_explode
        with pytest.raises(RuntimeError, match="post-reserve failure"):
            scheduler.admit(self.tasks(16))
        # The victim's real reservations happened before the raise; the
        # repair must settle them (not zero) or the shard-sum law breaks.
        self.assert_ledger(scheduler)

    def test_scheduler_still_serves_after_a_failed_round(self):
        scheduler = self.build()
        original = scheduler.shards[3].scheduler.admit

        def explode_once(tasks, batch_budget=None):
            scheduler.shards[3].scheduler.admit = original
            raise RuntimeError("transient")

        scheduler.shards[3].scheduler.admit = explode_once
        with pytest.raises(RuntimeError, match="transient"):
            scheduler.admit(self.tasks(16))
        self.assert_ledger(scheduler)
        assignments, deferred = scheduler.admit(self.tasks(16, offset=100))
        assert assignments or deferred
        self.assert_ledger(scheduler)
