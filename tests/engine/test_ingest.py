"""Unit tests for the async intake layer (`repro.engine.ingest`).

The concurrency *invariants* (budget/capacity/ledger laws under
interleaving, fingerprint pins against the sync path) live in
``test_invariants.py``; this file covers the intake queue's own
contract: stamping, ordering, bounded backpressure, close semantics,
duplicate detection across threads, and the seeded interleaving
schedule's replayability.
"""

import threading
import time

import numpy as np
import pytest

from repro.engine import (
    AsyncIngestLoop,
    Campaign,
    CampaignConfig,
    EngineConfig,
    EngineTask,
    IngestionClosed,
    IngestionOverflow,
    IngestStats,
    IntakeQueue,
    InterleavingSchedule,
)
from repro.engine.engine import CampaignEngine
from repro.simulation import SyntheticPoolConfig, generate_pool


def tasks(n, prefix="t"):
    return [EngineTask(f"{prefix}{i}") for i in range(n)]


# ----------------------------------------------------------------------
# IntakeQueue
# ----------------------------------------------------------------------
def test_submit_stamps_arrival_times_in_order():
    queue = IntakeQueue()
    assert queue.submit(tasks(3), start_time=5.0, spacing=2.0) == 3
    drained = queue.drain()
    assert [(t, task.task_id) for t, task in drained] == [
        (5.0, "t0"),
        (7.0, "t1"),
        (9.0, "t2"),
    ]
    assert queue.pending == 0
    assert queue.stats.submitted == 3
    assert queue.stats.drained == 3
    assert queue.stats.peak_pending == 3


def test_drain_max_items_takes_oldest_first():
    queue = IntakeQueue()
    queue.submit(tasks(5))
    first = queue.drain(2)
    assert [task.task_id for _, task in first] == ["t0", "t1"]
    assert queue.pending == 3
    assert [task.task_id for _, task in queue.drain()] == ["t2", "t3", "t4"]


def test_rejects_non_tasks_and_duplicates():
    queue = IntakeQueue()
    with pytest.raises(TypeError):
        queue.submit(["not a task"])
    queue.submit(tasks(2))
    with pytest.raises(ValueError, match="duplicate"):
        queue.submit([EngineTask("t1")])
    # Seeded ids (the resume path) are duplicates too.
    seeded = IntakeQueue(seen_ids={"old"})
    with pytest.raises(ValueError, match="duplicate"):
        seeded.submit([EngineTask("old")])


def test_backpressure_times_out_with_overflow():
    queue = IntakeQueue(max_pending=2)
    queue.submit(tasks(2))
    start = time.monotonic()
    with pytest.raises(IngestionOverflow):
        queue.submit([EngineTask("t9")], timeout=0.05)
    assert time.monotonic() - start >= 0.05
    assert queue.stats.blocked_submits == 1
    assert queue.pending == 2  # the overflowing task was never staged


def test_backpressure_unblocks_when_drained():
    queue = IntakeQueue(max_pending=2)
    queue.submit(tasks(2))
    staged = []

    def producer():
        staged.append(queue.submit([EngineTask("t9")], timeout=5.0))

    thread = threading.Thread(target=producer)
    thread.start()
    time.sleep(0.02)  # let the producer hit the full queue
    queue.drain(1)
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert staged == [1]
    assert {task.task_id for _, task in queue.drain()} == {"t1", "t9"}


def test_close_wakes_blocked_producer_with_closed_error():
    queue = IntakeQueue(max_pending=1)
    queue.submit(tasks(1))
    errors = []

    def producer():
        try:
            queue.submit([EngineTask("t9")])
        except IngestionClosed as exc:
            errors.append(exc)

    thread = threading.Thread(target=producer)
    thread.start()
    time.sleep(0.02)
    queue.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert len(errors) == 1
    with pytest.raises(IngestionClosed):
        queue.submit([EngineTask("t10")])


def test_wait_for_traffic():
    queue = IntakeQueue()
    start = time.monotonic()
    assert queue.wait_for_traffic(0.03) is False
    assert time.monotonic() - start >= 0.03
    queue.submit(tasks(1))
    assert queue.wait_for_traffic(0.03) is True
    queue.drain()
    queue.close()  # closed + empty: returns promptly, nothing pending
    assert queue.wait_for_traffic(5.0) is False


def test_concurrent_producers_stage_everything_exactly_once():
    queue = IntakeQueue(max_pending=64)
    per_thread = 50

    def producer(j):
        for i in range(per_thread):
            queue.submit([EngineTask(f"p{j}-{i}")], start_time=float(i))

    threads = [
        threading.Thread(target=producer, args=(j,)) for j in range(4)
    ]
    for thread in threads:
        thread.start()
    drained = []
    while len(drained) < 4 * per_thread:
        drained.extend(queue.drain())
        time.sleep(0.001)
    for thread in threads:
        thread.join(timeout=5.0)
    ids = [task.task_id for _, task in drained]
    assert len(ids) == len(set(ids)) == 4 * per_thread
    # Per-producer submission order survives interleaving.
    for j in range(4):
        mine = [i for i in ids if i.startswith(f"p{j}-")]
        assert mine == [f"p{j}-{i}" for i in range(per_thread)]


def test_intake_validation():
    with pytest.raises(ValueError):
        IntakeQueue(max_pending=0)
    with pytest.raises(ValueError):
        InterleavingSchedule(0, max_chunk=0)
    with pytest.raises(ValueError):
        IntakeQueue(producer_quota=1.5)
    with pytest.raises(ValueError):
        IntakeQueue(producer_quota=-0.1)


# ----------------------------------------------------------------------
# Per-producer intake quota
# ----------------------------------------------------------------------
def test_quota_caps_one_producer_without_starving_peers():
    # cap = max(1, int(0.25 * 8)) = 2 staged slots per producer.
    queue = IntakeQueue(max_pending=8, producer_quota=0.25)
    queue.submit(tasks(2, prefix="a"))
    with pytest.raises(IngestionOverflow, match="quota"):
        queue.submit([EngineTask("a9")], timeout=0.02)
    assert queue.stats.quota_blocked == 1
    assert queue.stats.quota_overflows == 1
    # The firehose producer being throttled leaves room for a peer.
    staged = []
    peer = threading.Thread(
        target=lambda: staged.append(queue.submit(tasks(2, prefix="b"))),
        name="peer-producer",
    )
    peer.start()
    peer.join(timeout=5.0)
    assert staged == [2]
    assert queue.pending == 4


def test_quota_frees_as_own_tasks_drain():
    queue = IntakeQueue(max_pending=8, producer_quota=0.25)
    queue.submit(tasks(2))
    released = []

    def producer():
        released.append(queue.submit([EngineTask("t9")], timeout=5.0))

    # Quota is keyed by the submitting thread's name: impersonate the
    # main thread so the helper counts against the same producer.
    thread = threading.Thread(
        target=producer, name=threading.current_thread().name
    )
    thread.start()
    time.sleep(0.02)
    assert not released  # still over quota
    queue.drain(1)  # the producer's own staged count drops below cap
    thread.join(timeout=5.0)
    assert released == [1]
    assert queue.stats.quota_overflows == 0


def test_quota_floor_is_one_slot():
    # A tiny quota never rounds to zero — every producer may always
    # stage at least one task.
    queue = IntakeQueue(max_pending=4, producer_quota=0.01)
    assert queue.submit(tasks(1)) == 1
    with pytest.raises(IngestionOverflow, match="quota"):
        queue.submit([EngineTask("t9")], timeout=0.02)


def test_quota_zero_disables_enforcement():
    queue = IntakeQueue(max_pending=4, producer_quota=0.0)
    assert queue.submit(tasks(4)) == 4  # one producer fills the queue


def test_quota_counters_survive_state_round_trip():
    queue = IntakeQueue(max_pending=4, producer_quota=0.25)
    queue.submit(tasks(1))
    with pytest.raises(IngestionOverflow):
        queue.submit([EngineTask("t9")], timeout=0.01)
    state = queue.stats.state_dict()
    restored = IngestStats.from_state(state)
    assert restored.quota_blocked == 1
    assert restored.quota_overflows == 1
    # Old checkpoints without the quota keys still load.
    legacy = {k: v for k, v in state.items() if not k.startswith("quota")}
    assert IngestStats.from_state(legacy).quota_overflows == 0


def test_campaign_config_threads_quota_to_the_loop():
    rng = np.random.default_rng(0)
    pool = generate_pool(SyntheticPoolConfig(num_workers=8), rng)
    with Campaign.open(
        pool,
        CampaignConfig(
            budget=5.0,
            ingestion="async",
            ingest_max_pending=8,
            ingest_producer_quota=0.25,
        ),
    ) as campaign:
        intake = campaign._ingest.intake
        assert intake.producer_quota == 0.25
        assert intake._quota_cap == 2
    with pytest.raises(ValueError, match="quota"):
        CampaignConfig(budget=5.0, ingest_producer_quota=1.5)
    with pytest.raises(ValueError):
        InterleavingSchedule(0, max_take=0)


def test_interleaving_schedule_replays_per_seed():
    a = InterleavingSchedule(7)
    b = InterleavingSchedule(7)
    draws_a = [(a.next_take(), a.next_chunk()) for _ in range(50)]
    draws_b = [(b.next_take(), b.next_chunk()) for _ in range(50)]
    assert draws_a == draws_b
    assert all(
        1 <= take <= a.max_take and 1 <= chunk <= a.max_chunk
        for take, chunk in draws_a
    )
    c = InterleavingSchedule(8)
    assert [(c.next_take(), c.next_chunk()) for _ in range(50)] != draws_a


# ----------------------------------------------------------------------
# AsyncIngestLoop / facade plumbing
# ----------------------------------------------------------------------
def _engine(num_tasks=20, seed=3):
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=12, quality_ceiling=0.95), rng
    )
    config = EngineConfig(
        budget=0.3 * num_tasks,
        capacity=3,
        batch_size=10,
        confidence_target=0.95,
        expected_tasks=num_tasks,
        seed=seed,
    )

    class _Engine(CampaignEngine):  # no deprecation warning
        pass

    return _Engine(pool, config)


def test_loop_run_is_not_reentrant():
    loop = AsyncIngestLoop(_engine())
    loop._running = True
    with pytest.raises(RuntimeError, match="not reentrant"):
        loop.run()


def test_finished_loop_closes_its_intake():
    loop = AsyncIngestLoop(_engine())
    loop.submit(tasks(20))
    metrics = loop.run()
    assert metrics.completed == 20
    assert loop.intake.closed
    with pytest.raises(IngestionClosed):
        loop.submit(tasks(1, prefix="late"))


def test_paused_at_target_leaves_intake_open_even_when_queue_drains():
    """run(until=N) must pause with the intake open — even when the
    Nth completion happens to drain the event queue — so live
    producers can keep submitting across the pause."""
    loop = AsyncIngestLoop(_engine(num_tasks=25))
    loop.submit(tasks(20))
    metrics = loop.run(until=20)  # target lands exactly on exhaustion
    assert metrics.completed == 20
    assert not loop.engine._finished
    assert not loop.intake.closed
    loop.submit(tasks(5, prefix="late"))  # must still be accepted
    metrics = loop.run()
    assert metrics.completed == 25
    assert loop.engine._finished
    assert loop.intake.closed


def test_run_to_quiescence_serves_submits_that_race_the_exit():
    """A submit landing in the window between the final grace check and
    the intake close must still be served before run(until=None)
    finalizes — never left staged in a 'finished' campaign."""
    loop = AsyncIngestLoop(_engine(num_tasks=21), grace=0.01)
    loop.submit(tasks(20))
    real_wait = loop.intake.wait_for_traffic
    raced = []

    def racing_wait(timeout):
        # Simulate the adversarial interleaving: traffic arrives right
        # as the grace window concludes there is none.
        if not raced:
            raced.append(True)
            loop.submit(tasks(1, prefix="raced"))
            return False  # the stale answer the loop must survive
        return real_wait(timeout)

    loop.intake.wait_for_traffic = racing_wait
    metrics = loop.run()
    assert raced
    assert metrics.completed == 21  # the raced task was served
    assert loop.engine._finished
    assert loop.intake.pending == 0


def test_loop_grace_window_serves_straggler_producers():
    """A producer that appears while the loop idles inside its grace
    window is served in the same run."""
    loop = AsyncIngestLoop(_engine(num_tasks=30), grace=5.0)
    loop.submit(tasks(10))

    def straggler():
        time.sleep(0.05)
        loop.submit(tasks(20, prefix="late"))
        loop.close_intake()

    thread = threading.Thread(target=straggler)
    thread.start()
    metrics = loop.run()
    thread.join(timeout=5.0)
    assert metrics.completed == 30
    assert metrics.submitted == 30


def test_async_campaign_validates_config():
    with pytest.raises(ValueError, match="ingestion"):
        CampaignConfig(budget=1.0, ingestion="bogus")
    with pytest.raises(ValueError, match="parallel_shards"):
        CampaignConfig(budget=1.0, parallel_shards=-1)
    with pytest.raises(ValueError, match="ingest_max_pending"):
        CampaignConfig(budget=1.0, ingest_max_pending=0)
    with pytest.raises(ValueError, match="ingest_grace"):
        CampaignConfig(budget=1.0, ingest_grace=0.0)


def test_async_facade_campaign_round_trip(tmp_path):
    """The facade surface (submit -> run -> report) works end to end
    with async ingestion + parallel dispatch, and duplicate submission
    is caught at the intake."""
    rng = np.random.default_rng(5)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=24, quality_ceiling=0.95), rng
    )
    campaign = Campaign.open(
        pool,
        CampaignConfig(
            budget=9.0,
            capacity=3,
            batch_size=10,
            confidence_target=0.95,
            seed=5,
            num_shards=2,
            ingestion="async",
            parallel_shards=2,
        ),
    )
    campaign.submit(tasks(30))
    with pytest.raises(ValueError, match="duplicate"):
        campaign.submit([EngineTask("t0")])
    metrics = campaign.run()
    assert campaign.done
    assert metrics.completed == 30
    assert "Campaign engine report" in campaign.render()
    campaign.close()
