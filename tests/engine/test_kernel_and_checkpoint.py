"""Batched-kernel toggle, frontier-memo LRU, scheduled checkpoints and
live paused-report gauges.

The kernel path is a pure performance lever: every decision, cache
counter, and therefore the campaign fingerprint must be byte-identical
to the scalar path.  Scheduled checkpoints are read-only snapshots, so
an auto-checkpointing run (and anything resumed from one of its
checkpoints) must also be fingerprint-identical to an uninterrupted
run.
"""

import numpy as np
import pytest

from repro.core import Worker, WorkerPool
from repro.engine import (
    Campaign,
    CampaignConfig,
    EngineTask,
    JQCache,
    MemoryBackend,
)
from repro.engine.scheduler import MAX_FRONTIER_MEMO, CampaignScheduler
from repro.engine.state import WorkerRegistry
from repro.simulation import SyntheticPoolConfig, generate_pool


def make_pool(num_workers=24, seed=1):
    rng = np.random.default_rng(seed)
    return generate_pool(
        SyntheticPoolConfig(num_workers=num_workers, quality_ceiling=0.95),
        rng,
    )


def make_campaign(backend=None, seed=5, num_tasks=120, **overrides):
    defaults = dict(
        budget=40.0,
        confidence_target=0.95,
        reestimate_every=25,
        seed=seed,
    )
    defaults.update(overrides)
    campaign = Campaign.open(
        make_pool(), CampaignConfig(**defaults), backend=backend
    )
    rng = np.random.default_rng(seed)
    truths = rng.integers(0, 2, size=num_tasks)
    campaign.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    return campaign


class TestKernelToggle:
    @pytest.mark.parametrize("num_shards", [1, 3])
    @pytest.mark.parametrize("quantization", ["auto", None])
    def test_fingerprint_identical_across_kernel_toggle(
        self, num_shards, quantization
    ):
        """Re-estimation every 25 tasks churns the frontier memos, so
        both paths rebuild frontiers constantly — and must agree on
        every decision and every cache counter."""
        batch = make_campaign(
            num_shards=num_shards,
            quantization=quantization,
            jq_kernel="batch",
        ).run()
        scalar = make_campaign(
            num_shards=num_shards,
            quantization=quantization,
            jq_kernel="scalar",
        ).run()
        assert batch.fingerprint() == scalar.fingerprint()
        assert batch.cache_stats == scalar.cache_stats

    def test_jq_kernel_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(budget=1.0, jq_kernel="gpu")


class TestFrontierMemoLRU:
    def _scheduler(self, pool_size=4):
        pool = WorkerPool(
            Worker(f"w{i}", 0.6 + 0.05 * i, 1.0) for i in range(pool_size)
        )
        registry = WorkerRegistry(pool, capacity=4)
        return CampaignScheduler(
            registry, JQCache(), budget=100.0, expected_tasks=100
        )

    def test_overflow_evicts_lru_not_everything(self):
        scheduler = self._scheduler()
        for i in range(MAX_FRONTIER_MEMO):
            scheduler._frontier_memo[("key", i)] = f"frontier-{i}"
        # Touch the oldest entry: recency refresh must spare it.
        hit = scheduler._frontier_memo.get(("key", 0))
        del scheduler._frontier_memo[("key", 0)]
        scheduler._frontier_memo[("key", 0)] = hit
        # Admit a batch so a real miss inserts at the bound.
        tasks = [EngineTask("t0")]
        scheduler.admit(tasks)
        assert len(scheduler._frontier_memo) == MAX_FRONTIER_MEMO
        assert ("key", 0) in scheduler._frontier_memo  # refreshed: kept
        assert ("key", 1) not in scheduler._frontier_memo  # LRU: evicted
        assert ("key", 2) in scheduler._frontier_memo  # everyone else kept

    def test_memo_order_round_trips_through_state(self):
        scheduler = self._scheduler()
        scheduler.admit([EngineTask("t0")])
        # A hit on the same pool must refresh recency, preserving dict
        # order as the LRU order in the persisted state.
        scheduler.admit([EngineTask("t1")])
        state = scheduler.state_dict()
        restored = self._scheduler()
        restored.load_state(state)
        assert list(restored._frontier_memo) == list(scheduler._frontier_memo)


class TestScheduledCheckpoints:
    def test_auto_checkpoint_writes_backend(self):
        backend = MemoryBackend()
        campaign = make_campaign(backend=backend, checkpoint_every=30)
        campaign.run()
        # The final state was written by the *hook*, without any manual
        # checkpoint() call.
        assert backend.exists()

    def test_resume_from_auto_checkpoint_is_byte_identical(self):
        reference = make_campaign().run().fingerprint()

        backend = MemoryBackend()
        campaign = make_campaign(backend=backend, checkpoint_every=30)
        campaign.run(until=70)  # pause somewhere past two checkpoints
        # Simulate a crash: drop the campaign, resume from the last
        # *auto* checkpoint and finish.
        resumed = Campaign.resume(backend)
        assert resumed.metrics.completed >= 30
        assert resumed.metrics.completed <= 70
        assert resumed.run().fingerprint() == reference

    def test_auto_checkpointing_does_not_perturb_the_run(self):
        plain = make_campaign().run().fingerprint()
        checkpointed = make_campaign(
            backend=MemoryBackend(), checkpoint_every=10
        ).run().fingerprint()
        assert checkpointed == plain

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(budget=1.0, checkpoint_every=-1)


class TestPausedReportGauges:
    def test_paused_metrics_carry_live_gauges(self):
        campaign = make_campaign()
        metrics = campaign.run(until=40)
        assert not campaign.done
        assert metrics.peak_worker_load > 0
        assert metrics.cache_stats is not None
        assert metrics.cache_stats.lookups > 0
        report = campaign.render()
        assert "peak load    : 0 concurrent seats" not in report
        assert "cache        :" in report

    def test_final_gauges_unchanged_by_pausing(self):
        paused = make_campaign()
        paused.run(until=40)
        final_paused = paused.run()
        straight = make_campaign().run()
        assert final_paused.fingerprint() == straight.fingerprint()
        assert final_paused.peak_worker_load == straight.peak_worker_load


class TestCacheBatchReplay:
    """JQCache.jq_batch / jq_all_subsets must evolve the store exactly
    like the equivalent sequence of scalar jq() calls — same values,
    same hit/miss/eviction counters, same LRU order."""

    def _twin_caches(self, **kwargs):
        return JQCache(**kwargs), JQCache(**kwargs)

    def test_jq_batch_matches_scalar_sequence(self, rng=None):
        rng = np.random.default_rng(17)
        batch_cache, scalar_cache = self._twin_caches(
            alpha=0.3, quantization=200, max_entries=8
        )
        # Small LRU bound on purpose: replay-inserted keys get evicted
        # and re-missed within one batch, exercising the fallback that
        # recomputes a value scalar-side.
        rows = [
            rng.random(int(rng.integers(0, 15)))
            for _ in range(60)
        ]
        rows += rows[:10]  # duplicates: hits after first insertion
        values = batch_cache.jq_batch(rows)
        expected = [scalar_cache.jq(row) for row in rows]
        assert [float(v) for v in values] == expected
        assert batch_cache.stats == scalar_cache.stats
        assert list(batch_cache._store.items()) == list(
            scalar_cache._store.items()
        )

    def test_jq_all_subsets_matches_scalar_sequence(self):
        rng = np.random.default_rng(23)
        for quantization in (None, 200):
            batch_cache, scalar_cache = self._twin_caches(
                quantization=quantization, max_entries=500
            )
            qualities = rng.random(7)
            table = batch_cache.jq_all_subsets(qualities)
            n = qualities.size
            for mask in range(1, 1 << n):
                members = [i for i in range(n) if mask >> i & 1]
                assert float(table[mask]) == scalar_cache.jq(
                    qualities[members]
                ), (quantization, mask)
            assert batch_cache.stats == scalar_cache.stats
            assert list(batch_cache._store.items()) == list(
                scalar_cache._store.items()
            )

    def test_cached_objective_chunked_frontier_fallback(self):
        """Pools past the lattice bound route CachedJQObjective through
        jq_batch — still identical to the scalar cached frontier."""
        from repro.engine.cache import CachedJQObjective
        from repro.frontier import exact_frontier
        from repro.simulation import SyntheticPoolConfig, generate_pool

        rng = np.random.default_rng(31)
        pool = generate_pool(SyntheticPoolConfig(num_workers=15), rng)
        batch_cache, scalar_cache = self._twin_caches(quantization=200)
        batch = exact_frontier(
            pool, CachedJQObjective(batch_cache),
            implementation="batch", max_pool=15,
        )
        scalar = exact_frontier(
            pool, CachedJQObjective(scalar_cache),
            implementation="scalar", max_pool=15,
        )
        assert batch.points == scalar.points
        assert batch_cache.stats == scalar_cache.stats
