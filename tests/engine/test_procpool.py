"""Multi-process campaign pools: process dispatch + vote fanout.

The tentpole claim is *byte-identity*: shipping each shard's admit
round to a persistent worker process (``dispatch="processes"``) must
produce the same metrics fingerprint — task records, spend, cache
counters, everything — as the sequential and threaded paths, across
seeds, shard counts, and state backends.  This file pins that claim,
the pool's own mechanics (sticky workers, state pull/push, poisoning
on a failed round), the ``REPRO_ENGINE_FORCE_DISPATCH`` CI toggle, and
the satellite knobs that ride along (``vote_fanout``,
``ingest_grace="auto"``).

Cross-process *lease* coordination lives in ``test_leases.py``.
"""

import os
import signal

import numpy as np
import pytest

from repro.engine import (
    Campaign,
    CampaignConfig,
    EngineTask,
    SQLiteBackend,
    ShardedScheduler,
)
from repro.engine.campaign import FORCE_DISPATCH_ENV
from repro.engine.procpool import ShadowRegistry
from repro.simulation import SyntheticPoolConfig, generate_pool


def make_pool(num_workers=32, seed=1):
    rng = np.random.default_rng(seed)
    return generate_pool(
        SyntheticPoolConfig(num_workers=num_workers, quality_ceiling=0.95),
        rng,
    )


def make_tasks(num_tasks=60, seed=5):
    rng = np.random.default_rng(seed)
    truths = rng.integers(0, 2, size=num_tasks)
    return [
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    ]


def run_fingerprint(
    seed,
    num_shards,
    dispatch,
    backend=None,
    parallel_shards=0,
    **overrides,
):
    config = dict(
        budget=25.0,
        capacity=3,
        batch_size=20,
        confidence_target=0.95,
        seed=seed,
        num_shards=num_shards,
        dispatch=dispatch,
        parallel_shards=parallel_shards,
    )
    config.update(overrides)
    with Campaign.open(
        make_pool(seed=seed), CampaignConfig(**config), backend=backend
    ) as campaign:
        campaign.submit(make_tasks(seed=seed))
        metrics = campaign.run()
        return metrics.fingerprint(), metrics


# ----------------------------------------------------------------------
# The tentpole pin: processes == threads == sequential, byte for byte
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 21])
@pytest.mark.parametrize("num_shards", [1, 4])
@pytest.mark.parametrize("store", ["memory", "sqlite"])
def test_process_dispatch_fingerprint_identical(
    seed, num_shards, store, tmp_path
):
    def backend():
        if store == "memory":
            return None
        return SQLiteBackend(
            tmp_path / f"{store}-{seed}-{num_shards}-{os.urandom(4).hex()}.db"
        )

    sequential, _ = run_fingerprint(seed, num_shards, "threads", backend())
    threaded, _ = run_fingerprint(
        seed, num_shards, "threads", backend(), parallel_shards=4
    )
    processes, _ = run_fingerprint(seed, num_shards, "processes", backend())
    assert sequential == threaded
    assert sequential == processes


def test_process_dispatch_builds_a_pool_only_when_sharded():
    with Campaign.open(
        make_pool(),
        CampaignConfig(budget=5.0, num_shards=4, dispatch="processes"),
    ) as campaign:
        campaign.engine._start()
        scheduler = campaign.engine.scheduler
        assert isinstance(scheduler, ShardedScheduler)
        assert scheduler._pool is not None
        assert len(scheduler._pool.pids) == 4
        # Process dispatch supersedes the shard thread executor.
        assert scheduler._executor is None
    with Campaign.open(
        make_pool(),
        CampaignConfig(budget=5.0, num_shards=1, dispatch="processes"),
    ) as campaign:
        campaign.engine._start()
        assert not isinstance(campaign.engine.scheduler, ShardedScheduler)


def test_workers_are_sticky_across_rounds():
    with Campaign.open(
        make_pool(),
        CampaignConfig(
            budget=25.0, num_shards=4, dispatch="processes", seed=3
        ),
    ) as campaign:
        campaign.engine._start()
        pids_before = list(campaign.engine.scheduler._pool.pids)
        campaign.submit(make_tasks(40, seed=3))
        campaign.run()
        assert campaign.engine.scheduler._pool.pids == pids_before


def test_checkpoint_resume_under_process_dispatch(tmp_path):
    seed = 11
    reference, _ = run_fingerprint(seed, 4, "threads")

    backend = SQLiteBackend(tmp_path / "resume.db")
    with Campaign.open(
        make_pool(seed=seed),
        CampaignConfig(
            budget=25.0,
            capacity=3,
            batch_size=20,
            confidence_target=0.95,
            seed=seed,
            num_shards=4,
            dispatch="processes",
        ),
        backend=backend,
    ) as campaign:
        campaign.submit(make_tasks(seed=seed))
        campaign.run(until=20)
        campaign.checkpoint()

    resumed = Campaign.resume(SQLiteBackend(tmp_path / "resume.db"))
    try:
        assert resumed.config.dispatch == "processes"
        assert resumed.engine.scheduler._pool is not None
        metrics = resumed.run()
        assert metrics.fingerprint() == reference
    finally:
        resumed.close()


def test_env_toggle_forces_process_dispatch(monkeypatch):
    monkeypatch.setenv(FORCE_DISPATCH_ENV, "processes")
    with Campaign.open(
        make_pool(), CampaignConfig(budget=5.0, num_shards=2)
    ) as campaign:
        assert campaign.config.dispatch == "processes"
        campaign.engine._start()
        assert campaign.engine.scheduler._pool is not None
    monkeypatch.setenv(FORCE_DISPATCH_ENV, "threads")
    with Campaign.open(
        make_pool(),
        CampaignConfig(budget=5.0, num_shards=2, dispatch="processes"),
    ) as campaign:
        assert campaign.config.dispatch == "threads"
        campaign.engine._start()
        assert campaign.engine.scheduler._pool is None


def test_invalid_dispatch_is_rejected():
    with pytest.raises(ValueError, match="dispatch"):
        CampaignConfig(budget=5.0, dispatch="rayon")


# ----------------------------------------------------------------------
# Failure paths: a dead worker poisons the round but not the ledger
# ----------------------------------------------------------------------
def test_killed_worker_raises_and_conserves_ledger():
    campaign = Campaign.open(
        make_pool(48),
        CampaignConfig(
            budget=60.0,
            capacity=3,
            batch_size=20,
            confidence_target=0.95,
            seed=9,
            num_shards=4,
            dispatch="processes",
        ),
    )
    try:
        campaign.submit(make_tasks(40, seed=9))
        campaign.run(until=10)
        scheduler = campaign.engine.scheduler
        allocator = scheduler.allocator
        victim = scheduler._pool.pids[2]
        os.kill(victim, signal.SIGKILL)
        campaign.submit(EngineTask(f"x{i}") for i in range(40))
        with pytest.raises(Exception):
            campaign.run()
        # The repair path settled every grant: nothing stays reserved
        # against a round that never landed.
        assert allocator.granted == pytest.approx(
            allocator.reserved + allocator.reabsorbed, abs=1e-6
        )
        # A failed round poisons the pool (state is unknowable).
        assert scheduler._pool.broken
    finally:
        campaign.close()


def test_pool_close_is_idempotent():
    pool_workers = make_pool(16)
    with Campaign.open(
        pool_workers,
        CampaignConfig(budget=5.0, num_shards=2, dispatch="processes"),
    ) as campaign:
        campaign.engine._start()
        pool = campaign.engine.scheduler._pool
        campaign.close()
        campaign.close()
        assert pool.broken


# ----------------------------------------------------------------------
# ShadowRegistry: the picklable member view workers rebuild
# ----------------------------------------------------------------------
def test_shadow_registry_mirrors_member_rows():
    rows = [
        ("w1", 0.9, 1.0, 3, ["t1", "t2"]),
        ("w0", 0.7, 0.5, 2, []),
    ]
    shadow = ShadowRegistry()
    shadow.sync(rows)
    assert [state.worker.worker_id for state in shadow.states] == [
        "w1",
        "w0",
    ]
    assert len(shadow) == 2 and "w1" in shadow
    assert shadow.free_capacity("w1") == 1
    assert shadow.worker("w0").quality == 0.7
    assert shadow.free_capacity("w0") == 2
    # Seat mutations respect capacity; duplicates are rejected.
    shadow.assign("w1", "t9")
    assert shadow.free_capacity("w1") == 0
    with pytest.raises(Exception):
        shadow.assign("w1", "t10")
    assert {w.worker_id for w in shadow.available_pool()} == {"w0"}


# ----------------------------------------------------------------------
# Satellite: multi-loop vote processing (vote_fanout)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 21])
@pytest.mark.parametrize("num_shards", [1, 4])
def test_vote_fanout_is_byte_identical(seed, num_shards):
    single, _ = run_fingerprint(seed, num_shards, "threads")
    fanned, metrics = run_fingerprint(
        seed, num_shards, "threads", vote_fanout=4
    )
    assert fanned == single
    assert metrics.votes_cast > 0


def test_vote_fanout_with_reestimation_is_byte_identical():
    single, _ = run_fingerprint(13, 2, "threads", reestimate_every=10)
    fanned, _ = run_fingerprint(
        13, 2, "threads", vote_fanout=3, reestimate_every=10
    )
    assert fanned == single


def test_vote_fanout_rejects_negative():
    with pytest.raises(ValueError, match="vote_fanout"):
        CampaignConfig(budget=5.0, vote_fanout=-1)


# ----------------------------------------------------------------------
# Satellite: adaptive intake grace
# ----------------------------------------------------------------------
def test_auto_grace_tracks_admit_latency():
    with Campaign.open(
        make_pool(),
        CampaignConfig(
            budget=25.0, ingestion="async", ingest_grace="auto", seed=3
        ),
    ) as campaign:
        loop = campaign._ingest
        # Before any admit: the fixed fallback.
        assert loop._effective_grace() == pytest.approx(0.05)
        campaign.submit(make_tasks(30, seed=3))
        campaign.run()
        ewma = campaign.engine.admit_latency_ewma
        assert ewma is not None and ewma > 0
        grace = loop._effective_grace()
        assert 0.01 <= grace <= 0.5
        assert grace == pytest.approx(min(max(8.0 * ewma, 0.01), 0.5))


def test_auto_grace_async_fingerprint_matches_sync():
    reference, _ = run_fingerprint(17, 1, "threads")
    auto, _ = run_fingerprint(
        17, 1, "threads", ingestion="async", ingest_grace="auto"
    )
    assert auto == reference


def test_fixed_grace_still_validates():
    with pytest.raises(ValueError, match="grace"):
        CampaignConfig(budget=5.0, ingest_grace="adaptive")
    with pytest.raises(ValueError, match="grace"):
        CampaignConfig(budget=5.0, ingest_grace=0.0)
