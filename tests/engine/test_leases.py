"""Worker leases + optimistic concurrency: N engines, one worker pool.

The coordination layer's contract, bottom-up:

* ``SQLiteBackend`` lease tables — atomic check-then-insert seat
  acquisition, TTL expiry reclaim, epoch fencing, CAS-versioned ledger
  scopes.  Two *processes* racing one remaining seat serialize on the
  database: exactly one wins (pinned with real ``multiprocessing``).
* ``LeaseCoordinator`` — the engine-side client: renewal, shared-ledger
  read-modify-CAS under contention, release-on-close.
* ``WorkerRegistry`` integration — two engines sharing a coordination
  file never double-seat; a killed engine's seats return after one TTL
  and a second engine finishes the campaign with conservation intact.
* Crash-mid-checkpoint durability — a SIGKILL in the middle of a
  ``save()`` leaves the database integral and the previous checkpoint
  loadable.
"""

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.engine import (
    BackendError,
    Campaign,
    CampaignConfig,
    CapacityError,
    EngineTask,
    LeaseCoordinator,
    SQLiteBackend,
    StaleEpochError,
)
from repro.engine.backends import SNAPSHOT_SECTIONS
from repro.engine.state import WorkerRegistry
from repro.simulation import SyntheticPoolConfig, generate_pool


def minimal_snapshot(**extra):
    snapshot = {"version": 1, **{s: {} for s in SNAPSHOT_SECTIONS}}
    snapshot.update(extra)
    return snapshot


def make_pool(num_workers=24, seed=1):
    rng = np.random.default_rng(seed)
    return generate_pool(
        SyntheticPoolConfig(num_workers=num_workers, quality_ceiling=0.95),
        rng,
    )


# ----------------------------------------------------------------------
# Backend lease primitives
# ----------------------------------------------------------------------
class TestLeaseTables:
    def test_acquire_counts_against_capacity(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        epoch = backend.register_engine("e1")
        assert backend.acquire_lease(
            "w1", "t1", owner="e1", epoch=epoch, ttl=30, capacity=2
        )
        assert backend.acquire_lease(
            "w1", "t2", owner="e1", epoch=epoch, ttl=30, capacity=2
        )
        # Third seat on a capacity-2 worker is denied...
        assert not backend.acquire_lease(
            "w1", "t3", owner="e1", epoch=epoch, ttl=30, capacity=2
        )
        # ...but another worker's seats are independent.
        assert backend.acquire_lease(
            "w2", "t3", owner="e1", epoch=epoch, ttl=30, capacity=2
        )
        assert backend.count_leases("w1") == 2
        backend.close()

    def test_duplicate_seat_is_denied(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        e1 = backend.register_engine("e1")
        e2 = backend.register_engine("e2")
        assert backend.acquire_lease(
            "w1", "t1", owner="e1", epoch=e1, ttl=30, capacity=4
        )
        # The same (worker, task) seat cannot be leased twice — not by
        # the holder, not by a peer: that's the double-seating bug the
        # layer exists to prevent.
        assert not backend.acquire_lease(
            "w1", "t1", owner="e1", epoch=e1, ttl=30, capacity=4
        )
        assert not backend.acquire_lease(
            "w1", "t1", owner="e2", epoch=e2, ttl=30, capacity=4
        )
        backend.close()

    def test_expiry_reclaims_seats(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        e1 = backend.register_engine("e1")
        e2 = backend.register_engine("e2")
        assert backend.acquire_lease(
            "w1", "t1", owner="e1", epoch=e1, ttl=0.05, capacity=1
        )
        assert not backend.acquire_lease(
            "w1", "t2", owner="e2", epoch=e2, ttl=30, capacity=1
        )
        time.sleep(0.08)
        # e1's lease expired: the seat is back in the pool.
        assert backend.acquire_lease(
            "w1", "t2", owner="e2", epoch=e2, ttl=30, capacity=1
        )
        rows = backend.list_leases()
        assert [(r[0], r[1], r[2]) for r in rows] == [("w1", "t2", "e2")]
        backend.close()

    def test_renew_extends_only_live_leases(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        epoch = backend.register_engine("e1")
        backend.acquire_lease(
            "w1", "t1", owner="e1", epoch=epoch, ttl=0.2, capacity=2
        )
        for _ in range(4):
            time.sleep(0.08)
            assert backend.renew_leases("e1", epoch=epoch, ttl=0.2) == 1
        # Renewed past several original TTLs, still alive.
        assert backend.count_leases("w1") == 1
        time.sleep(0.25)
        # Expired but not yet purged by any peer: a late-but-healthy
        # owner may still renew its own rows (the safety margin).
        assert backend.renew_leases("e1", epoch=epoch, ttl=0.2) == 1
        assert backend.count_leases("w1") == 1
        time.sleep(0.25)
        # A peer's purge reclaims the seat AND deposes the owner: from
        # here renewal is fenced, not a resurrection.
        assert backend.count_leases("w1") == 0
        with pytest.raises(StaleEpochError):
            backend.renew_leases("e1", epoch=epoch, ttl=0.2)
        backend.close()

    def test_stale_epoch_is_fenced(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        old = backend.register_engine("e1")
        new = backend.register_engine("e1")  # re-registration deposes
        assert new == old + 1
        with pytest.raises(StaleEpochError):
            backend.acquire_lease(
                "w1", "t1", owner="e1", epoch=old, ttl=30, capacity=4
            )
        with pytest.raises(StaleEpochError):
            backend.renew_leases("e1", epoch=old, ttl=30)
        # The new incarnation proceeds normally.
        assert backend.acquire_lease(
            "w1", "t1", owner="e1", epoch=new, ttl=30, capacity=4
        )
        backend.close()

    def test_release_owner_drops_everything(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        epoch = backend.register_engine("e1")
        for task in ("t1", "t2", "t3"):
            backend.acquire_lease(
                "w1", task, owner="e1", epoch=epoch, ttl=30, capacity=4
            )
        assert backend.release_owner("e1") == 3
        assert backend.count_leases("w1") == 0
        backend.close()

    def test_checkpoint_save_leaves_leases_untouched(self, tmp_path):
        # One file serving both as a checkpoint store and a lease store
        # must not lose leases to a snapshot (save replaces tables).
        backend = SQLiteBackend(tmp_path / "c.db")
        epoch = backend.register_engine("e1")
        backend.acquire_lease(
            "w1", "t1", owner="e1", epoch=epoch, ttl=30, capacity=4
        )
        backend.save(minimal_snapshot(campaign={"anything": "at all"}))
        assert backend.count_leases("w1") == 1
        assert backend.load()["campaign"]["anything"] == "at all"
        backend.close()


class TestCasLedger:
    def test_create_then_cas(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        assert backend.read_ledger("spend") is None
        assert backend.cas_ledger("spend", {"total": 1.0})
        value, version = backend.read_ledger("spend")
        assert value == {"total": 1.0} and version == 1
        assert backend.cas_ledger(
            "spend", {"total": 2.0}, expected_version=1
        )
        assert backend.read_ledger("spend") == ({"total": 2.0}, 2)
        backend.close()

    def test_stale_version_loses(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "c.db")
        backend.cas_ledger("spend", 10)
        assert backend.cas_ledger("spend", 20, expected_version=1)
        # A writer still holding version 1 lost the race.
        assert not backend.cas_ledger("spend", 30, expected_version=1)
        # Creating an existing scope also loses.
        assert not backend.cas_ledger("spend", 40)
        assert backend.read_ledger("spend") == (20, 2)
        backend.close()


# ----------------------------------------------------------------------
# LeaseCoordinator
# ----------------------------------------------------------------------
class TestLeaseCoordinator:
    def test_two_coordinators_share_capacity(self, tmp_path):
        path = tmp_path / "coord.db"
        a = LeaseCoordinator(path, ttl=30, owner="a")
        b = LeaseCoordinator(path, ttl=30, owner="b")
        assert a.acquire("w1", "t1", capacity=2)
        assert b.acquire("w1", "t2", capacity=2)
        assert not a.acquire("w1", "t3", capacity=2)
        assert b.shared_load("w1") == 2
        a.release("w1", "t1")
        assert b.acquire("w1", "t3", capacity=2)
        a.close()
        b.close()

    def test_close_releases_held_seats(self, tmp_path):
        path = tmp_path / "coord.db"
        a = LeaseCoordinator(path, ttl=30, owner="a")
        b = LeaseCoordinator(path, ttl=30, owner="b")
        assert a.acquire("w1", "t1", capacity=1)
        a.close()
        assert b.acquire("w1", "t2", capacity=1)
        # close(release=False) simulates a crash: the seat stays taken
        # until the TTL passes.
        b.close(release=False)
        c = LeaseCoordinator(path, ttl=30, owner="c")
        assert not c.acquire("w1", "t3", capacity=1)
        c.close()

    def test_update_shared_ledger_read_modify_cas(self, tmp_path):
        path = tmp_path / "coord.db"
        a = LeaseCoordinator(path, ttl=30, owner="a")
        b = LeaseCoordinator(path, ttl=30, owner="b")
        assert a.update_shared_ledger(
            "granted", lambda cur: (cur or 0.0) + 1.5
        ) == 1.5
        assert b.update_shared_ledger(
            "granted", lambda cur: (cur or 0.0) + 2.5
        ) == 4.0
        value, version = a.backend.read_ledger("granted")
        assert value == 4.0 and version == 2
        a.close()
        b.close()

    def test_update_shared_ledger_gives_up_after_races(self, tmp_path):
        a = LeaseCoordinator(tmp_path / "coord.db", ttl=30, owner="a")

        def hostile(cur):
            # Sabotage every attempt by bumping the version out from
            # under the CAS between read and write.
            row = a.backend.read_ledger("hot")
            if row is None:
                a.backend.cas_ledger("hot", -1)
            else:
                a.backend.cas_ledger("hot", -1, expected_version=row[1])
            return 99

        with pytest.raises(BackendError, match="races"):
            a.update_shared_ledger("hot", hostile, retries=3)
        a.close()

    def test_deposed_coordinator_raises_stale_epoch(self, tmp_path):
        path = tmp_path / "coord.db"
        first = LeaseCoordinator(path, ttl=30, owner="engine-1")
        assert first.acquire("w1", "t1", capacity=4)
        # Same owner id re-registers (e.g. the process restarted):
        # the first incarnation is deposed.
        second = LeaseCoordinator(path, ttl=30, owner="engine-1")
        with pytest.raises(StaleEpochError):
            first.renew()
        with pytest.raises(StaleEpochError):
            first.acquire("w1", "t2", capacity=4)
        assert second.acquire("w1", "t2", capacity=4)
        first.close(release=False)
        second.close()


# ----------------------------------------------------------------------
# Wall-clock skew: NTP steps degrade to fencing, never double-seating
# ----------------------------------------------------------------------
class TestClockSkew:
    def test_forward_step_deposes_instead_of_double_seating(self, tmp_path):
        """A peer whose clock stepped forward sees live leases as
        expired and reclaims the seats.  The victim engine may be
        perfectly healthy — the contract is that it gets *fenced*
        (StaleEpochError on its next write), so exactly one engine
        operates the seat at any time."""
        path = tmp_path / "c.db"
        now = {"t": 1000.0}
        a = SQLiteBackend(path, clock=lambda: now["t"])
        b = SQLiteBackend(path, clock=lambda: now["t"] + 100.0)
        ea = a.register_engine("a")
        eb = b.register_engine("b")
        assert a.acquire_lease(
            "w1", "t1", owner="a", epoch=ea, ttl=30, capacity=1
        )
        # b's skewed clock is past a's expiry: purge reclaims the seat
        # and deposes a in the same transaction.
        assert b.count_leases("w1") == 0
        assert b.acquire_lease(
            "w1", "t2", owner="b", epoch=eb, ttl=30, capacity=1
        )
        # a cannot renew or re-seat against its zombie epoch...
        with pytest.raises(StaleEpochError):
            a.renew_leases("a", epoch=ea, ttl=30)
        with pytest.raises(StaleEpochError):
            a.acquire_lease(
                "w2", "t1", owner="a", epoch=ea, ttl=30, capacity=1
            )
        # ...so exactly one live seat exists on w1.
        assert [r[2] for r in b.list_leases()] == ["b"]
        a.close()
        b.close()

    def test_backward_step_never_shortens_a_lease(self, tmp_path):
        """Renewal takes MAX(current expiry, now + ttl): a backward
        clock step cannot pull a live lease's expiry earlier (which
        would hand the seat to a peer while the owner still works)."""
        now = {"t": 1000.0}
        backend = SQLiteBackend(tmp_path / "c.db", clock=lambda: now["t"])
        epoch = backend.register_engine("e1")
        assert backend.acquire_lease(
            "w1", "t1", owner="e1", epoch=epoch, ttl=30, capacity=1
        )  # expires at 1030
        now["t"] = 900.0  # backward NTP step on the owner's host
        assert backend.renew_leases("e1", epoch=epoch, ttl=30) == 1
        (row,) = backend.list_leases()
        assert row[4] >= 1030.0  # not shortened to 930
        now["t"] = 1020.0
        assert backend.count_leases("w1") == 1  # still held
        backend.close()

    def test_zombie_shutdown_cannot_release_successor_seats(self, tmp_path):
        """Releases are epoch-scoped: a deposed incarnation shutting
        down gracefully must not delete seats its successor (same
        owner id) re-acquired under a newer epoch."""
        path = tmp_path / "coord.db"
        first = LeaseCoordinator(path, ttl=30, owner="engine-1")
        second = LeaseCoordinator(path, ttl=30, owner="engine-1")
        assert second.acquire("w1", "t1", capacity=1)
        first.close()  # zombie's graceful shutdown
        probe = LeaseCoordinator(path, ttl=30, owner="probe")
        assert not probe.acquire("w1", "t2", capacity=1)
        second.close()
        probe.close()


# ----------------------------------------------------------------------
# Serve-loop renewal cadence: long polls must not outlast the TTL
# ----------------------------------------------------------------------
def test_serve_with_long_poll_keeps_leases_renewed(tmp_path):
    """Regression: lease renewal rides the serve loop's tick, but the
    idle loop used to sleep the caller's full ``poll`` between ticks —
    a ``poll`` longer than ``ttl / 3`` silently let a live, idle
    engine's leases expire so a peer could steal its seats.  The loop
    now clamps its idle sleeps to the tick cadence."""
    coord_path = str(tmp_path / "coord.db")
    campaign = Campaign.open(
        make_pool(8, seed=3),
        CampaignConfig(
            budget=20.0,
            capacity=2,
            batch_size=4,
            confidence_target=0.95,
            seed=3,
            ingestion="async",
            vote_source="external",
            coordinate_path=coord_path,
            lease_ttl=0.9,  # renew_every = 0.3s
        ),
    )
    campaign.submit([EngineTask(f"t{i}") for i in range(4)])
    observer = SQLiteBackend(coord_path)
    stop = threading.Event()
    thread = threading.Thread(
        target=campaign.serve,
        kwargs={"stop": stop, "poll": 5.0},  # >> ttl
        daemon=True,
    )
    thread.start()
    try:
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if observer.list_leases():
                break
            time.sleep(0.05)
        assert observer.list_leases(), "no juries were ever seated"
        # Idle out well past the TTL; renewals must keep the seats
        # live the whole time (before the fix the loop slept 5s
        # without a single renewal and the leases lapsed).
        time.sleep(1.5)
        assert observer.list_leases(), "leases expired mid-serve"
    finally:
        stop.set()
        thread.join(timeout=20)
        observer.close()
        campaign.close()
    assert not thread.is_alive()


# ----------------------------------------------------------------------
# Registry integration: engines cannot double-seat
# ----------------------------------------------------------------------
def make_registry(pool, capacity=1):
    return WorkerRegistry(pool, capacity=capacity)


class TestRegistryLeases:
    def test_second_engine_is_denied_the_taken_seat(self, tmp_path):
        pool = make_pool(4)
        path = tmp_path / "coord.db"
        a = LeaseCoordinator(path, ttl=30, owner="a")
        b = LeaseCoordinator(path, ttl=30, owner="b")
        reg_a = make_registry(pool, capacity=1)
        reg_b = make_registry(pool, capacity=1)
        reg_a.attach_lease_coordinator(a)
        reg_b.attach_lease_coordinator(b)
        worker_id = pool.workers[0].worker_id
        reg_a.assign(worker_id, "t1")
        with pytest.raises(CapacityError, match="shared capacity"):
            reg_b.assign(worker_id, "t2")
        # Releasing locally releases the shared lease too.
        reg_a.release(worker_id, "t1")
        reg_b.assign(worker_id, "t2")
        a.close()
        b.close()

    def test_local_failure_rolls_back_nothing_shared(self, tmp_path):
        pool = make_pool(4)
        a = LeaseCoordinator(tmp_path / "coord.db", ttl=30, owner="a")
        registry = make_registry(pool, capacity=1)
        registry.attach_lease_coordinator(a)
        worker_id = pool.workers[0].worker_id
        registry.assign(worker_id, "t1")
        # Locally full: denied before the lease layer is consulted.
        with pytest.raises(CapacityError):
            registry.assign(worker_id, "t2")
        assert a.shared_load(worker_id) == 1
        a.close()


# ----------------------------------------------------------------------
# Real multi-process races
# ----------------------------------------------------------------------
def _race_for_seat(path, owner, barrier, queue):
    backend = SQLiteBackend(path)
    epoch = backend.register_engine(owner)
    barrier.wait(timeout=10)
    won = backend.acquire_lease(
        "w1", f"task-{owner}", owner=owner, epoch=epoch, ttl=30, capacity=1
    )
    queue.put((owner, won))
    backend.close()


def test_two_processes_race_one_seat_exactly_one_wins(tmp_path):
    path = str(tmp_path / "race.db")
    # Create the schema before forking so both children race the seat,
    # not the CREATE TABLE.
    SQLiteBackend(path).close()
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_race_for_seat, args=(path, owner, barrier, queue))
        for owner in ("p1", "p2")
    ]
    for p in procs:
        p.start()
    results = dict(queue.get(timeout=10) for _ in procs)
    for p in procs:
        p.join(timeout=10)
    assert sorted(results.values()) == [False, True]
    backend = SQLiteBackend(path)
    assert backend.count_leases("w1") == 1
    backend.close()


def _crash_mid_save(path, ready):
    backend = SQLiteBackend(path)
    payload = minimal_snapshot(caches={"blob": "x" * 2_000_000})
    ready.set()
    while True:  # save in a tight loop until SIGKILLed mid-write
        backend.save(payload)


def test_sigkill_mid_checkpoint_keeps_database_integral(tmp_path):
    path = str(tmp_path / "durable.db")
    backend = SQLiteBackend(path)
    backend.save(minimal_snapshot(campaign={"generation": "first"}))
    backend.close()

    ctx = multiprocessing.get_context("fork")
    ready = ctx.Event()
    proc = ctx.Process(target=_crash_mid_save, args=(path, ready))
    proc.start()
    assert ready.wait(timeout=10)
    time.sleep(0.15)  # let it get into the write path
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10)

    backend = SQLiteBackend(path)
    (verdict,) = backend._connect().execute(
        "PRAGMA integrity_check"
    ).fetchone()
    assert verdict == "ok"
    # Whatever generation survived, it is a complete one.
    snapshot = backend.load()
    assert snapshot["version"] == 1
    backend.close()


def _serve_and_die(path, coord_path, ready):
    """A coordinated engine that seats juries, reports, then hangs
    holding its leases until SIGKILLed — the crashed-peer half of the
    expiry-reclaim test."""
    pool = make_pool(6, seed=2)
    campaign = Campaign.open(
        pool,
        CampaignConfig(
            budget=10.0,
            capacity=1,
            batch_size=4,
            confidence_target=0.95,
            seed=2,
            coordinate_path=coord_path,
            lease_ttl=0.5,
        ),
    )
    campaign.submit([EngineTask(f"t{i}") for i in range(6)])
    campaign.run(until=2)  # juries seated, some still mid-flight
    ready.set()
    while True:
        time.sleep(1)


def test_killed_engine_leases_expire_and_peer_completes(tmp_path):
    coord_path = str(tmp_path / "coord.db")
    SQLiteBackend(coord_path).close()
    ctx = multiprocessing.get_context("fork")
    ready = ctx.Event()
    proc = ctx.Process(target=_serve_and_die, args=(None, coord_path, ready))
    proc.start()
    assert ready.wait(timeout=60)
    os.kill(proc.pid, signal.SIGKILL)  # crash mid-admit: leases stranded
    proc.join(timeout=10)

    shared = SQLiteBackend(coord_path)
    stranded = len(shared.list_leases())
    assert stranded > 0  # the victim died holding seats
    time.sleep(0.6)  # one TTL passes, nobody renews

    # A second engine over the *same* worker pool now acquires freely
    # and serves a whole campaign to completion.
    campaign = Campaign.open(
        make_pool(6, seed=2),
        CampaignConfig(
            budget=10.0,
            capacity=1,
            batch_size=4,
            confidence_target=0.95,
            seed=2,
            coordinate_path=coord_path,
            lease_ttl=30.0,
        ),
    )
    campaign.submit([EngineTask(f"s{i}") for i in range(6)])
    metrics = campaign.run()
    assert metrics.completed == 6
    # Conservation after the crash: every seat the survivor took was
    # released on completion; nothing is double-held.
    assert len(shared.list_leases()) == 0
    campaign.close()
    shared.close()


def test_coordinated_campaign_matches_uncoordinated_fingerprint(tmp_path):
    """Coordination must be decision-neutral when uncontended: a single
    engine with leases on produces the same fingerprint as without."""

    def run(coordinate):
        config = dict(
            budget=20.0,
            capacity=3,
            batch_size=10,
            confidence_target=0.95,
            seed=5,
        )
        if coordinate:
            config["coordinate_path"] = str(tmp_path / "solo.db")
        with Campaign.open(
            make_pool(16, seed=5), CampaignConfig(**config)
        ) as campaign:
            campaign.submit([EngineTask(f"t{i}") for i in range(30)])
            return campaign.run().fingerprint()

    assert run(False) == run(True)
