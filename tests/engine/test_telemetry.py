"""Telemetry subsystem: hub semantics, observation-only discipline,
persistence, per-producer intake accounting, exports, CLI surface.

The load-bearing law is *observation only*: enabling telemetry must not
change a single campaign decision.  The parity matrix pins
:meth:`EngineMetrics.fingerprint` byte-identical with telemetry on vs
off across seeds x shard counts x sync/async ingestion; everything else
here checks that what the hub records is internally consistent
(histogram bucket conservation, ring bounds, resume-monotonic clocks)
and reaches every export surface (JSON snapshot, Prometheus text,
Chrome trace, ``repro trace summarize``).
"""

import json
import re
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.engine import (
    NULL_TELEMETRY,
    Campaign,
    CampaignConfig,
    EngineTask,
    IngestStats,
    IntakeQueue,
    MemoryBackend,
    NullTelemetry,
    SQLiteBackend,
    Telemetry,
)
from repro.engine.campaign import FORCE_TELEMETRY_ENV
from repro.engine.telemetry import DEFAULT_LATENCY_BUCKETS, _Histogram
from repro.simulation import SyntheticPoolConfig, generate_pool

SEEDS = (3, 11, 2015)


@pytest.fixture(autouse=True)
def _unforced_telemetry(monkeypatch):
    """This module tests the *config-level* on/off switch, so the CI
    job's REPRO_ENGINE_FORCE_TELEMETRY override must not leak in —
    tests that want the env toggle set it explicitly."""
    monkeypatch.delenv(FORCE_TELEMETRY_ENV, raising=False)


def make_campaign(seed=7, shards=1, num_tasks=60, **overrides):
    rng = np.random.default_rng(seed)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=8 * shards, quality_ceiling=0.95),
        rng,
    )
    defaults = dict(
        budget=0.3 * num_tasks,
        capacity=3,
        batch_size=20,
        confidence_target=0.95,
        seed=seed,
        num_shards=shards,
    )
    defaults.update(overrides)
    campaign = Campaign.open(pool, CampaignConfig(**defaults))
    truths = rng.integers(0, 2, size=num_tasks)
    campaign.submit(
        EngineTask(f"t{i}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )
    return campaign


class TestHub:
    def test_counters_accumulate_per_label_set(self):
        hub = Telemetry()
        hub.inc("votes")
        hub.inc("votes", 2)
        hub.inc("votes", shard=0)
        hub.inc("votes", shard=1)
        hub.inc("votes", shard=1)
        snap = hub.snapshot()
        rows = {
            (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in snap["counters"]
        }
        assert rows[("votes", ())] == 3
        assert rows[("votes", (("shard", "0"),))] == 1
        assert rows[("votes", (("shard", "1"),))] == 2

    def test_gauges_overwrite(self):
        hub = Telemetry()
        hub.set_gauge("load", 3)
        hub.set_gauge("load", 5)
        (row,) = hub.snapshot()["gauges"]
        assert row["value"] == 5

    def test_label_order_is_canonical(self):
        hub = Telemetry()
        hub.inc("x", shard=1, stage="admit")
        hub.inc("x", stage="admit", shard=1)
        (row,) = hub.snapshot()["counters"]
        assert row["value"] == 2

    def test_collectors_are_pull_based(self):
        hub = Telemetry()
        pulls = []

        def collector():
            pulls.append(1)
            yield ("cache.hits", {}, 9)

        hub.add_collector(collector)
        assert pulls == []
        snap = hub.snapshot()
        assert pulls == [1]
        assert {r["name"]: r["value"] for r in snap["gauges"]} == {
            "cache.hits": 9
        }

    def test_now_is_monotonic(self):
        hub = Telemetry()
        stamps = [hub.now() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert stamps[0] >= 0.0

    def test_span_records_histogram_and_span(self):
        hub = Telemetry()
        with hub.span("admit", shard=2):
            pass
        (span,) = hub.completed_spans()
        assert span.name == "admit"
        assert span.labels == {"shard": "2"}
        assert span.duration >= 0.0
        (hist,) = hub.snapshot()["histograms"]
        assert hist["name"] == "admit_seconds"
        assert hist["count"] == 1

    def test_timer_records_histogram_only(self):
        hub = Telemetry()
        with hub.timer("drain"):
            pass
        assert hub.completed_spans() == []
        (hist,) = hub.snapshot()["histograms"]
        assert hist["name"] == "drain_seconds"

    def test_event_ring_is_bounded(self):
        hub = Telemetry(trace_capacity=16)
        for i in range(50):
            hub.event("vote", task=i)
        events = hub.trace_events()
        assert len(events) == 16
        assert [e.fields["task"] for e in events] == list(range(34, 50))
        # Sequence numbers keep counting past the ring bound.
        assert events[-1].seq == 50

    def test_mark_windows_by_interval(self):
        hub = Telemetry(interval=1000.0)  # everything lands in window 0
        hub.mark("intake", 3)
        hub.mark("intake", 2)
        (window,) = hub.rates()["intake"]
        assert window["count"] == 5
        assert window["rate"] == pytest.approx(5 / 1000.0)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Telemetry(interval=0)


class TestHistogram:
    def test_bucket_conservation(self):
        hist = _Histogram()
        values = [0.00005, 0.0003, 0.004, 0.09, 7.0, 0.004]
        for v in values:
            hist.observe(v)
        assert hist.count == len(values)
        assert hist.total == pytest.approx(sum(values))
        # Internal counts are non-cumulative and conserve the count.
        assert sum(hist.counts) == hist.count
        cumulative = hist.cumulative()
        # Cumulative export is monotone and ends at the total count
        # with a +Inf bound.
        counts = [n for _, n in cumulative]
        assert counts == sorted(counts)
        assert cumulative[-1] == (float("inf"), len(values))
        assert len(cumulative) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_boundary_values_land_in_their_bucket(self):
        hist = _Histogram(bounds=(0.1, 1.0))
        hist.observe(0.1)  # le is inclusive
        hist.observe(1.0)
        hist.observe(1.0000001)
        assert hist.counts == [1, 1, 1]

    def test_state_round_trip(self):
        hist = _Histogram()
        for v in (0.002, 0.3, 12.0):
            hist.observe(v)
        clone = _Histogram.from_state(
            json.loads(json.dumps(hist.state_dict()))
        )
        assert clone.counts == hist.counts
        assert clone.total == pytest.approx(hist.total)
        assert clone.cumulative() == hist.cumulative()


class TestNullTelemetry:
    def test_full_surface_is_noop(self):
        hub = NullTelemetry()
        assert hub.enabled is False
        hub.inc("x")
        hub.set_gauge("y", 1)
        hub.observe("z", 0.5)
        hub.mark("intake")
        hub.event("vote", task="t1")
        hub.add_collector(lambda: [("a", {}, 1)])
        with hub.span("admit"):
            with hub.timer("drain"):
                pass
        assert hub.snapshot() == {"enabled": False}
        assert hub.trace_events() == []
        assert hub.completed_spans() == []
        assert hub.chrome_trace() == {"traceEvents": []}
        assert hub.state_dict() is None
        assert NULL_TELEMETRY.enabled is False

    def test_write_trace_writes_nothing(self, tmp_path):
        path = tmp_path / "trace.json"
        assert NullTelemetry().write_trace(str(path)) == 0


class TestPersistence:
    def test_state_round_trip_through_json(self):
        hub = Telemetry(interval=0.5)
        hub.inc("votes", 3, shard=1)
        hub.set_gauge("load", 7)
        hub.observe("admit_seconds", 0.002, shard=1)
        hub.mark("intake", 4)
        hub.event("vote", task="t0")
        with hub.span("admit"):
            pass
        state = json.loads(json.dumps(hub.state_dict()))

        clone = Telemetry(interval=0.5)
        clone.load_state(state)
        a, b = hub.snapshot(), clone.snapshot()
        for key in ("counters", "gauges", "histograms", "rates", "trace"):
            assert a[key] == b[key]
        assert [e.as_dict() for e in clone.trace_events()] == [
            e.as_dict() for e in hub.trace_events()
        ]

    def test_clock_and_sequences_resume_monotonic(self):
        hub = Telemetry()
        hub.event("vote")
        hub.event("vote")
        with hub.span("admit"):
            pass
        state = hub.state_dict()

        clone = Telemetry()
        clone.load_state(state)
        assert clone.now() >= state["elapsed"]
        clone.event("checkpoint")
        seqs = [e.seq for e in clone.trace_events()]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 3  # continues above the restored high-water
        with clone.span("admit"):
            pass
        span_ids = [s.span_id for s in clone.completed_spans()]
        assert span_ids == sorted(span_ids)

    def test_load_state_none_is_noop(self):
        hub = Telemetry()
        hub.inc("x")
        hub.load_state(None)
        assert len(hub.snapshot()["counters"]) == 1


FINGERPRINT_MATRIX = [
    (shards, ingestion)
    for shards in (1, 4)
    for ingestion in ("sync", "async")
]


class TestObservationOnly:
    """Telemetry never feeds back into campaign decisions."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shards,ingestion", FINGERPRINT_MATRIX)
    def test_fingerprint_identical_on_vs_off(self, seed, shards, ingestion):
        kwargs = dict(ingestion=ingestion)
        if ingestion == "async" and shards > 1:
            kwargs["parallel_shards"] = 2
        off = make_campaign(seed, shards, telemetry="off", **kwargs)
        on = make_campaign(seed, shards, telemetry="on", **kwargs)
        assert off.run().fingerprint() == on.run().fingerprint()
        assert on.telemetry.enabled
        assert not off.telemetry.enabled

    def test_force_env_toggle_is_observation_only(self, monkeypatch):
        reference = make_campaign(11, 4).run().fingerprint()
        monkeypatch.setenv(FORCE_TELEMETRY_ENV, "1")
        forced = make_campaign(11, 4)
        assert forced.config.telemetry == "on"
        assert forced.run().fingerprint() == reference

    def test_reestimation_spans_do_not_perturb(self):
        kwargs = dict(num_tasks=80, reestimate_every=25)
        off = make_campaign(13, 4, telemetry="off", **kwargs)
        on = make_campaign(13, 4, telemetry="on", **kwargs)
        assert off.run().fingerprint() == on.run().fingerprint()
        assert on.metrics.reestimations > 0
        kinds = {e.kind for e in on.telemetry.trace_events()}
        assert "re-estimation" in kinds


class TestCampaignIntegration:
    def test_trace_covers_the_serving_stack(self):
        campaign = make_campaign(7, 4, telemetry="on")
        campaign.run()
        kinds = {e.kind for e in campaign.telemetry.trace_events()}
        assert {"admit", "vote"} <= kinds
        span_names = {
            s.name for s in campaign.telemetry.completed_spans()
        }
        counters = {
            r["name"]
            for r in campaign.telemetry.snapshot()["counters"]
        }
        assert "engine.tasks_submitted" in counters
        if campaign.config.dispatch == "processes":
            # Shard admits run inside worker interpreters; the parent
            # hub sees the per-round dispatch envelope instead.
            assert "procpool_round" in span_names
            assert "scheduler.procpool_rounds" in counters
        else:
            assert {
                "admit",
                "frontier_build",
                "dispatch_merge",
            } <= span_names
            assert "scheduler.admitted" in counters

    def test_windowed_rates_exist_for_both_series(self):
        campaign = make_campaign(7, 1, telemetry="on")
        campaign.run()
        rates = campaign.telemetry.rates()
        assert sum(w["count"] for w in rates["intake"]) == 60
        assert sum(w["count"] for w in rates["throughput"]) == 60

    def test_snapshot_metrics_shape(self):
        campaign = make_campaign(7, 1, telemetry="on")
        campaign.run()
        snap = campaign.snapshot_metrics()
        json.dumps(snap)  # JSON-serialisable end to end
        assert snap["completed"] == 60
        assert snap["telemetry"]["enabled"] is True
        campaign_off = make_campaign(7, 1)
        campaign_off.run()
        assert campaign_off.snapshot_metrics()["telemetry"] == {
            "enabled": False
        }

    def test_prometheus_exposition(self):
        campaign = make_campaign(7, 4, telemetry="on")
        campaign.run()
        text = campaign.telemetry.render_prometheus()
        assert "# TYPE repro_engine_tasks_submitted_total counter" in text
        if campaign.config.dispatch == "processes":
            histogram = "repro_procpool_round_seconds"
        else:
            histogram = "repro_admit_seconds"
        assert f"# TYPE {histogram} histogram" in text
        assert 'le="+Inf"' in text
        assert f"{histogram}_bucket" in text
        assert f"{histogram}_count" in text

    def test_per_shard_labels_reach_exports(self):
        campaign = make_campaign(7, 4, telemetry="on")
        campaign.run()
        if campaign.config.dispatch == "processes":
            # Per-shard scheduler counters live worker-side; the parent
            # records the dispatch rounds instead.
            name = "scheduler.procpool_rounds"
        else:
            name = "scheduler.admitted"
        rows = [
            r
            for r in campaign.telemetry.snapshot()["counters"]
            if r["name"] == name
        ]
        assert rows
        if name == "scheduler.admitted":
            shards = {r["labels"].get("shard") for r in rows}
            assert len(shards) > 1

    @pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
    def test_telemetry_survives_checkpoint_resume(
        self, backend_kind, tmp_path
    ):
        if backend_kind == "memory":
            backend = MemoryBackend()
        else:
            backend = SQLiteBackend(tmp_path / "telemetry.db")
        rng = np.random.default_rng(21)
        pool = generate_pool(
            SyntheticPoolConfig(num_workers=16, quality_ceiling=0.95), rng
        )
        config = CampaignConfig(
            budget=18.0,
            confidence_target=0.95,
            seed=21,
            telemetry="on",
        )
        campaign = Campaign.open(pool, config, backend=backend)
        truths = rng.integers(0, 2, size=60)
        campaign.submit(
            EngineTask(f"t{i}", ground_truth=int(t))
            for i, t in enumerate(truths)
        )
        campaign.run(until=20)
        campaign.checkpoint()
        before = campaign.telemetry.snapshot()
        kinds_before = [e.kind for e in campaign.telemetry.trace_events()]
        assert "checkpoint" in kinds_before
        if backend_kind == "sqlite":
            campaign.close()
            backend = SQLiteBackend(tmp_path / "telemetry.db")

        resumed = Campaign.resume(backend)
        assert resumed.telemetry.enabled
        after = resumed.telemetry.snapshot()
        assert after["counters"] == before["counters"]
        assert after["histograms"] == before["histograms"]
        restored_kinds = [e.kind for e in resumed.telemetry.trace_events()]
        assert restored_kinds == kinds_before
        # The resumed clock continues past every restored timestamp
        # (the hub folds the checkpointed elapsed into an offset).
        last_restored_ts = max(
            e.ts for e in resumed.telemetry.trace_events()
        )
        assert after["elapsed"] >= last_restored_ts
        resumed.run()
        assert resumed.done
        # Post-resume activity lands on top of the restored counters.
        completed = {
            r["name"]: r["value"]
            for r in resumed.telemetry.snapshot()["counters"]
        }
        submitted_before = {
            r["name"]: r["value"] for r in before["counters"]
        }
        assert (
            sum(
                v
                for k, v in completed.items()
                if k == "engine.tasks_completed"
            )
            >= sum(
                v
                for k, v in submitted_before.items()
                if k == "engine.tasks_completed"
            )
        )


class TestIntakeAccounting:
    """Satellites: per-producer counters + IngestStats persistence."""

    def test_per_producer_counters_under_threads(self):
        intake = IntakeQueue(max_pending=1000)
        tasks = [EngineTask(f"t{i}") for i in range(40)]
        chunks = [tasks[i::4] for i in range(4)]

        def producer(chunk):
            intake.submit(chunk)

        threads = [
            threading.Thread(
                target=producer, args=(chunk,), name=f"producer-{i}"
            )
            for i, chunk in enumerate(chunks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = intake.stats
        assert stats.submitted == 40
        assert sorted(stats.per_producer) == [
            f"producer-{i}" for i in range(4)
        ]
        for row in stats.per_producer.values():
            assert row["submits"] == 10
            assert row["overflows"] == 0
            assert row["blocked_seconds"] >= 0.0
        assert sum(r["submits"] for r in stats.per_producer.values()) == 40

    def test_overflow_counts_against_its_producer(self):
        hub = Telemetry()
        intake = IntakeQueue(max_pending=2, telemetry=hub)
        intake.submit([EngineTask("a"), EngineTask("b")])
        from repro.engine import IngestionOverflow

        with pytest.raises(IngestionOverflow):
            intake.submit([EngineTask("c")], timeout=0.01)
        stats = intake.stats
        assert stats.overflows == 1
        producer = threading.current_thread().name
        assert stats.per_producer[producer]["overflows"] == 1
        assert stats.per_producer[producer]["blocked_seconds"] > 0.0
        kinds = [e.kind for e in hub.trace_events()]
        assert "intake-overflow" in kinds
        counters = {
            r["name"]: r["value"] for r in hub.snapshot()["counters"]
        }
        assert counters["intake.overflows"] == 1

    def test_ingest_stats_state_round_trip(self):
        stats = IngestStats(
            submitted=9,
            drained=7,
            drains=3,
            peak_pending=4,
            blocked_submits=1,
            overflows=2,
        )
        stats.producer("p0")["submits"] = 9
        clone = IngestStats.from_state(
            json.loads(json.dumps(stats.state_dict()))
        )
        assert clone == stats

    def test_intake_stats_survive_checkpoint_resume(self):
        backend = MemoryBackend()
        rng = np.random.default_rng(31)
        pool = generate_pool(
            SyntheticPoolConfig(num_workers=16, quality_ceiling=0.95), rng
        )
        campaign = Campaign.open(
            pool,
            CampaignConfig(
                budget=18.0,
                confidence_target=0.95,
                seed=31,
                ingestion="async",
            ),
            backend=backend,
        )
        truths = rng.integers(0, 2, size=60)
        campaign.submit(
            EngineTask(f"t{i}", ground_truth=int(t))
            for i, t in enumerate(truths)
        )
        campaign.run(until=20)
        campaign.checkpoint()
        submitted = campaign._ingest.intake.stats.submitted
        drained = campaign._ingest.intake.stats.drained
        assert submitted == 60

        resumed = Campaign.resume(backend)
        stats = resumed._ingest.intake.stats
        assert stats.submitted == submitted
        assert stats.drained == drained
        resumed.run()
        assert resumed.done
        # The finished run folds intake totals into the report.
        assert resumed.metrics.intake_stats["submitted"] == 60
        assert "intake" in resumed.metrics.render()


class TestRenderExtensions:
    def test_render_shows_intake_and_shard_lines(self):
        campaign = make_campaign(7, 4, ingestion="async")
        campaign.run()
        report = campaign.metrics.render()
        assert "intake" in report
        assert "60 submitted" in report
        assert "seats" in report
        assert "granted" in report
        assert "cache" in report
        assert "% hit" in report


class TestCLI:
    @pytest.fixture
    def engine_args(self, tmp_path):
        return [
            "engine",
            "--budget", "15",
            "--num-tasks", "60",
            "--num-workers", "16",
            "--seed", "9",
        ]

    def test_trace_round_trip_through_cli(
        self, engine_args, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        assert main(engine_args + ["--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "wrote trace" in out
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"M", "X", "i"} <= phases

        assert main(["trace", "summarize", str(trace)]) == 0
        summary = capsys.readouterr().out
        assert "spans (ms):" in summary
        assert "admit" in summary
        assert "vote" in summary

    def test_metrics_out_writes_snapshot(self, engine_args, tmp_path):
        metrics = tmp_path / "metrics.json"
        assert main(engine_args + ["--metrics-out", str(metrics)]) == 0
        payload = json.loads(metrics.read_text())
        assert payload["completed"] == 60
        assert payload["telemetry"]["enabled"] is True
        assert payload["telemetry"]["counters"]

    def test_telemetry_flag_without_outputs(self, engine_args, capsys):
        assert main(engine_args + ["--telemetry", "on"]) == 0
        assert "Campaign engine report" in capsys.readouterr().out

    def test_explicit_off_beats_implied_on(
        self, engine_args, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        code = main(
            engine_args
            + ["--telemetry", "off", "--trace-out", str(trace)]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "--trace-out ignored" in err
        assert not trace.exists()

    def test_summarize_rejects_missing_and_bad_files(
        self, tmp_path, capsys
    ):
        assert main(["trace", "summarize", str(tmp_path / "nope")]) == 2
        assert "cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        scalar = tmp_path / "scalar.json"
        scalar.write_text("42")
        assert main(["trace", "summarize", str(scalar)]) == 2
        assert "no traceEvents" in capsys.readouterr().err

    def test_summarize_accepts_bare_event_array(self, tmp_path, capsys):
        path = tmp_path / "array.json"
        path.write_text(json.dumps([
            {"name": "admit", "ph": "X", "ts": 0, "dur": 1500},
            {"name": "vote", "ph": "i", "ts": 2},
        ]))
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 spans, 1 instant events" in out


class TestPrometheusLabelEscaping:
    """Label values reaching the exporter are producer-controlled
    (thread names, shard tags); per the text-format v0.0.4 spec,
    backslash, double-quote, and newline must be escaped or the
    exposition is unparseable."""

    def test_escape_covers_the_three_special_characters(self):
        assert Telemetry._prom_escape('a"b') == 'a\\"b'
        assert Telemetry._prom_escape("a\\b") == "a\\\\b"
        assert Telemetry._prom_escape("a\nb") == "a\\nb"
        assert Telemetry._prom_escape('\\"\n') == '\\\\\\"\\n'
        assert Telemetry._prom_escape("plain") == "plain"

    def test_hostile_label_values_render_single_line(self):
        telemetry = Telemetry()
        telemetry.inc("requests", producer='evil"name\nwith\\stuff')
        text = telemetry.render_prometheus()
        line = next(
            l for l in text.splitlines() if l.startswith("repro_requests")
        )
        assert line == (
            'repro_requests_total{producer="evil\\"name\\nwith\\\\stuff"} 1'
        )

    def test_hostile_producer_thread_name_flows_through_intake(self):
        telemetry = Telemetry()
        queue = IntakeQueue(telemetry=telemetry)
        thread = threading.Thread(
            target=queue.submit,
            args=([EngineTask("t0"), EngineTask("t1")],),
            name='prod"uc\ner\\1',
        )
        thread.start()
        thread.join(timeout=10)
        text = telemetry.render_prometheus()
        assert 'producer="prod\\"uc\\ner\\\\1"' in text
        # One sample per line: no raw newline/quote survived into a
        # label value, so every line parses under the v0.0.4 grammar.
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*")*\})?'
            r' \S+$'
        )
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert sample.match(line), f"unparseable line: {line!r}"

    def test_gauge_and_histogram_labels_are_escaped_too(self):
        telemetry = Telemetry()
        telemetry.set_gauge("depth", 3, queue='q"1')
        telemetry.observe("lat", 0.5, route="a\\b")
        text = telemetry.render_prometheus()
        assert 'queue="q\\"1"' in text
        assert 'route="a\\\\b"' in text
