"""Scheduler invariants: capacity, budget pacing, substitution."""

import numpy as np
import pytest

from repro.core import Worker, WorkerPool
from repro.engine import (
    CampaignScheduler,
    EngineTask,
    JQCache,
    WorkerRegistry,
)


def make_scheduler(
    pool, budget, expected_tasks, capacity=2, frontier_pool_size=6
):
    registry = WorkerRegistry(pool, capacity=capacity)
    cache = JQCache()
    return CampaignScheduler(
        registry,
        cache,
        budget=budget,
        expected_tasks=expected_tasks,
        frontier_pool_size=frontier_pool_size,
    )


@pytest.fixture
def pool():
    rng = np.random.default_rng(9)
    return WorkerPool(
        Worker(f"w{i}", float(rng.uniform(0.55, 0.9)), float(rng.uniform(0.2, 1.0)))
        for i in range(12)
    )


def tasks(n, start=0):
    return [EngineTask(f"t{i}") for i in range(start, start + n)]


class TestCapacityInvariant:
    def test_no_worker_exceeds_capacity(self, pool):
        scheduler = make_scheduler(pool, budget=100.0, expected_tasks=30,
                                   capacity=2)
        seated = []
        for batch_start in (0, 10, 20):
            assignments, _ = scheduler.admit(tasks(10, batch_start))
            seated.extend(assignments)
            for state in scheduler.registry.states:
                assert state.load <= state.capacity
                assert state.peak_load <= state.capacity

    def test_saturated_workers_get_substituted_or_deferred(self, pool):
        """With capacity 1 and plenty of budget, 30 concurrent tasks
        cannot all get the frontier-optimal jury; whatever happens, no
        seat is double-booked and every funded jury is non-empty."""
        scheduler = make_scheduler(pool, budget=300.0, expected_tasks=30,
                                   capacity=1)
        assignments, deferred = scheduler.admit(tasks(30))
        seats: dict[str, int] = {}
        for assignment in assignments:
            for worker_id in assignment.jury.worker_ids:
                seats[worker_id] = seats.get(worker_id, 0) + 1
        assert all(count == 1 for count in seats.values())
        # 12 workers, capacity 1 -> at most 12 funded juries at once.
        funded = [a for a in assignments if a.funded]
        assert len(funded) <= 12
        assert len(funded) + len(deferred) + sum(
            1 for a in assignments if not a.funded
        ) == 30

    def test_planned_member_already_seated_as_substitute(self):
        """A planned juror who was already seated earlier in the loop —
        as a saturated member's substitute — must not be double-booked
        (regression: this used to raise and abort the campaign)."""
        pool = WorkerPool([Worker("A", 0.9, 1.0), Worker("B", 0.85, 1.0)])
        registry = WorkerRegistry(pool, capacity={"A": 1, "B": 4})
        registry.assign("A", "other")  # saturate A
        scheduler = CampaignScheduler(
            registry, JQCache(), budget=100.0, expected_tasks=1,
            frontier_pool_size=2,
        )
        ranked = sorted(
            registry.states,
            key=lambda s: (
                -max(s.worker.quality, 1.0 - s.worker.quality),
                s.worker.worker_id,
            ),
        )
        jury = scheduler._seat_jury(
            EngineTask("t1"), ["A", "B"], 2.0, ranked
        )
        assert jury is not None
        assert jury.worker_ids == ("B",)
        assert registry.state("B").load == 1

    def test_everything_deferred_when_no_seats(self, pool):
        scheduler = make_scheduler(pool, budget=100.0, expected_tasks=10,
                                   capacity=1)
        for worker in pool:
            scheduler.registry.assign(worker.worker_id, "blocker")
        assignments, deferred = scheduler.admit(tasks(5))
        assert assignments == []
        assert len(deferred) == 5


class TestBudgetInvariant:
    def test_reserved_never_exceeds_budget(self, pool):
        budget = 6.0
        scheduler = make_scheduler(pool, budget=budget, expected_tasks=40,
                                   capacity=4)
        for batch_start in range(0, 40, 10):
            scheduler.admit(tasks(10, batch_start))
        assert scheduler.reserved <= budget + 1e-9
        assert scheduler.remaining_budget >= -1e-9

    def test_batch_share_paces_spend(self, pool):
        """The first batch may only reserve its pro-rata share, leaving
        budget for later arrivals."""
        budget = 40.0
        scheduler = make_scheduler(pool, budget=budget, expected_tasks=40,
                                   capacity=4)
        scheduler.admit(tasks(10))
        assert scheduler.reserved <= budget * 10 / 40 + 1e-9
        assert scheduler.remaining_budget >= budget * 30 / 40 - 1e-9

    def test_refund_returns_to_the_pot(self, pool):
        scheduler = make_scheduler(pool, budget=10.0, expected_tasks=10)
        assignments, _ = scheduler.admit(tasks(10))
        reserved = scheduler.reserved
        assert reserved > 0
        scheduler.refund(0.5)
        assert scheduler.remaining_budget == pytest.approx(
            10.0 - reserved + 0.5
        )

    def test_refunds_carry_over_to_later_batches(self):
        """Budget refunded by early stops (and shares a batch left
        unspent) must be reservable by later batches, not forfeited
        (regression: pacing used to cap every batch at its bare
        pro-rata share)."""
        pool = WorkerPool(
            Worker(f"w{i}", 0.72 + 0.01 * i, 2.0) for i in range(5)
        )
        scheduler = make_scheduler(pool, budget=10.0, expected_tasks=2,
                                   capacity=5, frontier_pool_size=5)
        first, _ = scheduler.admit([EngineTask("t0")])
        cost_first = first[0].reserved_cost
        assert 0 < cost_first <= 5.0 + 1e-9  # paced to its share
        scheduler.refund(cost_first)  # t0 stopped before any vote
        second, _ = scheduler.admit([EngineTask("t1")])
        # t1's batch may now draw on the refunded share too.
        assert second[0].reserved_cost > 5.0 + 1e-9
        assert scheduler.remaining_budget >= -1e-9

    def test_negative_refund_rejected(self, pool):
        scheduler = make_scheduler(pool, budget=10.0, expected_tasks=10)
        with pytest.raises(ValueError):
            scheduler.refund(-1.0)

    def test_jury_cost_within_planned_cost(self, pool):
        """Substitution never produces a jury dearer than the frontier
        point the allocation bought."""
        scheduler = make_scheduler(pool, budget=50.0, expected_tasks=20,
                                   capacity=1)
        assignments, _ = scheduler.admit(tasks(20))
        for assignment in assignments:
            if assignment.funded:
                assert assignment.jury.cost <= assignment.reserved_cost + 1e-9


class TestAdmitMechanics:
    def test_empty_batch_is_noop(self, pool):
        scheduler = make_scheduler(pool, budget=10.0, expected_tasks=10)
        assert scheduler.admit([]) == ([], [])

    def test_zero_budget_answers_priors(self, pool):
        scheduler = make_scheduler(pool, budget=0.0, expected_tasks=5)
        assignments, deferred = scheduler.admit(tasks(5))
        assert deferred == []
        assert all(not a.funded for a in assignments)
        assert all(a.reserved_cost == 0.0 for a in assignments)

    def test_predicted_jq_is_cached_objective_value(self, pool):
        scheduler = make_scheduler(pool, budget=50.0, expected_tasks=5)
        assignments, _ = scheduler.admit(tasks(5))
        funded = [a for a in assignments if a.funded]
        assert funded
        for assignment in funded:
            assert assignment.predicted_jq == scheduler.cache.jq_jury(
                assignment.jury
            )

    def test_validation(self, pool):
        registry = WorkerRegistry(pool)
        with pytest.raises(ValueError):
            CampaignScheduler(registry, JQCache(), budget=-1.0,
                              expected_tasks=5)
        with pytest.raises(ValueError):
            CampaignScheduler(registry, JQCache(), budget=1.0,
                              expected_tasks=0)
        with pytest.raises(ValueError):
            CampaignScheduler(registry, JQCache(), budget=1.0,
                              expected_tasks=5, frontier_pool_size=13)
