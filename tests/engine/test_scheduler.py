"""Scheduler invariants: capacity, budget pacing, substitution."""

import numpy as np
import pytest

from repro.core import Worker, WorkerPool
from repro.engine import (
    CampaignScheduler,
    EngineTask,
    JQCache,
    SubstituteIndex,
    WorkerRegistry,
    linear_best_substitute,
)
from repro.engine.state import informativeness_key


class LinearScanIndex:
    """The pre-index substitute search as a drop-in index: the oracle
    the heap must agree with, ranked by the same production key."""

    def __init__(self, states):
        self._ranked = sorted(
            states, key=lambda s: informativeness_key(s.worker)
        )

    def best(self, max_cost, exclude):
        return linear_best_substitute(self._ranked, max_cost, exclude)


def make_scheduler(
    pool, budget, expected_tasks, capacity=2, frontier_pool_size=6
):
    registry = WorkerRegistry(pool, capacity=capacity)
    cache = JQCache()
    return CampaignScheduler(
        registry,
        cache,
        budget=budget,
        expected_tasks=expected_tasks,
        frontier_pool_size=frontier_pool_size,
    )


@pytest.fixture
def pool():
    rng = np.random.default_rng(9)
    return WorkerPool(
        Worker(f"w{i}", float(rng.uniform(0.55, 0.9)), float(rng.uniform(0.2, 1.0)))
        for i in range(12)
    )


def tasks(n, start=0):
    return [EngineTask(f"t{i}") for i in range(start, start + n)]


class TestCapacityInvariant:
    def test_no_worker_exceeds_capacity(self, pool):
        scheduler = make_scheduler(pool, budget=100.0, expected_tasks=30,
                                   capacity=2)
        seated = []
        for batch_start in (0, 10, 20):
            assignments, _ = scheduler.admit(tasks(10, batch_start))
            seated.extend(assignments)
            for state in scheduler.registry.states:
                assert state.load <= state.capacity
                assert state.peak_load <= state.capacity

    def test_saturated_workers_get_substituted_or_deferred(self, pool):
        """With capacity 1 and plenty of budget, 30 concurrent tasks
        cannot all get the frontier-optimal jury; whatever happens, no
        seat is double-booked and every funded jury is non-empty."""
        scheduler = make_scheduler(pool, budget=300.0, expected_tasks=30,
                                   capacity=1)
        assignments, deferred = scheduler.admit(tasks(30))
        seats: dict[str, int] = {}
        for assignment in assignments:
            for worker_id in assignment.jury.worker_ids:
                seats[worker_id] = seats.get(worker_id, 0) + 1
        assert all(count == 1 for count in seats.values())
        # 12 workers, capacity 1 -> at most 12 funded juries at once.
        funded = [a for a in assignments if a.funded]
        assert len(funded) <= 12
        assert len(funded) + len(deferred) + sum(
            1 for a in assignments if not a.funded
        ) == 30

    def test_planned_member_already_seated_as_substitute(self):
        """A planned juror who was already seated earlier in the loop —
        as a saturated member's substitute — must not be double-booked
        (regression: this used to raise and abort the campaign)."""
        pool = WorkerPool([Worker("A", 0.9, 1.0), Worker("B", 0.85, 1.0)])
        registry = WorkerRegistry(pool, capacity={"A": 1, "B": 4})
        registry.assign("A", "other")  # saturate A
        scheduler = CampaignScheduler(
            registry, JQCache(), budget=100.0, expected_tasks=1,
            frontier_pool_size=2,
        )
        jury = scheduler._seat_jury(
            EngineTask("t1"), ["A", "B"], 2.0,
            SubstituteIndex(registry.states),
        )
        assert jury is not None
        assert jury.worker_ids == ("B",)
        assert registry.state("B").load == 1

    def test_everything_deferred_when_no_seats(self, pool):
        scheduler = make_scheduler(pool, budget=100.0, expected_tasks=10,
                                   capacity=1)
        for worker in pool:
            scheduler.registry.assign(worker.worker_id, "blocker")
        assignments, deferred = scheduler.admit(tasks(5))
        assert assignments == []
        assert len(deferred) == 5


class TestBudgetInvariant:
    def test_reserved_never_exceeds_budget(self, pool):
        budget = 6.0
        scheduler = make_scheduler(pool, budget=budget, expected_tasks=40,
                                   capacity=4)
        for batch_start in range(0, 40, 10):
            scheduler.admit(tasks(10, batch_start))
        assert scheduler.reserved <= budget + 1e-9
        assert scheduler.remaining_budget >= -1e-9

    def test_batch_share_paces_spend(self, pool):
        """The first batch may only reserve its pro-rata share, leaving
        budget for later arrivals."""
        budget = 40.0
        scheduler = make_scheduler(pool, budget=budget, expected_tasks=40,
                                   capacity=4)
        scheduler.admit(tasks(10))
        assert scheduler.reserved <= budget * 10 / 40 + 1e-9
        assert scheduler.remaining_budget >= budget * 30 / 40 - 1e-9

    def test_refund_returns_to_the_pot(self, pool):
        scheduler = make_scheduler(pool, budget=10.0, expected_tasks=10)
        assignments, _ = scheduler.admit(tasks(10))
        reserved = scheduler.reserved
        assert reserved > 0
        scheduler.refund(0.5)
        assert scheduler.remaining_budget == pytest.approx(
            10.0 - reserved + 0.5
        )

    def test_refunds_carry_over_to_later_batches(self):
        """Budget refunded by early stops (and shares a batch left
        unspent) must be reservable by later batches, not forfeited
        (regression: pacing used to cap every batch at its bare
        pro-rata share)."""
        pool = WorkerPool(
            Worker(f"w{i}", 0.72 + 0.01 * i, 2.0) for i in range(5)
        )
        scheduler = make_scheduler(pool, budget=10.0, expected_tasks=2,
                                   capacity=5, frontier_pool_size=5)
        first, _ = scheduler.admit([EngineTask("t0")])
        cost_first = first[0].reserved_cost
        assert 0 < cost_first <= 5.0 + 1e-9  # paced to its share
        scheduler.refund(cost_first)  # t0 stopped before any vote
        second, _ = scheduler.admit([EngineTask("t1")])
        # t1's batch may now draw on the refunded share too.
        assert second[0].reserved_cost > 5.0 + 1e-9
        assert scheduler.remaining_budget >= -1e-9

    def test_negative_refund_rejected(self, pool):
        scheduler = make_scheduler(pool, budget=10.0, expected_tasks=10)
        with pytest.raises(ValueError):
            scheduler.refund(-1.0)

    def test_jury_cost_within_planned_cost(self, pool):
        """Substitution never produces a jury dearer than the frontier
        point the allocation bought."""
        scheduler = make_scheduler(pool, budget=50.0, expected_tasks=20,
                                   capacity=1)
        assignments, _ = scheduler.admit(tasks(20))
        for assignment in assignments:
            if assignment.funded:
                assert assignment.jury.cost <= assignment.reserved_cost + 1e-9


class TestAdmitMechanics:
    def test_empty_batch_is_noop(self, pool):
        scheduler = make_scheduler(pool, budget=10.0, expected_tasks=10)
        assert scheduler.admit([]) == ([], [])

    def test_zero_budget_answers_priors(self, pool):
        scheduler = make_scheduler(pool, budget=0.0, expected_tasks=5)
        assignments, deferred = scheduler.admit(tasks(5))
        assert deferred == []
        assert all(not a.funded for a in assignments)
        assert all(a.reserved_cost == 0.0 for a in assignments)

    def test_predicted_jq_is_cached_objective_value(self, pool):
        scheduler = make_scheduler(pool, budget=50.0, expected_tasks=5)
        assignments, _ = scheduler.admit(tasks(5))
        funded = [a for a in assignments if a.funded]
        assert funded
        for assignment in funded:
            assert assignment.predicted_jq == scheduler.cache.jq_jury(
                assignment.jury
            )

    def test_validation(self, pool):
        registry = WorkerRegistry(pool)
        with pytest.raises(ValueError):
            CampaignScheduler(registry, JQCache(), budget=-1.0,
                              expected_tasks=5)
        with pytest.raises(ValueError):
            CampaignScheduler(registry, JQCache(), budget=1.0,
                              expected_tasks=0)
        with pytest.raises(ValueError):
            CampaignScheduler(registry, JQCache(), budget=1.0,
                              expected_tasks=5, frontier_pool_size=0)
        with pytest.raises(ValueError):
            CampaignScheduler(registry, JQCache(), budget=1.0,
                              expected_tasks=5, frontier_pool_size=21)
        # 13-20 became legal with the streamed frontier: the scheduler
        # is no longer pinned by the dense lattice's memory wall.
        from repro.engine.scheduler import MAX_FRONTIER_POOL

        assert MAX_FRONTIER_POOL == 20
        scheduler = CampaignScheduler(
            registry, JQCache(), budget=1.0, expected_tasks=5,
            frontier_pool_size=MAX_FRONTIER_POOL,
        )
        assert scheduler.frontier_pool_size == 20


class TestSubstituteIndex:
    """The heap-backed index must agree with the linear reference scan
    query for query — it is an indexing change, not a policy change."""

    def test_agrees_with_linear_scan_under_random_queries(self):
        rng = np.random.default_rng(17)
        pool = WorkerPool(
            Worker(
                f"w{i:02d}",
                float(rng.uniform(0.5, 0.95)),
                float(rng.uniform(0.2, 1.5)),
            )
            for i in range(64)
        )
        registry = WorkerRegistry(pool, capacity=2)
        index = SubstituteIndex(registry.states)
        oracle = LinearScanIndex(registry.states)
        for step in range(300):
            max_cost = float(rng.uniform(0.1, 1.6))
            exclude = set(
                rng.choice(registry.worker_ids, size=rng.integers(0, 5),
                           replace=False)
            )
            expected = oracle.best(max_cost, exclude)
            assert index.best(max_cost, exclude) == expected
            if expected is not None and rng.random() < 0.7:
                # Seat the chosen worker, as admit would (capacity only
                # ever decreases within a batch).
                registry.assign(expected, f"task-{step}")

    def test_saturated_workers_are_dropped_not_lost_prematurely(self):
        pool = WorkerPool(
            [Worker("A", 0.9, 1.0), Worker("B", 0.8, 1.0),
             Worker("C", 0.7, 1.0)]
        )
        registry = WorkerRegistry(pool, capacity=1)
        index = SubstituteIndex(registry.states)
        # A is too expensive for the first seat but must survive for
        # the second query.
        assert index.best(max_cost=1.0, exclude={"A"}) == "B"
        assert index.best(max_cost=1.0, exclude=set()) == "A"
        registry.assign("A", "t0")
        assert index.best(max_cost=1.0, exclude=set()) == "B"

    def test_exhausted_index_returns_none(self):
        pool = WorkerPool([Worker("A", 0.9, 2.0)])
        registry = WorkerRegistry(pool, capacity=1)
        index = SubstituteIndex(registry.states)
        assert index.best(max_cost=1.0, exclude=set()) is None  # too dear
        assert index.best(max_cost=5.0, exclude=set()) == "A"
        registry.assign("A", "t0")
        assert index.best(max_cost=5.0, exclude=set()) is None

    def test_identical_seatings_on_seeded_campaigns(self):
        """End to end: a campaign served with the heap index must admit
        byte-identical juries to one served with the linear scan."""
        from repro.engine import Campaign, CampaignConfig
        from repro.simulation import SyntheticPoolConfig, generate_pool

        def run(patched):
            rng = np.random.default_rng(23)
            sim_pool = generate_pool(
                SyntheticPoolConfig(num_workers=64, quality_ceiling=0.95),
                rng,
            )
            campaign = Campaign.open(
                sim_pool,
                CampaignConfig(
                    budget=60.0, capacity=2, batch_size=40,
                    confidence_target=0.95, seed=23,
                ),
            )
            if patched:
                scheduler_cls = CampaignScheduler
                original = scheduler_cls._make_substitute_index
                scheduler_cls._make_substitute_index = (
                    lambda self: LinearScanIndex(self.registry.states)
                )
                try:
                    campaign.submit(tasks(200))
                    return campaign.run().fingerprint()
                finally:
                    scheduler_cls._make_substitute_index = original
            campaign.submit(tasks(200))
            return campaign.run().fingerprint()

        assert run(patched=False) == run(patched=True)
