"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Jury, Worker, WorkerPool


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def example2_qualities() -> np.ndarray:
    """The paper's Example 2/3 jury: qualities (0.9, 0.6, 0.6)."""
    return np.array([0.9, 0.6, 0.6])


@pytest.fixture
def figure1_pool() -> WorkerPool:
    """The Figure-1 candidate pool (workers A-G)."""
    return WorkerPool(
        [
            Worker("A", 0.77, 9),
            Worker("B", 0.70, 5),
            Worker("C", 0.80, 6),
            Worker("D", 0.65, 7),
            Worker("E", 0.60, 5),
            Worker("F", 0.60, 2),
            Worker("G", 0.75, 3),
        ]
    )


@pytest.fixture
def small_jury() -> Jury:
    """A three-member jury with distinct costs."""
    return Jury(
        [
            Worker("x", 0.8, 2.0),
            Worker("y", 0.7, 1.0),
            Worker("z", 0.6, 0.5),
        ]
    )
