"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core import Jury, Worker, WorkerPool

#: Optional per-test wall-clock limit (seconds).  CI sets this when it
#: re-runs the engine suite with async ingestion and parallel shard
#: dispatch forced on (see ``REPRO_ENGINE_FORCE_INGESTION`` in
#: ``repro.engine.campaign``): a deadlock in the concurrent path then
#: fails the one stuck test fast instead of hanging the whole job.
_TIMEOUT_ENV = "REPRO_TEST_TIMEOUT"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    limit = float(os.environ.get(_TIMEOUT_ENV, "0") or 0)
    if limit <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_alarm(signum, frame):  # pragma: no cover - only fires on hangs
        raise TimeoutError(
            f"test exceeded {_TIMEOUT_ENV}={limit:g}s (likely a deadlock "
            "in the concurrent serving path)"
        )

    # SIGALRM interrupts lock/condition waits on the main thread, which
    # is exactly where an intake/dispatch deadlock would park the test.
    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def example2_qualities() -> np.ndarray:
    """The paper's Example 2/3 jury: qualities (0.9, 0.6, 0.6)."""
    return np.array([0.9, 0.6, 0.6])


@pytest.fixture
def figure1_pool() -> WorkerPool:
    """The Figure-1 candidate pool (workers A-G)."""
    return WorkerPool(
        [
            Worker("A", 0.77, 9),
            Worker("B", 0.70, 5),
            Worker("C", 0.80, 6),
            Worker("D", 0.65, 7),
            Worker("E", 0.60, 5),
            Worker("F", 0.60, 2),
            Worker("G", 0.75, 3),
        ]
    )


@pytest.fixture
def small_jury() -> Jury:
    """A three-member jury with distinct costs."""
    return Jury(
        [
            Worker("x", 0.8, 2.0),
            Worker("y", 0.7, 1.0),
            Worker("z", 0.6, 0.5),
        ]
    )
