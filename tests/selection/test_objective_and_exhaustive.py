"""Tests for repro.selection.base and repro.selection.exhaustive."""

import numpy as np
import pytest

from repro.core import EnumerationLimitError, Jury, Worker, WorkerPool
from repro.quality import exact_jq_bv, exact_jq_mv
from repro.selection import (
    ExhaustiveSelector,
    JQObjective,
    optimal_jq,
)
from repro.voting import BayesianVoting, MajorityVoting, TriadicConsensus


class TestJQObjective:
    def test_default_is_bv(self):
        obj = JQObjective()
        assert isinstance(obj.strategy, BayesianVoting)
        assert obj.is_monotone

    def test_mv_objective_not_monotone(self):
        assert not JQObjective(MajorityVoting()).is_monotone

    def test_empty_jury_scores_prior_mode(self):
        assert JQObjective(alpha=0.5)(Jury(())) == 0.5
        assert JQObjective(alpha=0.8)(Jury(())) == pytest.approx(0.8)
        assert JQObjective(alpha=0.2)(Jury(())) == pytest.approx(0.8)

    def test_matches_exact_small(self):
        jury = Jury([Worker("a", 0.9), Worker("b", 0.6), Worker("c", 0.6)])
        assert JQObjective()(jury) == pytest.approx(0.9)
        assert JQObjective(MajorityVoting())(jury) == pytest.approx(0.792)

    def test_bucket_above_cutoff_still_accurate(self):
        q = np.full(14, 0.7)
        jury = Jury(Worker(f"w{i}", 0.7) for i in range(14))
        obj = JQObjective(exact_cutoff=12)
        assert obj(jury) == pytest.approx(exact_jq_bv(q, max_size=20), abs=1e-3)

    def test_generic_strategy_path(self):
        jury = Jury([Worker("a", 0.8), Worker("b", 0.7), Worker("c", 0.6)])
        obj = JQObjective(TriadicConsensus())
        score = obj(jury)
        assert 0.5 <= score <= 1.0

    def test_evaluation_counter(self):
        obj = JQObjective()
        jury = Jury([Worker("a", 0.8)])
        obj(jury)
        obj(jury)
        assert obj.evaluations == 2
        obj.reset_counter()
        assert obj.evaluations == 0


class TestExhaustiveSelector:
    def test_figure1_budgets(self, figure1_pool):
        """The Figure-1 budget-quality rows are exactly optimal."""
        selector = ExhaustiveSelector(JQObjective())
        expectations = {5: 0.75, 10: 0.80, 15: 0.845, 20: 0.8695}
        for budget, jq in expectations.items():
            result = selector.select(figure1_pool, budget)
            assert result.jq == pytest.approx(jq, abs=1e-9), budget
            assert result.cost <= budget

    def test_figure1_budget15_jury_identity(self, figure1_pool):
        result = ExhaustiveSelector(JQObjective()).select(figure1_pool, 15)
        assert set(result.worker_ids) == {"B", "C", "G"}
        assert result.cost == pytest.approx(14)

    def test_respects_budget(self, figure1_pool):
        result = ExhaustiveSelector(JQObjective()).select(figure1_pool, 2.5)
        assert result.cost <= 2.5
        assert set(result.worker_ids) == {"F"}

    def test_zero_budget_returns_empty(self, figure1_pool):
        result = ExhaustiveSelector(JQObjective()).select(figure1_pool, 0.0)
        assert result.jury.size == 0

    def test_negative_budget_rejected(self, figure1_pool):
        with pytest.raises(ValueError):
            ExhaustiveSelector(JQObjective()).select(figure1_pool, -1)

    def test_pool_size_guard(self):
        pool = WorkerPool(Worker(f"w{i}", 0.7, 1.0) for i in range(25))
        with pytest.raises(EnumerationLimitError):
            ExhaustiveSelector(JQObjective()).select(pool, 5)

    def test_mv_objective_scans_all_juries(self, rng):
        """Under MV a *smaller* jury can beat a feasible superset, so
        the selector must not use the maximal-jury shortcut."""
        pool = WorkerPool(
            [Worker("good", 0.95, 1.0), Worker("bad1", 0.5, 0.0),
             Worker("bad2", 0.5, 0.0)]
        )
        result = ExhaustiveSelector(JQObjective(MajorityVoting())).select(
            pool, 1.0
        )
        # {good} alone: MV JQ = 0.95; {good,bad1,bad2}: MV needs 2 of 3.
        full_jq = exact_jq_mv([0.95, 0.5, 0.5])
        assert result.jq == pytest.approx(0.95)
        assert result.jq > full_jq

    def test_bv_maximal_shortcut_matches_full_scan(self, rng):
        """With the monotone BV objective, scanning only maximal juries
        yields the same optimum as scanning everything."""
        workers = [
            Worker(f"w{i}", float(q), float(c))
            for i, (q, c) in enumerate(
                zip(rng.uniform(0.5, 0.9, 8), rng.uniform(0.1, 1.0, 8))
            )
        ]
        pool = WorkerPool(workers)
        budget = 1.5
        fast = ExhaustiveSelector(JQObjective()).select(pool, budget)
        # Brute-force reference without the shortcut:
        best = 0.0
        for mask in range(1, 1 << 8):
            members = [workers[i] for i in range(8) if mask >> i & 1]
            if sum(w.cost for w in members) > budget:
                continue
            best = max(best, exact_jq_bv([w.quality for w in members]))
        assert fast.jq == pytest.approx(best, abs=1e-12)

    def test_optimal_jq_helper(self, figure1_pool):
        assert optimal_jq(figure1_pool, 5) == pytest.approx(0.75)


class TestObjectiveBatch:
    def test_batch_matches_scalar_bitwise_bv(self, rng):
        scalar = JQObjective(alpha=0.37, exact_cutoff=8)
        batched = JQObjective(alpha=0.37, exact_cutoff=8)
        juries = [
            Jury(
                Worker(f"w{i}", float(q))
                for i, q in enumerate(rng.random(int(rng.integers(1, 13))))
            )
            for _ in range(40)
        ]
        juries.append(Jury(()))
        values = batched.batch(juries)
        assert [float(v) for v in values] == [scalar(j) for j in juries]
        assert batched.evaluations == scalar.evaluations == len(juries)

    def test_batch_matches_scalar_mv(self, rng):
        scalar = JQObjective(MajorityVoting())
        batched = JQObjective(MajorityVoting())
        juries = [
            Jury(Worker(f"w{i}", float(q)) for i, q in enumerate(row))
            for row in (rng.random(3), rng.random(5), rng.random(1))
        ]
        assert [float(v) for v in batched.batch(juries)] == [
            scalar(j) for j in juries
        ]

    def test_all_subsets_none_for_unsupported(self):
        assert JQObjective(MajorityVoting()).all_subsets([0.6, 0.7]) is None
        assert JQObjective().all_subsets(np.full(15, 0.7)) is None

    def test_all_subsets_matches_calls(self):
        obj = JQObjective(alpha=0.3)
        table = obj.all_subsets([0.9, 0.6, 0.55])
        jury = Jury([Worker("a", 0.9), Worker("c", 0.55)])
        assert float(table[0b101]) == obj(jury)


class TestExhaustiveImplementations:
    def test_batch_equals_scalar_bv(self, rng):
        workers = [
            Worker(f"w{i}", float(q), float(c))
            for i, (q, c) in enumerate(
                zip(rng.uniform(0.5, 0.95, 9), rng.uniform(0.1, 1.0, 9))
            )
        ]
        pool = WorkerPool(workers)
        for budget in (0.0, 0.8, 2.0, 100.0):
            fast = ExhaustiveSelector(
                JQObjective(), implementation="batch"
            ).select(pool, budget)
            slow = ExhaustiveSelector(
                JQObjective(), implementation="scalar"
            ).select(pool, budget)
            assert fast.worker_ids == slow.worker_ids, budget
            assert fast.jq == slow.jq
            assert fast.evaluations == slow.evaluations

    def test_batch_equals_scalar_mv(self, rng):
        pool = WorkerPool(
            Worker(f"w{i}", float(q), 1.0)
            for i, q in enumerate(rng.uniform(0.4, 0.95, 7))
        )
        fast = ExhaustiveSelector(
            JQObjective(MajorityVoting()), implementation="batch"
        ).select(pool, 4.0)
        slow = ExhaustiveSelector(
            JQObjective(MajorityVoting()), implementation="scalar"
        ).select(pool, 4.0)
        assert fast.worker_ids == slow.worker_ids
        assert fast.jq == slow.jq

    def test_validation(self):
        with pytest.raises(ValueError):
            ExhaustiveSelector(JQObjective(), implementation="gpu")


class TestFrontierBudgetTable:
    def test_matches_exhaustive_rows(self, figure1_pool):
        from repro.selection import frontier_budget_table

        table = frontier_budget_table(figure1_pool, [5, 10, 15, 20])
        expectations = {5: 0.75, 10: 0.80, 15: 0.845, 20: 0.8695}
        for row in table.rows:
            assert row.jq == pytest.approx(expectations[row.budget], abs=1e-9)
            assert row.required <= row.budget + 1e-9
        assert set(table.rows[2].worker_ids) == {"B", "C", "G"}
        assert table.results[0].selector == "frontier"
        assert table.results[0].evaluations > 0

    def test_unaffordable_budget_row_is_empty(self, figure1_pool):
        from repro.selection import frontier_budget_table

        table = frontier_budget_table(figure1_pool, [0.5])
        assert table.rows[0].worker_ids == ()
        assert table.rows[0].jq == 0.5
        assert table.rows[0].required == 0.0


class TestExhaustivePrescreen:
    def test_prescreen_drops_no_feasible_jury(self, rng):
        """At >= 12 workers with a binding budget the vectorized
        subset-cost prescreen is active; the selected jury must match a
        reference enumeration that never prescreens."""
        workers = [
            Worker(f"w{i:02d}", float(q), float(c))
            for i, (q, c) in enumerate(
                zip(rng.uniform(0.5, 0.95, 12), rng.uniform(0.1, 1.0, 12))
            )
        ]
        pool = WorkerPool(workers)
        budget = 1.2  # binding: the full pool costs far more
        result = ExhaustiveSelector(JQObjective()).select(pool, budget)
        best = 0.0
        for mask in range(1, 1 << 12):
            members = [workers[i] for i in range(12) if mask >> i & 1]
            if sum(w.cost for w in members) > budget:
                continue
            best = max(best, exact_jq_bv([w.quality for w in members]))
        assert result.jq == pytest.approx(best, abs=1e-12)
        assert result.cost <= budget + 1e-9
