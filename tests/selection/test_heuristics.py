"""Tests for greedy selectors, special cases, MVJS and budget tables."""

import numpy as np
import pytest

from repro.core import Jury, Worker, WorkerPool
from repro.quality import exact_jq_bv
from repro.selection import (
    AnnealingSelector,
    GreedyQualitySelector,
    GreedyRatioSelector,
    JQObjective,
    MVJSSelector,
    budget_quality_table,
    check_quality_monotonicity,
    check_size_monotonicity,
    mv_objective,
    select_all_if_unconstrained,
    select_top_k_uniform_cost,
)


class TestGreedySelectors:
    def test_greedy_quality_order(self, figure1_pool, rng):
        result = GreedyQualitySelector(JQObjective()).select(
            figure1_pool, 9, rng=rng
        )
        # Takes C (0.8, $6) then G (0.75, $3) -> budget exhausted.
        assert set(result.worker_ids) == {"C", "G"}

    def test_greedy_ratio_prefers_cheap_information(self, rng):
        pool = WorkerPool(
            [Worker("pricey", 0.9, 10.0), Worker("value", 0.85, 1.0)]
        )
        result = GreedyRatioSelector(JQObjective()).select(pool, 10, rng=rng)
        assert "value" in result.worker_ids

    def test_greedy_ratio_free_workers_first(self, rng):
        pool = WorkerPool(
            [Worker("free", 0.7, 0.0), Worker("paid", 0.9, 1.0)]
        )
        result = GreedyRatioSelector(JQObjective()).select(pool, 1.0, rng=rng)
        assert set(result.worker_ids) == {"free", "paid"}

    def test_feasibility(self, figure1_pool, rng):
        for selector_cls in (GreedyQualitySelector, GreedyRatioSelector):
            result = selector_cls(JQObjective()).select(
                figure1_pool, 7, rng=rng
            )
            assert result.cost <= 7 + 1e-9


class TestSpecialCases:
    def test_select_all_when_affordable(self, figure1_pool):
        jury = select_all_if_unconstrained(figure1_pool, 100)
        assert jury is not None and jury.size == 7
        assert select_all_if_unconstrained(figure1_pool, 10) is None

    def test_top_k_uniform_cost(self):
        pool = WorkerPool(
            [Worker("a", 0.6, 2.0), Worker("b", 0.9, 2.0), Worker("c", 0.7, 2.0)]
        )
        jury = select_top_k_uniform_cost(pool, 4.5)
        assert jury is not None
        assert set(jury.worker_ids) == {"b", "c"}  # top-2 by quality

    def test_top_k_rejects_nonuniform(self, figure1_pool):
        assert select_top_k_uniform_cost(figure1_pool, 10) is None

    def test_top_k_zero_cost_degenerates_to_all(self):
        pool = WorkerPool([Worker("a", 0.6, 0.0), Worker("b", 0.9, 0.0)])
        jury = select_top_k_uniform_cost(pool, 0.0)
        assert jury is not None and jury.size == 2

    def test_top_k_empty_pool(self):
        assert select_top_k_uniform_cost(WorkerPool(), 1.0).size == 0

    def test_top_k_is_actually_optimal(self, rng):
        """Cross-check the Lemma-2 shortcut against brute force."""
        workers = [
            Worker(f"w{i}", float(q), 1.0)
            for i, q in enumerate(rng.uniform(0.5, 0.95, 6))
        ]
        pool = WorkerPool(workers)
        budget = 3.0
        shortcut = select_top_k_uniform_cost(pool, budget)
        best = 0.0
        for mask in range(1, 1 << 6):
            members = [workers[i] for i in range(6) if mask >> i & 1]
            if len(members) > 3:
                continue
            best = max(best, exact_jq_bv([w.quality for w in members]))
        assert exact_jq_bv(shortcut.qualities) == pytest.approx(best)

    def test_monotonicity_checkers(self):
        jury = Jury([Worker("a", 0.8), Worker("b", 0.7)])
        before, after = check_size_monotonicity(jury, Worker("c", 0.6))
        assert after >= before
        before, after = check_quality_monotonicity(jury, 1, 0.9)
        assert after >= before
        with pytest.raises(ValueError):
            check_quality_monotonicity(jury, 1, 0.6)  # decrease


class TestMVJS:
    def test_objective_is_mv(self):
        obj = mv_objective()
        jury = Jury([Worker("a", 0.9), Worker("b", 0.6), Worker("c", 0.6)])
        assert obj(jury) == pytest.approx(0.792)

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            MVJSSelector(engine="magic")

    def test_sa_engine_feasible(self, figure1_pool, rng):
        result = MVJSSelector().select(figure1_pool, 15, rng=rng)
        assert result.cost <= 15 + 1e-9
        assert result.selector == "mvjs"

    def test_size_enum_engine(self, figure1_pool, rng):
        result = MVJSSelector(engine="size-enum").select(
            figure1_pool, 15, rng=rng
        )
        assert result.cost <= 15 + 1e-9
        assert result.jury.size % 2 == 1  # odd juries only

    def test_size_enum_deterministic(self, figure1_pool):
        a = MVJSSelector(engine="size-enum").select(
            figure1_pool, 15, rng=np.random.default_rng(0)
        )
        b = MVJSSelector(engine="size-enum").select(
            figure1_pool, 15, rng=np.random.default_rng(99)
        )
        assert a.worker_ids == b.worker_ids

    def test_optjs_beats_mvjs_on_figure1(self, figure1_pool):
        """The headline system comparison on the running example."""
        for budget in (10, 15, 20):
            opt = AnnealingSelector(JQObjective()).select(
                figure1_pool, budget, rng=np.random.default_rng(1)
            )
            mv = MVJSSelector().select(
                figure1_pool, budget, rng=np.random.default_rng(1)
            )
            assert opt.jq >= mv.jq - 1e-9


class TestBudgetTable:
    def test_figure1_table(self, figure1_pool, rng):
        from repro.selection import ExhaustiveSelector

        table = budget_quality_table(
            figure1_pool, [5, 10, 15, 20], ExhaustiveSelector(JQObjective()),
            rng=rng,
        )
        assert [row.budget for row in table.rows] == [5, 10, 15, 20]
        assert [round(row.jq, 4) for row in table.rows] == [
            0.75, 0.80, 0.845, 0.8695,
        ]
        rendered = table.render()
        assert "Budget" in rendered and "84.50%" in rendered

    def test_budgets_sorted(self, figure1_pool, rng):
        from repro.selection import ExhaustiveSelector

        table = budget_quality_table(
            figure1_pool, [20, 5], ExhaustiveSelector(JQObjective()), rng=rng
        )
        assert [row.budget for row in table.rows] == [5, 20]

    def test_best_value_row(self, figure1_pool, rng):
        from repro.selection import ExhaustiveSelector

        table = budget_quality_table(
            figure1_pool, [5, 10, 15, 20], ExhaustiveSelector(JQObjective()),
            rng=rng,
        )
        # With min_gain=0.025 the provider stops at budget 15 (the
        # paper's walkthrough: 15 -> 20 buys only ~2.45%).
        assert table.best_value_row(min_gain=0.025).budget == 15
        # Demanding every last drop selects the final row.
        assert table.best_value_row(min_gain=0.0).budget == 20

    def test_empty_table_raises(self):
        from repro.selection.budget_table import BudgetQualityTable

        with pytest.raises(ValueError):
            BudgetQualityTable((), ()).best_value_row()
