"""Property-based tests for the selection layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Worker, WorkerPool
from repro.selection import (
    AnnealingSelector,
    ExhaustiveSelector,
    GreedyQualitySelector,
    GreedyRatioSelector,
    JQObjective,
)

worker_tuple = st.tuples(
    st.floats(min_value=0.5, max_value=0.95),  # quality
    st.floats(min_value=0.1, max_value=2.0),  # cost
)
small_pool = st.lists(worker_tuple, min_size=1, max_size=7)


def make_pool(specs) -> WorkerPool:
    return WorkerPool(
        Worker(f"w{i}", q, c) for i, (q, c) in enumerate(specs)
    )


@settings(max_examples=30, deadline=None)
@given(specs=small_pool, budget=st.floats(min_value=0.0, max_value=6.0))
def test_optimum_monotone_in_budget(specs, budget):
    """More budget never hurts the exhaustive optimum."""
    pool = make_pool(specs)
    selector = ExhaustiveSelector(JQObjective())
    low = selector.select(pool, budget).jq
    high = selector.select(pool, budget + 0.5).jq
    assert high >= low - 1e-9


@settings(max_examples=30, deadline=None)
@given(specs=small_pool, budget=st.floats(min_value=0.0, max_value=6.0))
def test_exhaustive_upper_bounds_heuristics(specs, budget):
    """Every heuristic's jury scores at most the exhaustive optimum
    (under the same objective) and stays within budget."""
    pool = make_pool(specs)
    objective = JQObjective()
    optimum = ExhaustiveSelector(objective).select(pool, budget).jq
    rng = np.random.default_rng(0)
    for selector in (
        AnnealingSelector(objective, epsilon=1e-3),
        GreedyQualitySelector(objective),
        GreedyRatioSelector(objective),
    ):
        result = selector.select(pool, budget, rng=rng)
        assert result.cost <= budget + 1e-9
        assert result.jq <= optimum + 1e-9


@settings(max_examples=20, deadline=None)
@given(specs=small_pool, budget=st.floats(min_value=0.5, max_value=6.0))
def test_optjs_objective_dominates_mvjs_objective(specs, budget):
    """The *optimal-under-BV* jury's BV-JQ upper-bounds the
    *optimal-under-MV* jury's MV-JQ: BV extracts at least as much from
    the best jury as MV does from its best jury (Theorem 1 lifted to
    the selection level)."""
    from repro.voting import MajorityVoting

    pool = make_pool(specs)
    bv_opt = ExhaustiveSelector(JQObjective()).select(pool, budget).jq
    mv_opt = ExhaustiveSelector(
        JQObjective(MajorityVoting())
    ).select(pool, budget).jq
    assert bv_opt >= mv_opt - 1e-9


class TestPartitionGadget:
    """The NP-hardness proof reduces PARTITION to JQ computation: a
    multiset of log-odds weights is partitionable into two equal halves
    iff some voting has R(V) = 0, i.e. iff BV ties.  The tie mass is
    observable in the exact JQ."""

    def test_partitionable_weights_create_tie_mass(self):
        # Four identical workers: phi multiset trivially partitionable
        # (2 vs 2), so votings with two zeros and two ones tie.
        from repro.quality import exact_jq_bv, vote_matrix, joint_probabilities

        q = np.full(4, 0.7)
        p0, p1 = joint_probabilities(q, 0.5)
        ties = np.isclose(p0, p1)
        votes = vote_matrix(4)
        # Exactly the C(4,2)=6 balanced votings tie.
        assert int(ties.sum()) == 6
        assert all(votes[i].sum() == 2 for i in np.flatnonzero(ties))

    def test_unpartitionable_weights_have_no_ties(self):
        from repro.quality import joint_probabilities

        # Log-odds phi = ln(q/(1-q)); choose qualities whose phis are
        # 1, 2, 4 in some unit: no subset sums to half of 7.
        import math

        def q_from_phi(phi):
            return math.exp(phi) / (1 + math.exp(phi))

        q = np.array([q_from_phi(0.1), q_from_phi(0.2), q_from_phi(0.4)])
        p0, p1 = joint_probabilities(q, 0.5)
        assert not np.any(np.isclose(p0, p1, rtol=1e-12, atol=1e-15))

    def test_tie_mass_contributes_half(self):
        """For the balanced-tie gadget, JQ = sum over non-tie votings
        of max(P0,P1) plus *half* the tie mass (Figure 3's R=0 row)."""
        from repro.quality import exact_jq_bv, joint_probabilities

        q = np.full(4, 0.7)
        p0, p1 = joint_probabilities(q, 0.5)
        ties = np.isclose(p0, p1)
        expected = float(
            np.maximum(p0, p1)[~ties].sum() + p0[ties].sum()
        )
        # max(P0,P1) on ties equals P0 there, and BV awards exactly that
        # mass (it answers 0, correct with probability P0 = P1 ... the
        # other half is lost).  So exact JQ == expected.
        assert exact_jq_bv(q) == pytest.approx(expected, abs=1e-12)
