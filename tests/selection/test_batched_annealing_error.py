"""Regression pin: the batched annealing chain on the Table-3 benchmark.

``AnnealingSelector(neighborhood="batched")`` changes the proposal
distribution (one full-neighborhood sweep per temperature instead of
the paper's one-candidate chain), so before it can be recommended the
ROADMAP asked for its *error* — the optimality gap against the
exhaustive optimum — to be evaluated on the paper's Table-3 benchmark.

Evaluated verdict (recorded in ROADMAP.md, 5 seeds x 6 budgets x 10
reps, N=11, restarts=3): the batched chain is at least as concentrated
as the sequential one — mean gap 0.067pp vs 0.238pp, 97.0% vs 93.3% of
runs in the [0, 0.01]pp bin, >3pp tail 1.0% vs 2.3%.  This suite pins
that relationship at reduced repetitions so a regression in the batched
sweep (scoring, acceptance, or feasibility filtering) fails CI.
"""

import numpy as np
import pytest

from repro.experiments.fig7 import DEFAULT_7A_BUDGETS, _gap_samples

SEEDS = (0, 7, 42)
REPS = 5
#: Per-seed tolerance (percentage points of JQ) the batched chain's
#: mean gap may exceed the sequential chain's.  The evaluation found
#: the batched chain *ahead* on aggregate; the slack absorbs individual
#: seeds where the two chains trade places without letting a broken
#: sweep (gaps of multiple points) through.
TOLERANCE_PP = 0.5


def _mean_gap_pp(neighborhood: str, seed: int) -> float:
    _, optimal, annealed = _gap_samples(
        DEFAULT_7A_BUDGETS, REPS, seed, 11, 3, neighborhood
    )
    return float(
        np.mean([max(o - a, 0.0) * 100.0 for o, a in zip(optimal, annealed)])
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_error_within_tolerance_of_sequential(seed):
    sequential = _mean_gap_pp("sequential", seed)
    batched = _mean_gap_pp("batched", seed)
    assert batched <= sequential + TOLERANCE_PP


def test_batched_gap_concentrates_near_zero():
    """Across all seeds the batched chain must keep the Table-3 shape:
    the overwhelming majority of runs land in the [0, 0.01]pp bin."""
    gaps = []
    for seed in SEEDS:
        _, optimal, annealed = _gap_samples(
            DEFAULT_7A_BUDGETS, REPS, seed, 11, 3, "batched"
        )
        gaps.extend(
            max(o - a, 0.0) * 100.0 for o, a in zip(optimal, annealed)
        )
    gaps = np.asarray(gaps)
    assert np.mean(gaps <= 0.01) >= 0.85
    assert np.mean(gaps > 3.0) <= 0.05
