"""Tests for repro.selection.annealing (Algorithms 3-4)."""

import numpy as np
import pytest

from repro.core import Worker, WorkerPool
from repro.selection import (
    AnnealingSelector,
    ExhaustiveSelector,
    JQObjective,
    anneal_subset,
)


class TestAnnealSubset:
    def test_empty_problem(self, rng):
        assert anneal_subset([], 1.0, lambda s: 0.0, rng) == ()

    def test_respects_budget(self, rng):
        costs = [1.0, 1.0, 1.0, 1.0]
        chosen = anneal_subset(
            costs, 2.0, lambda s: float(len(s)), rng, epsilon=1e-3
        )
        assert sum(costs[i] for i in chosen) <= 2.0 + 1e-9
        assert len(chosen) == 2  # objective rewards size; 2 fit

    def test_finds_obvious_optimum(self, rng):
        # One index is worth everything; it must be selected.
        costs = [1.0, 1.0, 1.0]
        objective = lambda s: (100.0 if 2 in s else 0.0) + len(s)  # noqa: E731
        chosen = anneal_subset(costs, 1.0, objective, rng, epsilon=1e-4)
        assert chosen == (2,)

    def test_track_best_never_worse_than_final(self, rng):
        costs = list(np.full(6, 1.0))
        scores = [0.1, 0.9, 0.2, 0.8, 0.3, 0.7]
        objective = lambda s: sum(scores[i] for i in s)  # noqa: E731
        best = anneal_subset(
            costs, 2.0, objective, np.random.default_rng(5), track_best=True
        )
        final = anneal_subset(
            costs, 2.0, objective, np.random.default_rng(5), track_best=False
        )
        assert objective(best) >= objective(final) - 1e-12


class TestAnnealingSelector:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AnnealingSelector(epsilon=0)
        with pytest.raises(ValueError):
            AnnealingSelector(initial_temperature=1e-9, epsilon=1e-8)
        with pytest.raises(ValueError):
            AnnealingSelector(cooling_divisor=1.0)

    def test_selects_feasible_jury(self, figure1_pool, rng):
        result = AnnealingSelector(JQObjective()).select(
            figure1_pool, 15, rng=rng
        )
        assert result.cost <= 15 + 1e-9
        assert result.jury.size >= 1

    def test_near_optimal_on_figure1(self, figure1_pool):
        """On the 7-worker pool multi-start SA should land within
        Table-3 distance (3 points) of the exhaustive optimum at every
        budget.  (A single start can hit a genuine single-swap local
        optimum: {B,F,G} at budget 10 has no feasible improving swap.)"""
        exact = ExhaustiveSelector(JQObjective())
        for budget in (5, 10, 15, 20):
            opt = exact.select(figure1_pool, budget).jq
            sa = AnnealingSelector(JQObjective(), restarts=3).select(
                figure1_pool, budget, rng=np.random.default_rng(budget)
            )
            assert sa.jq >= opt - 0.03

    def test_restart_validation(self):
        with pytest.raises(ValueError):
            AnnealingSelector(restarts=0)

    def test_unconstrained_budget_selects_everyone(self, figure1_pool, rng):
        """Lemma 1: with budget covering the pool, SA's growth moves
        admit every worker."""
        result = AnnealingSelector(JQObjective()).select(
            figure1_pool, 1000, rng=rng
        )
        assert result.jury.size == len(figure1_pool)

    def test_deterministic_given_seed(self, figure1_pool):
        a = AnnealingSelector(JQObjective()).select(
            figure1_pool, 12, rng=np.random.default_rng(3)
        )
        b = AnnealingSelector(JQObjective()).select(
            figure1_pool, 12, rng=np.random.default_rng(3)
        )
        assert a.worker_ids == b.worker_ids
        assert a.jq == b.jq

    def test_empty_pool(self, rng):
        result = AnnealingSelector(JQObjective()).select(
            WorkerPool(), 5, rng=rng
        )
        assert result.jury.size == 0

    def test_all_workers_unaffordable(self, rng):
        pool = WorkerPool([Worker("a", 0.9, 10), Worker("b", 0.8, 10)])
        result = AnnealingSelector(JQObjective()).select(pool, 1, rng=rng)
        assert result.jury.size == 0
        assert result.jq == 0.5  # prior-mode fallback

    def test_result_metadata(self, figure1_pool, rng):
        result = AnnealingSelector(JQObjective()).select(
            figure1_pool, 15, rng=rng
        )
        assert result.selector == "annealing"
        assert result.budget == 15
        assert result.evaluations > 0
        assert result.elapsed_seconds >= 0


class TestBatchedNeighborhood:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSelector(neighborhood="parallel")

    def test_batched_rejects_scalar_only_objective(self):
        class ScalarOnly:
            def __call__(self, jury):
                return 0.5

        with pytest.raises(ValueError, match="supports_batch"):
            AnnealingSelector(ScalarOnly(), neighborhood="batched")
        # The sequential chain accepts the same duck-typed objective.
        AnnealingSelector(ScalarOnly(), neighborhood="sequential")

    def test_selects_feasible_jury(self, figure1_pool, rng):
        selector = AnnealingSelector(JQObjective(), neighborhood="batched")
        result = selector.select(figure1_pool, 15, rng=rng)
        assert result.cost <= 15 + 1e-9
        assert result.jury.size > 0

    def test_unconstrained_budget_selects_everyone(self, figure1_pool, rng):
        """With the whole pool affordable, growth moves are always
        uphill under monotone BV, so the batched sweep must greedily
        reach the full jury."""
        selector = AnnealingSelector(JQObjective(), neighborhood="batched")
        result = selector.select(figure1_pool, 1e6, rng=rng)
        assert result.jury.size == len(figure1_pool)

    def test_deterministic_given_seed(self, figure1_pool):
        runs = [
            AnnealingSelector(JQObjective(), neighborhood="batched").select(
                figure1_pool, 12, rng=np.random.default_rng(99)
            )
            for _ in range(2)
        ]
        assert runs[0].worker_ids == runs[1].worker_ids
        assert runs[0].jq == runs[1].jq

    def test_near_optimal_on_figure1(self, figure1_pool):
        optimum = ExhaustiveSelector(JQObjective()).select(figure1_pool, 15)
        result = AnnealingSelector(
            JQObjective(), neighborhood="batched", restarts=2
        ).select(figure1_pool, 15, rng=np.random.default_rng(7))
        assert result.jq >= optimum.jq - 0.02

    def test_empty_pool(self, rng):
        result = AnnealingSelector(
            JQObjective(), neighborhood="batched"
        ).select(WorkerPool(()), 5, rng=rng)
        assert result.jury.size == 0
