"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import save_pool_csv


@pytest.fixture
def pool_csv(figure1_pool, tmp_path):
    path = tmp_path / "pool.csv"
    save_pool_csv(figure1_pool, path)
    return str(path)


class TestJQCommand:
    def test_bv_default(self, capsys):
        assert main(["jq", "--qualities", "0.9,0.6,0.6"]) == 0
        out = capsys.readouterr().out
        assert "0.900000" in out

    def test_mv(self, capsys):
        assert main(["jq", "--qualities", "0.9,0.6,0.6", "--strategy", "MV"]) == 0
        assert "0.792000" in capsys.readouterr().out

    def test_with_prior(self, capsys):
        assert main(["jq", "--qualities", "0.8", "--alpha", "0.9"]) == 0
        assert "0.900000" in capsys.readouterr().out

    def test_bad_quality_list(self):
        with pytest.raises(SystemExit):
            main(["jq", "--qualities", "a,b"])


class TestSelectCommand:
    def test_exhaustive(self, pool_csv, capsys):
        code = main([
            "select", "--pool", pool_csv, "--budget", "15",
            "--selector", "exhaustive",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.845000" in out
        assert "B" in out and "C" in out and "G" in out

    def test_annealing_seeded(self, pool_csv, capsys):
        code = main([
            "select", "--pool", pool_csv, "--budget", "15",
            "--selector", "annealing", "--seed", "7",
        ])
        assert code == 0
        assert "jq:" in capsys.readouterr().out


class TestTableCommand:
    def test_figure1(self, pool_csv, capsys):
        code = main([
            "table", "--pool", pool_csv, "--budgets", "5,10,15,20",
            "--selector", "exhaustive",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "75.00%" in out and "86.95%" in out


class TestFrontierCommand:
    def test_exact(self, pool_csv, capsys):
        assert main(["frontier", "--pool", pool_csv]) == 0
        out = capsys.readouterr().out
        assert "exact frontier" in out
        assert "knee" in out

    def test_sampled(self, pool_csv, capsys):
        code = main([
            "frontier", "--pool", pool_csv, "--budgets", "5,15",
            "--seed", "1",
        ])
        assert code == 0
        assert "sampled frontier" in capsys.readouterr().out


class TestSimulateAndExperiment:
    def test_simulate_pool_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "generated.csv"
        code = main([
            "simulate-pool", "--out", str(out_path),
            "--num-workers", "10", "--seed", "1",
        ])
        assert code == 0
        from repro.io import load_pool_csv

        assert len(load_pool_csv(out_path)) == 10

    def test_experiment_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "84.50%" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestEngineCommand:
    ARGS = [
        "engine", "--budget", "20", "--num-tasks", "40",
        "--num-workers", "24", "--seed", "11",
    ]

    @staticmethod
    def stable_lines(output):
        """Report lines minus the wall-clock-derived and
        run-mode-specific ones (the intake line only exists when the
        campaign was served through the async intake queue)."""
        return [
            line for line in output.splitlines()
            if "throughput" not in line and "intake" not in line
        ]

    def test_unsharded_run(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Campaign engine report" in out
        assert "sharding" not in out

    def test_sharded_run_reports_shards(self, capsys):
        assert main(self.ARGS + ["--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "sharding     : allocator:" in out
        assert "shard 3:" in out

    def test_shards_one_is_byte_identical_to_presharding(self, capsys):
        """The CLI output contract: --shards 1 produces the exact
        pre-sharding report (modulo wall clock) — e.g. no sharding
        lines may appear.  The engine-level single-shard fingerprint
        pin lives in tests/engine/test_invariants.py."""
        assert main(self.ARGS) == 0
        plain = self.stable_lines(capsys.readouterr().out)
        assert main(self.ARGS + ["--shards", "1"]) == 0
        sharded = self.stable_lines(capsys.readouterr().out)
        assert plain == sharded

    def test_shard_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--shards", "2", "--shard-policy", "rr"])

    def test_async_ingestion_matches_sync_report(self, capsys):
        """--ingestion async --parallel-shards N on a pre-submitted
        campaign must print the exact sync report (modulo wall clock):
        the deterministic-mode pin, surfaced at the CLI."""
        sharded = self.ARGS + ["--num-shards", "4"]
        assert main(sharded) == 0
        sync_out = self.stable_lines(capsys.readouterr().out)
        assert main(
            sharded + ["--ingestion", "async", "--parallel-shards", "4"]
        ) == 0
        async_out = self.stable_lines(capsys.readouterr().out)
        assert async_out == sync_out

    def test_ingestion_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--ingestion", "threaded"])
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--parallel-shards", "-1"])

    def test_nonpositive_shard_count_rejected(self):
        """--shards 0 must fail loudly, not silently run unsharded."""
        for bad in ("0", "-4"):
            with pytest.raises(SystemExit):
                main(self.ARGS + ["--shards", bad])

    def test_cache_max_entries_flag(self, capsys):
        """A tight bound on a real campaign must actually evict (the
        report only prints 'evicted' when evictions happened)."""
        assert main(self.ARGS + ["--cache-max-entries", "8"]) == 0
        out = capsys.readouterr().out
        assert "8 entries" in out and "evicted" in out

    def test_negative_cache_max_entries_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--cache-max-entries", "-5"])


class TestEngineLifecycleFlags:
    ARGS = TestEngineCommand.ARGS

    def test_num_shards_is_the_canonical_spelling(self, capsys):
        assert main(self.ARGS + ["--num-shards", "4"]) == 0
        captured = capsys.readouterr()
        assert "shard 3:" in captured.out
        assert "deprecated" not in captured.err

    def test_legacy_spellings_warn_but_work(self, capsys):
        assert main(self.ARGS + ["--shards", "4",
                                 "--shard-policy", "least-loaded"]) == 0
        captured = capsys.readouterr()
        assert "shard 3:" in captured.out
        assert "--shards is deprecated; use --num-shards" in captured.err
        assert (
            "--shard-policy is deprecated; use --routing-policy"
            in captured.err
        )

    def test_legacy_and_canonical_agree(self, capsys):
        assert main(self.ARGS + ["--num-shards", "2"]) == 0
        canonical = TestEngineCommand.stable_lines(capsys.readouterr().out)
        assert main(self.ARGS + ["--shards", "2"]) == 0
        legacy = TestEngineCommand.stable_lines(capsys.readouterr().out)
        assert canonical == legacy

    def test_sqlite_backend_requires_state_file(self, capsys):
        assert main(self.ARGS + ["--backend", "sqlite"]) == 2
        assert "--state-file" in capsys.readouterr().err

    def test_resume_requires_sqlite_backend(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_checkpoint_and_resume_round_trip(self, tmp_path, capsys):
        """Pause a campaign mid-run into SQLite, then finish it from a
        fresh CLI invocation: the union must serve every task exactly
        once."""
        state = str(tmp_path / "campaign.db")
        args = self.ARGS + ["--backend", "sqlite", "--state-file", state]
        assert main(args + ["--run-until", "20"]) == 0
        paused = capsys.readouterr().out
        assert "# paused at" in paused
        assert "--resume to continue" in paused

        assert main(["engine", "--budget", "20", "--backend", "sqlite",
                     "--state-file", state, "--resume"]) == 0
        finished = capsys.readouterr().out
        assert "# paused" not in finished
        assert "40/40 completed" in finished

    def test_fresh_run_refuses_to_clobber_a_checkpoint(self, tmp_path, capsys):
        """Forgetting --resume must not silently overwrite a paused
        campaign's state file."""
        state = str(tmp_path / "campaign.db")
        args = self.ARGS + ["--backend", "sqlite", "--state-file", state]
        assert main(args + ["--run-until", "20"]) == 0
        capsys.readouterr()
        assert main(args) == 2
        err = capsys.readouterr().err
        assert "already holds a campaign checkpoint" in err
        # The paused campaign is still resumable.
        assert main(["engine", "--budget", "20", "--backend", "sqlite",
                     "--state-file", state, "--resume"]) == 0
        assert "40/40 completed" in capsys.readouterr().out

    def test_resume_finished_campaign_reprints_report(self, tmp_path, capsys):
        state = str(tmp_path / "campaign.db")
        args = self.ARGS + ["--backend", "sqlite", "--state-file", state]
        assert main(args) == 0
        first = TestEngineCommand.stable_lines(capsys.readouterr().out)
        assert main(["engine", "--budget", "20", "--backend", "sqlite",
                     "--state-file", state, "--resume"]) == 0
        second = TestEngineCommand.stable_lines(capsys.readouterr().out)
        assert first == second

    def test_cache_file_exports_then_warms(self, tmp_path, capsys):
        cache = str(tmp_path / "warm.json")
        assert main(self.ARGS + ["--cache-file", cache]) == 0
        out = capsys.readouterr().out
        assert "# exported JQ cache:" in out
        assert "# warmed" not in out

        assert main(["engine", "--budget", "20", "--num-tasks", "40",
                     "--num-workers", "24", "--seed", "12",
                     "--cache-file", cache]) == 0
        out = capsys.readouterr().out
        assert "# warmed JQ cache:" in out

    def test_quantization_auto_and_exact(self, capsys):
        assert main(self.ARGS + ["--quantization", "auto"]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--quantization", "0"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--quantization", "fine"])


class TestEngineKernelAndCheckpointFlags:
    ARGS = TestEngineCommand.ARGS

    def test_jq_kernel_scalar_is_byte_identical(self, capsys):
        assert main(self.ARGS) == 0
        batch = TestEngineCommand.stable_lines(capsys.readouterr().out)
        assert main(self.ARGS + ["--jq-kernel", "scalar"]) == 0
        scalar = TestEngineCommand.stable_lines(capsys.readouterr().out)
        assert batch == scalar

    def test_jq_kernel_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--jq-kernel", "gpu"])

    def test_checkpoint_every_persists_mid_run(self, tmp_path, capsys):
        """An auto-checkpointing run killed mid-campaign resumes from
        the last scheduled checkpoint — no manual checkpoint needed."""
        state = str(tmp_path / "campaign.db")
        args = self.ARGS + [
            "--backend", "sqlite", "--state-file", state,
            "--checkpoint-every", "10", "--run-until", "25",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(["engine", "--budget", "20", "--backend", "sqlite",
                     "--state-file", state, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "40/40 completed" in out

    def test_paused_report_shows_live_gauges(self, tmp_path, capsys):
        """The ROADMAP bug: paused reports used to render 'peak load 0'
        because gauges were folded in only at finish."""
        state = str(tmp_path / "campaign.db")
        args = self.ARGS + ["--backend", "sqlite", "--state-file", state]
        assert main(args + ["--run-until", "20"]) == 0
        out = capsys.readouterr().out
        assert "# paused at" in out
        assert "peak load    : 0 concurrent seats" not in out
        assert "cache        : " in out


class TestServeCommand:
    """The `repro serve` daemon: flag validation in-process; signal
    handling, checkpoint-on-shutdown, and SQLite durability against a
    real subprocess."""

    def test_sqlite_requires_state_file(self, capsys):
        assert main(["serve", "--budget", "5", "--backend", "sqlite"]) == 2
        assert "--state-file" in capsys.readouterr().err

    def test_fresh_serve_requires_budget(self, capsys):
        # --budget is only optional with --resume (the checkpoint
        # carries it); a fresh serve without it must fail cleanly.
        assert main(["serve"]) == 2
        assert "--budget is required" in capsys.readouterr().err

    def test_resume_requires_sqlite_backend(self, capsys):
        assert main(["serve", "--budget", "5", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_fresh_serve_refuses_to_clobber_a_checkpoint(
        self, tmp_path, capsys
    ):
        state = tmp_path / "campaign.db"
        assert main([
            "engine", "--budget", "3", "--num-tasks", "5",
            "--num-workers", "8", "--seed", "1",
            "--backend", "sqlite", "--state-file", str(state),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--budget", "3",
            "--backend", "sqlite", "--state-file", str(state),
        ]) == 2
        assert "already holds" in capsys.readouterr().err

    # -- subprocess lifecycle ------------------------------------------

    @staticmethod
    def _spawn(tmp_path, *extra):
        import os
        import re
        import subprocess
        import sys
        import time
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        log = tmp_path / "serve.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve",
                "--budget", "20", "--num-workers", "8",
                "--seed", "3", "--port", "0", *extra,
            ],
            stdout=open(log, "w"),
            stderr=subprocess.STDOUT,
            env=env,
        )
        url = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            text = log.read_text() if log.exists() else ""
            match = re.search(r"http://[0-9.:]+", text)
            if match:
                url = match.group()
                break
            if process.poll() is not None:
                raise AssertionError(f"serve died at startup:\n{text}")
            time.sleep(0.05)
        assert url, "serve never printed its URL"
        return process, url, log

    @staticmethod
    def _post(url, payload):
        import json
        import urllib.request

        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return json.loads(response.read())

    def test_sigint_checkpoints_and_exits_cleanly(self, tmp_path):
        import json
        import signal

        from repro.engine import Campaign, SQLiteBackend

        state = tmp_path / "campaign.db"
        metrics_out = tmp_path / "metrics.json"
        process, url, log = self._spawn(
            tmp_path,
            "--backend", "sqlite", "--state-file", str(state),
            "--vote-source", "simulated",
            "--metrics-out", str(metrics_out),
            "--metrics-interval", "0.1",
        )
        try:
            staged = self._post(url + "/tasks", {"tasks": [
                {"task_id": f"t{i}", "ground_truth": i % 2}
                for i in range(3)
            ]})
            assert staged == {"staged": 3}
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            process.kill()
        text = log.read_text()
        assert "rerun with --resume" in text
        # The periodic + shutdown flush left valid JSON behind.
        snapshot = json.loads(metrics_out.read_text())
        assert snapshot["submitted"] == 3
        # The checkpoint is durable and resumable.
        campaign = Campaign.resume(SQLiteBackend(state))
        assert campaign.metrics.submitted == 3
        campaign.close()

    def test_double_signal_force_exits_without_corrupting_sqlite(
        self, tmp_path
    ):
        import signal
        import sqlite3
        import time

        from repro.engine import Campaign, SQLiteBackend

        state = tmp_path / "campaign.db"
        process, url, log = self._spawn(
            tmp_path, "--backend", "sqlite", "--state-file", str(state)
        )
        try:
            self._post(url + "/tasks", {"tasks": [
                {"task_id": f"t{i}"} for i in range(3)
            ]})
            self._post(url + "/admin/checkpoint", {})
            process.send_signal(signal.SIGINT)
            time.sleep(0.05)
            process.send_signal(signal.SIGINT)
            returncode = process.wait(timeout=30)
        finally:
            process.kill()
        # Either the graceful path won the race (0) or the second
        # signal force-exited (130) — both must leave the durable
        # checkpoint loadable and the database physically intact.
        assert returncode in (0, 130)
        connection = sqlite3.connect(state)
        assert connection.execute(
            "PRAGMA integrity_check"
        ).fetchone()[0] == "ok"
        connection.close()
        campaign = Campaign.resume(SQLiteBackend(state))
        assert campaign.metrics.submitted == 3
        assert campaign.offers is not None
        campaign.close()
