"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import save_pool_csv


@pytest.fixture
def pool_csv(figure1_pool, tmp_path):
    path = tmp_path / "pool.csv"
    save_pool_csv(figure1_pool, path)
    return str(path)


class TestJQCommand:
    def test_bv_default(self, capsys):
        assert main(["jq", "--qualities", "0.9,0.6,0.6"]) == 0
        out = capsys.readouterr().out
        assert "0.900000" in out

    def test_mv(self, capsys):
        assert main(["jq", "--qualities", "0.9,0.6,0.6", "--strategy", "MV"]) == 0
        assert "0.792000" in capsys.readouterr().out

    def test_with_prior(self, capsys):
        assert main(["jq", "--qualities", "0.8", "--alpha", "0.9"]) == 0
        assert "0.900000" in capsys.readouterr().out

    def test_bad_quality_list(self):
        with pytest.raises(SystemExit):
            main(["jq", "--qualities", "a,b"])


class TestSelectCommand:
    def test_exhaustive(self, pool_csv, capsys):
        code = main([
            "select", "--pool", pool_csv, "--budget", "15",
            "--selector", "exhaustive",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.845000" in out
        assert "B" in out and "C" in out and "G" in out

    def test_annealing_seeded(self, pool_csv, capsys):
        code = main([
            "select", "--pool", pool_csv, "--budget", "15",
            "--selector", "annealing", "--seed", "7",
        ])
        assert code == 0
        assert "jq:" in capsys.readouterr().out


class TestTableCommand:
    def test_figure1(self, pool_csv, capsys):
        code = main([
            "table", "--pool", pool_csv, "--budgets", "5,10,15,20",
            "--selector", "exhaustive",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "75.00%" in out and "86.95%" in out


class TestFrontierCommand:
    def test_exact(self, pool_csv, capsys):
        assert main(["frontier", "--pool", pool_csv]) == 0
        out = capsys.readouterr().out
        assert "exact frontier" in out
        assert "knee" in out

    def test_sampled(self, pool_csv, capsys):
        code = main([
            "frontier", "--pool", pool_csv, "--budgets", "5,15",
            "--seed", "1",
        ])
        assert code == 0
        assert "sampled frontier" in capsys.readouterr().out


class TestSimulateAndExperiment:
    def test_simulate_pool_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "generated.csv"
        code = main([
            "simulate-pool", "--out", str(out_path),
            "--num-workers", "10", "--seed", "1",
        ])
        assert code == 0
        from repro.io import load_pool_csv

        assert len(load_pool_csv(out_path)) == 10

    def test_experiment_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "84.50%" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])
