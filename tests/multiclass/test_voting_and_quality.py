"""Tests for multiclass voting and JQ (Section 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EnumerationLimitError
from repro.multiclass import (
    ConfusionMatrix,
    MultiClassBayesianVoting,
    MultiClassWorker,
    PluralityVoting,
    RandomizedPluralityVoting,
    estimate_jq_multiclass,
    exact_jq_multiclass,
)
from repro.quality import exact_jq_bv


def quality_workers(qualities, num_labels, costs=None):
    costs = costs or [0.0] * len(qualities)
    return [
        MultiClassWorker.from_quality(f"w{i}", q, num_labels, cost=c)
        for i, (q, c) in enumerate(zip(qualities, costs))
    ]


class TestMultiClassVoting:
    def test_bv_follows_strong_worker(self):
        workers = quality_workers([0.9, 0.6, 0.6], 3)
        bv = MultiClassBayesianVoting()
        assert bv.decide((2, 0, 1), workers) == 2

    def test_bv_respects_prior(self):
        workers = quality_workers([0.55], 3)
        bv = MultiClassBayesianVoting()
        # A weak vote for label 1 against a strong prior for label 0.
        assert bv.decide((1,), workers, prior=(0.9, 0.05, 0.05)) == 0

    def test_bv_posterior_normalizes(self):
        workers = quality_workers([0.8, 0.7], 4)
        post = MultiClassBayesianVoting().posterior((1, 1), workers)
        assert post.sum() == pytest.approx(1.0)
        assert int(np.argmax(post)) == 1

    def test_plurality(self):
        workers = quality_workers([0.7] * 5, 3)
        pv = PluralityVoting()
        assert pv.decide((1, 1, 2, 0, 1), workers) == 1
        # tie 0-0 vs 2-2 -> smallest tied label
        assert pv.decide((0, 0, 2, 2), workers[:4]) == 0

    def test_randomized_plurality_distribution(self):
        workers = quality_workers([0.7] * 4, 3)
        rp = RandomizedPluralityVoting()
        dist = rp.label_distribution((0, 0, 1, 2), workers)
        assert np.allclose(dist, [0.5, 0.25, 0.25])
        with pytest.raises(ValueError):
            rp.decide((0, 0, 1, 2), workers)  # needs rng
        rng = np.random.default_rng(0)
        assert rp.decide((0, 0, 1, 2), workers, rng=rng) in (0, 1, 2)

    def test_vote_validation(self):
        workers = quality_workers([0.7, 0.8], 3)
        bv = MultiClassBayesianVoting()
        with pytest.raises(ValueError):
            bv.decide((0,), workers)  # wrong count
        with pytest.raises(ValueError):
            bv.decide((0, 3), workers)  # out of domain
        mixed = [workers[0], MultiClassWorker.from_quality("x", 0.7, 4)]
        with pytest.raises(ValueError):
            bv.decide((0, 1), mixed)  # label-count mismatch


class TestExactJQMulticlass:
    def test_binary_reduces_to_scalar_model(self, rng):
        for _ in range(10):
            q = rng.uniform(0.3, 0.95, size=4)
            workers = quality_workers(q.tolist(), 2)
            assert exact_jq_multiclass(workers) == pytest.approx(
                exact_jq_bv(q), abs=1e-12
            )

    def test_single_perfect_worker(self):
        workers = [MultiClassWorker("a", ConfusionMatrix.identity(3))]
        assert exact_jq_multiclass(workers) == pytest.approx(1.0)

    def test_uniform_worker_gives_prior_mode(self):
        workers = [MultiClassWorker("a", ConfusionMatrix.uniform(3))]
        assert exact_jq_multiclass(workers, prior=(0.5, 0.3, 0.2)) == (
            pytest.approx(0.5)
        )

    def test_bv_dominates_plurality(self, rng):
        for _ in range(10):
            q = rng.uniform(0.4, 0.9, size=4)
            workers = quality_workers(q.tolist(), 3)
            bv_jq = exact_jq_multiclass(workers)
            pl_jq = exact_jq_multiclass(workers, strategy=PluralityVoting())
            assert bv_jq >= pl_jq - 1e-9

    def test_bv_dominates_randomized_plurality(self, rng):
        q = rng.uniform(0.4, 0.9, size=4)
        workers = quality_workers(q.tolist(), 3)
        bv_jq = exact_jq_multiclass(workers)
        rp_jq = exact_jq_multiclass(
            workers, strategy=RandomizedPluralityVoting()
        )
        assert bv_jq >= rp_jq - 1e-9

    def test_enumeration_guard(self):
        workers = quality_workers([0.7] * 20, 3)
        with pytest.raises(EnumerationLimitError):
            exact_jq_multiclass(workers)

    def test_prior_validation(self):
        workers = quality_workers([0.7], 3)
        with pytest.raises(ValueError):
            exact_jq_multiclass(workers, prior=(0.5, 0.5))
        with pytest.raises(ValueError):
            exact_jq_multiclass([], prior=None)


class TestEstimateJQMulticlass:
    def test_matches_exact_small(self, rng):
        for _ in range(10):
            n = int(rng.integers(1, 5))
            q = rng.uniform(0.45, 0.9, size=n)
            workers = quality_workers(q.tolist(), 3)
            exact = exact_jq_multiclass(workers)
            approx = estimate_jq_multiclass(workers, num_buckets=300)
            assert approx == pytest.approx(exact, abs=5e-3)

    def test_structured_matrices(self, rng):
        matrices = []
        for _ in range(4):
            raw = rng.uniform(0.1, 1.0, size=(3, 3)) + 2 * np.eye(3)
            matrices.append(ConfusionMatrix(raw / raw.sum(axis=1, keepdims=True)))
        workers = [
            MultiClassWorker(f"w{i}", m) for i, m in enumerate(matrices)
        ]
        exact = exact_jq_multiclass(workers)
        approx = estimate_jq_multiclass(workers, num_buckets=400)
        assert approx == pytest.approx(exact, abs=5e-3)

    def test_binary_consistency_with_bucket(self, rng):
        q = rng.uniform(0.5, 0.9, size=6)
        workers = quality_workers(q.tolist(), 2)
        mc = estimate_jq_multiclass(workers, num_buckets=300)
        assert mc == pytest.approx(exact_jq_bv(q), abs=5e-3)

    def test_nonuniform_prior(self, rng):
        q = rng.uniform(0.5, 0.85, size=3)
        workers = quality_workers(q.tolist(), 3)
        prior = (0.6, 0.3, 0.1)
        exact = exact_jq_multiclass(workers, prior=prior)
        approx = estimate_jq_multiclass(workers, prior=prior, num_buckets=400)
        assert approx == pytest.approx(exact, abs=5e-3)

    def test_result_in_unit_interval(self, rng):
        q = rng.uniform(0.3, 0.95, size=5)
        workers = quality_workers(q.tolist(), 4)
        assert 0.0 <= estimate_jq_multiclass(workers) <= 1.0

    def test_invalid_buckets(self):
        workers = quality_workers([0.7], 3)
        with pytest.raises(ValueError):
            estimate_jq_multiclass(workers, num_buckets=0)


@settings(max_examples=25, deadline=None)
@given(
    qualities=st.lists(
        st.floats(min_value=0.4, max_value=0.9), min_size=1, max_size=4
    ),
    num_labels=st.integers(min_value=2, max_value=4),
)
def test_property_multiclass_bv_dominates_plurality(qualities, num_labels):
    """Section 7's optimality claim, property-tested."""
    workers = quality_workers(qualities, num_labels)
    bv_jq = exact_jq_multiclass(workers)
    pl_jq = exact_jq_multiclass(workers, strategy=PluralityVoting())
    assert bv_jq >= pl_jq - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    qualities=st.lists(
        st.floats(min_value=0.45, max_value=0.9), min_size=1, max_size=4
    ),
    extra=st.floats(min_value=0.45, max_value=0.9),
)
def test_property_multiclass_lemma1(qualities, extra):
    """Lemma 1 extends to the multiclass model (Section 7)."""
    before = exact_jq_multiclass(quality_workers(qualities, 3))
    after = exact_jq_multiclass(quality_workers(qualities + [extra], 3))
    assert after >= before - 1e-9
