"""Tests for repro.multiclass.selection."""

import numpy as np
import pytest

from repro.multiclass import (
    MultiClassJQObjective,
    MultiClassWorker,
    select_multiclass_jury,
)


def quality_workers(qualities, num_labels=3, costs=None):
    costs = costs or [1.0] * len(qualities)
    return [
        MultiClassWorker.from_quality(f"w{i}", q, num_labels, cost=c)
        for i, (q, c) in enumerate(zip(qualities, costs))
    ]


class TestMultiClassJQObjective:
    def test_empty_jury_scores_prior_mode(self):
        workers = quality_workers([0.7, 0.8])
        assert MultiClassJQObjective(workers)(()) == pytest.approx(1 / 3)
        obj = MultiClassJQObjective(workers, prior=(0.6, 0.3, 0.1))
        assert obj(()) == pytest.approx(0.6)

    def test_counts_evaluations(self):
        workers = quality_workers([0.7, 0.8])
        obj = MultiClassJQObjective(workers)
        obj((0,))
        obj((0, 1))
        assert obj.evaluations == 2

    def test_empty_worker_list_rejected(self):
        with pytest.raises(ValueError):
            MultiClassJQObjective([])


class TestSelectMulticlassJury:
    def test_whole_pool_shortcut(self, rng):
        workers = quality_workers([0.7, 0.8, 0.6], costs=[1, 1, 1])
        result = select_multiclass_jury(workers, budget=10, rng=rng)
        assert result.indices == (0, 1, 2)
        assert result.cost == 3.0

    def test_budget_respected(self, rng):
        workers = quality_workers(
            [0.9, 0.8, 0.7, 0.6], costs=[2.0, 1.5, 1.0, 0.5]
        )
        result = select_multiclass_jury(
            workers, budget=2.0, rng=rng, epsilon=1e-4
        )
        assert result.cost <= 2.0 + 1e-9
        assert len(result.indices) >= 1

    def test_prefers_better_workers(self, rng):
        workers = quality_workers([0.95, 0.5, 0.5], costs=[1.0, 1.0, 1.0])
        result = select_multiclass_jury(
            workers, budget=1.0, rng=rng, epsilon=1e-4
        )
        assert result.indices == (0,)
        assert result.jq > 0.9

    def test_negative_budget_rejected(self, rng):
        with pytest.raises(ValueError):
            select_multiclass_jury(quality_workers([0.7]), -1, rng=rng)

    def test_worker_ids_align(self, rng):
        workers = quality_workers([0.9, 0.8], costs=[1, 1])
        result = select_multiclass_jury(workers, budget=10, rng=rng)
        assert result.worker_ids == ("w0", "w1")
