"""Tests for repro.multiclass.confusion."""

import numpy as np
import pytest

from repro.core import ConfusionMatrixError, InvalidCostError
from repro.multiclass import ConfusionMatrix, MultiClassWorker


class TestConfusionMatrix:
    def test_valid_matrix(self):
        cm = ConfusionMatrix([[0.8, 0.2], [0.3, 0.7]])
        assert cm.num_labels == 2
        assert cm.prob(0, 0) == pytest.approx(0.8)
        assert cm.prob(1, 0) == pytest.approx(0.3)

    def test_rejects_non_square(self):
        with pytest.raises(ConfusionMatrixError):
            ConfusionMatrix([[0.5, 0.5]])

    def test_rejects_non_stochastic(self):
        with pytest.raises(ConfusionMatrixError):
            ConfusionMatrix([[0.8, 0.3], [0.3, 0.7]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfusionMatrixError):
            ConfusionMatrix([[1.2, -0.2], [0.3, 0.7]])

    def test_rejects_single_label(self):
        with pytest.raises(ConfusionMatrixError):
            ConfusionMatrix([[1.0]])

    def test_from_quality(self):
        cm = ConfusionMatrix.from_quality(0.7, 3)
        assert np.allclose(np.diag(cm.matrix), 0.7)
        assert cm.prob(0, 1) == pytest.approx(0.15)
        assert cm.diagonal_quality == pytest.approx(0.7)

    def test_from_quality_binary_matches_scalar_model(self):
        cm = ConfusionMatrix.from_quality(0.8, 2)
        assert cm.prob(0, 0) == pytest.approx(0.8)
        assert cm.prob(0, 1) == pytest.approx(0.2)

    def test_identity_and_uniform(self):
        assert ConfusionMatrix.identity(3).diagonal_quality == 1.0
        u = ConfusionMatrix.uniform(4)
        assert np.allclose(u.matrix, 0.25)

    def test_matrix_is_read_only(self):
        cm = ConfusionMatrix.from_quality(0.7, 2)
        with pytest.raises(ValueError):
            cm.matrix[0, 0] = 0.9

    def test_smoothed(self):
        cm = ConfusionMatrix.identity(3)
        assert cm.min_entry == 0.0
        smoothed = cm.smoothed(1e-3)
        assert smoothed.min_entry > 0.0
        assert np.allclose(smoothed.matrix.sum(axis=1), 1.0)
        with pytest.raises(ValueError):
            cm.smoothed(0.0)

    def test_equality_and_hash(self):
        a = ConfusionMatrix.from_quality(0.7, 2)
        b = ConfusionMatrix.from_quality(0.7, 2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != ConfusionMatrix.from_quality(0.8, 2)


class TestMultiClassWorker:
    def test_construction(self):
        w = MultiClassWorker.from_quality("a", 0.8, 3, cost=2.0)
        assert w.num_labels == 3
        assert w.cost == 2.0

    def test_validation(self):
        cm = ConfusionMatrix.from_quality(0.7, 2)
        with pytest.raises(ValueError):
            MultiClassWorker("", cm)
        with pytest.raises(TypeError):
            MultiClassWorker("a", np.eye(2))  # type: ignore[arg-type]
        with pytest.raises(InvalidCostError):
            MultiClassWorker("a", cm, cost=-1)
