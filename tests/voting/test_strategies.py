"""Tests for the binary voting strategies (repro.voting)."""

import numpy as np
import pytest

from repro.voting import (
    BayesianVoting,
    HalfVoting,
    MajorityVoting,
    RandomBallotVoting,
    RandomizedMajorityVoting,
    RandomizedWeightedMajorityVoting,
    TriadicConsensus,
    WeightedMajorityVoting,
    all_strategies,
    available_strategies,
    log_odds_weight,
    make_strategy,
    posterior_zero,
    register_strategy,
)

Q3 = np.array([0.9, 0.6, 0.6])


class TestMajorityVoting:
    def test_strict_majority(self):
        mv = MajorityVoting()
        assert mv.decide((0, 0, 1), Q3) == 0
        assert mv.decide((1, 1, 0), Q3) == 1
        assert mv.decide((0, 0, 0), Q3) == 0

    def test_even_tie_goes_to_one(self):
        mv = MajorityVoting()
        q = np.array([0.7, 0.7])
        assert mv.decide((0, 1), q) == 1

    def test_prob_zero_is_indicator(self):
        mv = MajorityVoting()
        assert mv.prob_zero((0, 0, 1), Q3) == 1.0
        assert mv.prob_zero((1, 1, 0), Q3) == 0.0

    def test_ignores_qualities(self):
        mv = MajorityVoting()
        assert mv.decide((0, 1, 1), Q3) == 1  # high-quality 0 outvoted


class TestHalfVoting:
    def test_tie_goes_to_zero(self):
        q = np.array([0.7, 0.7])
        assert HalfVoting().decide((0, 1), q) == 0

    def test_agrees_with_mv_on_odd(self):
        mv, half = MajorityVoting(), HalfVoting()
        for votes in [(0, 0, 1), (1, 1, 0), (1, 0, 1)]:
            assert mv.decide(votes, Q3) == half.decide(votes, Q3)


class TestBayesianVoting:
    def test_follows_high_quality_worker(self):
        # Example 3: worker 1 (q=0.9) outweighs two q=0.6 workers.
        bv = BayesianVoting()
        assert bv.decide((0, 1, 1), Q3) == 0
        assert bv.decide((1, 0, 0), Q3) == 1

    def test_tie_goes_to_zero(self):
        bv = BayesianVoting()
        q = np.array([0.7, 0.7])
        assert bv.decide((0, 1), q) == 0  # P0 == P1 -> 0 per Theorem 1

    def test_prior_shifts_decision(self):
        bv = BayesianVoting()
        q = np.array([0.6])
        assert bv.decide((1,), q, alpha=0.5) == 1
        # A strong prior for 0 overrides a single weak "yes" vote:
        # 0.9 * 0.4 > 0.1 * 0.6.
        assert bv.decide((1,), q, alpha=0.9) == 0

    def test_posterior_sums_to_one(self):
        bv = BayesianVoting()
        p0, p1 = bv.posterior((0, 1, 1), Q3, 0.3)
        assert p0 + p1 == pytest.approx(1.0)
        assert 0.0 <= p0 <= 1.0

    def test_posterior_zero_matches_bayes_by_hand(self):
        # alpha=0.5, q=(0.9,0.6,0.6), V=(1,0,0):
        # P0 = .5 * .1 * .6 * .6 = .018 ; P1 = .5 * .9 * .4 * .4 = .072
        p0 = posterior_zero((1, 0, 0), Q3, 0.5)
        assert p0 == pytest.approx(0.018 / 0.090)

    def test_infallible_worker_dominates(self):
        bv = BayesianVoting()
        q = np.array([1.0, 0.6, 0.6])
        assert bv.decide((0, 1, 1), q) == 0
        assert bv.decide((1, 0, 0), q) == 1

    def test_low_quality_worker_is_flipped_evidence(self):
        bv = BayesianVoting()
        q = np.array([0.1])  # votes 1 -> evidence for 0
        assert bv.decide((1,), q) == 0
        assert bv.decide((0,), q) == 1

    def test_extreme_priors(self):
        bv = BayesianVoting()
        q = np.array([0.8])
        assert bv.decide((1,), q, alpha=1.0) == 0
        assert bv.decide((0,), q, alpha=0.0) == 1


class TestRandomizedStrategies:
    def test_rmv_vote_share(self):
        rmv = RandomizedMajorityVoting()
        assert rmv.prob_zero((0, 0, 1), Q3) == pytest.approx(2 / 3)
        assert rmv.prob_zero((1, 1, 1), Q3) == 0.0

    def test_rbv_always_half(self):
        rbv = RandomBallotVoting()
        assert rbv.prob_zero((0, 0, 0), Q3) == 0.5
        assert rbv.prob_zero((1, 1, 1), Q3) == 0.5

    def test_randomized_decide_needs_rng(self):
        rmv = RandomizedMajorityVoting()
        with pytest.raises(ValueError, match="rng"):
            rmv.decide((0, 1, 1), Q3)
        # Degenerate cases decide without an rng.
        assert rmv.decide((0, 0, 0), Q3) == 0
        assert rmv.decide((1, 1, 1), Q3) == 1

    def test_randomized_decide_samples(self, rng):
        rmv = RandomizedMajorityVoting()
        draws = [rmv.decide((0, 0, 1), Q3, rng=rng) for _ in range(2000)]
        assert np.mean([d == 0 for d in draws]) == pytest.approx(2 / 3, abs=0.05)


class TestWeightedStrategies:
    def test_wmv_weights_by_quality(self):
        wmv = WeightedMajorityVoting()
        q = np.array([0.9, 0.55, 0.56])
        # zero side weight .9 > one side .55+.56=1.11? No: 1.11 > 0.9 -> 1
        assert wmv.decide((0, 1, 1), q) == 1
        q = np.array([0.95, 0.4, 0.4])
        assert wmv.decide((0, 1, 1), q) == 0

    def test_wmv_log_odds_equals_bv_at_flat_prior(self, rng):
        wmv = WeightedMajorityVoting(log_odds_weight)
        bv = BayesianVoting()
        for _ in range(50):
            q = rng.uniform(0.5, 0.95, size=5)
            votes = tuple(rng.integers(0, 2, size=5).tolist())
            assert wmv.decide(votes, q) == bv.decide(votes, q)

    def test_rwmv_weight_share(self):
        rwmv = RandomizedWeightedMajorityVoting()
        q = np.array([0.8, 0.2])
        assert rwmv.prob_zero((0, 1), q) == pytest.approx(0.8)

    def test_rwmv_zero_total_weight(self):
        rwmv = RandomizedWeightedMajorityVoting(lambda q: 0.0)
        assert rwmv.prob_zero((0, 1), np.array([0.7, 0.7])) == 0.5


class TestTriadicConsensus:
    def test_unanimous(self):
        tc = TriadicConsensus()
        assert tc.prob_zero((0, 0, 0), Q3) == pytest.approx(1.0)
        assert tc.prob_zero((1, 1, 1), Q3) == pytest.approx(0.0)

    def test_single_vote(self):
        tc = TriadicConsensus()
        assert tc.prob_zero((0,), np.array([0.7])) == 1.0

    def test_majority_of_three(self):
        tc = TriadicConsensus()
        # One triad, majority 0.
        assert tc.prob_zero((0, 0, 1), Q3) == pytest.approx(1.0)

    def test_probability_in_unit_interval(self, rng):
        tc = TriadicConsensus()
        for n in (2, 4, 5, 7):
            q = np.full(n, 0.7)
            votes = tuple(rng.integers(0, 2, size=n).tolist())
            p = tc.prob_zero(votes, q)
            assert 0.0 <= p <= 1.0

    def test_monotone_in_zero_count(self):
        tc = TriadicConsensus()
        q = np.full(5, 0.7)
        probs = [
            tc.prob_zero(tuple([0] * k + [1] * (5 - k)), q)
            for k in range(6)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))


class TestVoteValidation:
    @pytest.mark.parametrize("strategy", all_strategies())
    def test_rejects_bad_votes(self, strategy):
        with pytest.raises(ValueError):
            strategy.prob_zero((0, 2, 1), Q3)
        with pytest.raises(ValueError):
            strategy.prob_zero((0, 1), Q3)
        with pytest.raises(ValueError):
            strategy.prob_zero((), np.array([]))


class TestRegistry:
    def test_known_strategies_present(self):
        names = available_strategies()
        for expected in ("MV", "BV", "RMV", "RBV", "WMV", "RWMV", "TRIADIC"):
            assert expected in names

    def test_make_strategy_case_insensitive(self):
        assert isinstance(make_strategy("bv"), BayesianVoting)
        assert isinstance(make_strategy("MV"), MajorityVoting)

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            make_strategy("nope")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_strategy("MV", MajorityVoting)

    def test_all_strategies_instantiates_everything(self):
        strategies = all_strategies()
        assert len(strategies) == len(available_strategies())
        deterministic = {s.name for s in strategies if s.is_deterministic}
        assert {"MV", "BV", "HALF", "WMV"} <= deterministic
