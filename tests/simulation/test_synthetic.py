"""Tests for repro.simulation.synthetic (the Section-6.1.1 generator)."""

import numpy as np
import pytest

from repro.simulation import (
    SyntheticPoolConfig,
    generate_costs,
    generate_jury_qualities,
    generate_pool,
    generate_qualities,
)


class TestConfig:
    def test_defaults_match_paper(self):
        c = SyntheticPoolConfig()
        assert c.num_workers == 50
        assert c.quality_mean == 0.7
        assert c.quality_var == 0.05
        assert c.cost_mean == 0.05
        assert c.cost_sd == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticPoolConfig(num_workers=0)
        with pytest.raises(ValueError):
            SyntheticPoolConfig(quality_var=-1)
        with pytest.raises(ValueError):
            SyntheticPoolConfig(quality_floor=0.8, quality_ceiling=0.5)


class TestGenerators:
    def test_qualities_clipped(self, rng):
        q = generate_qualities(5000, 0.7, 0.05, rng)
        assert q.min() >= 0.0 and q.max() <= 1.0
        assert float(q.mean()) == pytest.approx(0.7, abs=0.02)

    def test_quality_floor_ceiling(self, rng):
        q = generate_qualities(1000, 0.5, 0.05, rng, floor=0.5, ceiling=0.9)
        assert q.min() >= 0.5 and q.max() <= 0.9

    def test_costs_folded_not_clipped(self, rng):
        c = generate_costs(5000, 0.05, 0.2, rng)
        assert c.min() > 0.0  # folding leaves ~no exact zeros
        # folded-normal mean for mu=0.05, sd=0.2 is ~0.167
        assert float(c.mean()) == pytest.approx(0.167, abs=0.02)

    def test_pool_structure(self, rng):
        pool = generate_pool(SyntheticPoolConfig(num_workers=20), rng)
        assert len(pool) == 20
        assert len({w.worker_id for w in pool}) == 20

    def test_pool_defaults(self, rng):
        pool = generate_pool(rng=rng)
        assert len(pool) == 50

    def test_deterministic_with_seed(self):
        a = generate_pool(rng=np.random.default_rng(1))
        b = generate_pool(rng=np.random.default_rng(1))
        assert a == b

    def test_jury_qualities_shape(self, rng):
        q = generate_jury_qualities(11, rng=rng)
        assert q.shape == (11,)
