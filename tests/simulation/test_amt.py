"""Tests for the simulated AMT platform and sentiment corpus."""

import numpy as np
import pytest

from repro.simulation import (
    AMTConfig,
    AMTSimulator,
    Tweet,
    generate_corpus,
)


@pytest.fixture(scope="module")
def campaign():
    """One full default campaign, shared across this module (slow-ish)."""
    return AMTSimulator(rng=np.random.default_rng(42)).run()


class TestSentimentCorpus:
    def test_size_and_balance(self, rng):
        tweets = generate_corpus(600, rng=rng)
        assert len(tweets) == 600
        positives = sum(t.is_positive for t in tweets)
        assert 250 <= positives <= 350  # ~50/50

    def test_to_task(self):
        t = Tweet("tw-1", "text", "Apple", True)
        task = t.to_task()
        assert task.ground_truth == 1
        assert task.prior == 0.5
        assert "text" in task.question

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_corpus(0, rng=rng)
        with pytest.raises(ValueError):
            generate_corpus(10, positive_fraction=1.5, rng=rng)


class TestAMTConfig:
    def test_defaults_match_paper(self):
        c = AMTConfig()
        assert c.num_workers == 128
        assert c.num_tasks == 600
        assert c.questions_per_hit == 20
        assert c.assignments_per_hit == 20
        assert c.num_hits == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            AMTConfig(num_tasks=601)
        with pytest.raises(ValueError):
            AMTConfig(num_workers=10, assignments_per_hit=20)


class TestCampaignCalibration:
    """The campaign must reproduce the paper's published statistics
    (Section 6.2.1)."""

    def test_every_hit_has_m_distinct_workers(self, campaign):
        for hit in campaign.hits:
            assert len(hit.worker_ids) == 20
            assert len(set(hit.worker_ids)) == 20

    def test_total_answers(self, campaign):
        # 600 tasks x 20 assignments = 12,000 answers.
        assert len(campaign.answers) == 12_000

    def test_participation_profile(self, campaign):
        stats = campaign.participation_summary()
        assert stats["num_workers"] == 128
        assert stats["mean_answers_per_worker"] == pytest.approx(93.75)
        assert stats["workers_answering_everything"] == 2
        assert stats["workers_with_single_hit"] == 67

    def test_quality_profile(self, campaign):
        stats = campaign.participation_summary()
        assert stats["mean_quality"] == pytest.approx(0.71, abs=0.05)
        assert 25 <= stats["workers_above_080"] <= 55

    def test_vote_order_complete(self, campaign):
        for task_id, order in campaign.vote_order.items():
            assert len(order) == 20
            workers = [w for w, _ in order]
            assert len(set(workers)) == 20

    def test_ground_truth_complete(self, campaign):
        truth = campaign.ground_truth()
        assert len(truth) == 600
        assert set(truth.values()) <= {0, 1}

    def test_estimated_qualities_correlate_with_latent(self, campaign):
        estimated = campaign.estimated_qualities()
        latent = campaign.latent_qualities
        common = sorted(set(estimated) & set(latent))
        est = np.array([estimated[w] for w in common])
        lat = np.array([latent[w] for w in common])
        assert np.corrcoef(est, lat)[0, 1] > 0.7

    def test_candidate_pool(self, campaign):
        pool = campaign.candidate_pool(
            "tweet-0000", rng=np.random.default_rng(0)
        )
        assert len(pool) == 20
        assert all(w.cost >= 0 for w in pool)
        limited = campaign.candidate_pool(
            "tweet-0000", rng=np.random.default_rng(0), limit=5
        )
        assert len(limited) == 5

    def test_deterministic_given_seed(self):
        a = AMTSimulator(rng=np.random.default_rng(3)).run()
        b = AMTSimulator(rng=np.random.default_rng(3)).run()
        assert a.vote_order["tweet-0000"] == b.vote_order["tweet-0000"]

    def test_small_custom_campaign(self):
        config = AMTConfig(
            num_workers=12,
            num_tasks=40,
            questions_per_hit=10,
            assignments_per_hit=6,
        )
        campaign = AMTSimulator(config, np.random.default_rng(0)).run()
        assert len(campaign.answers) == 40 * 6
        assert campaign.config.num_hits == 4
