"""Smoke tests: the fast example scripts run end to end.

The two heavy examples (sentiment_campaign, which simulates a full
12,000-answer AMT campaign, and multiclass_moderation's 300-post EM)
are exercised indirectly by the simulation/estimation test modules and
the fig10 benchmarks; running them here would dominate suite time.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "strategy_showdown.py",
    "budget_planning.py",
    "adaptive_campaign.py",
    "engine_campaign.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reproduces_figure1():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "84.50%" in result.stdout
    assert "86.95%" in result.stdout


def test_strategy_showdown_shows_bv_optimal():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "strategy_showdown.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "<- optimal" in result.stdout
    # BV must be among the optimal-marked strategies in section 1.
    first_section = result.stdout.split("2)")[0]
    optimal_lines = [
        line for line in first_section.splitlines() if "<- optimal" in line
    ]
    assert any("BV" in line for line in optimal_lines)
