"""Tests for repro.frontier (cost-JQ Pareto frontiers)."""

import numpy as np
import pytest

from repro.core import EnumerationLimitError, Worker, WorkerPool
from repro.frontier import (
    Frontier,
    FrontierPoint,
    exact_frontier,
    sampled_frontier,
)
from repro.selection import JQObjective


class TestExactFrontier:
    def test_monotone_and_nondominated(self, figure1_pool):
        frontier = exact_frontier(figure1_pool)
        assert frontier.exact
        costs = [p.cost for p in frontier.points]
        jqs = [p.jq for p in frontier.points]
        assert costs == sorted(costs)
        assert jqs == sorted(jqs)
        # strictly increasing JQ (dominated points filtered)
        assert all(b > a for a, b in zip(jqs, jqs[1:]))

    def test_contains_figure1_optima(self, figure1_pool):
        """The Figure-1 budget rows are exactly best_under() queries."""
        frontier = exact_frontier(figure1_pool)
        for budget, jq in [(5, 0.75), (10, 0.80), (15, 0.845), (20, 0.8695)]:
            point = frontier.best_under(budget)
            assert point is not None
            assert point.jq == pytest.approx(jq, abs=1e-9)

    def test_best_under_tiny_budget(self, figure1_pool):
        frontier = exact_frontier(figure1_pool)
        assert frontier.best_under(1.9) is None  # cheapest worker costs 2

    def test_pool_size_guard(self):
        pool = WorkerPool(Worker(f"w{i}", 0.7, 1.0) for i in range(25))
        with pytest.raises(EnumerationLimitError):
            exact_frontier(pool)

    def test_knee(self, figure1_pool):
        frontier = exact_frontier(figure1_pool)
        knee = frontier.knee()
        assert knee in frontier.points
        # The knee is interior: not the very cheapest point.
        assert knee.cost > frontier.points[0].cost

    def test_knee_degenerate(self):
        with pytest.raises(ValueError):
            Frontier((), exact=True).knee()
        single = Frontier((FrontierPoint(1.0, 0.7, ("a",)),), exact=True)
        assert single.knee().cost == 1.0

    def test_render(self, figure1_pool):
        text = exact_frontier(figure1_pool).render()
        assert "Cost" in text and "%" in text


class TestSampledFrontier:
    def test_subset_of_exact_quality(self, figure1_pool, rng):
        exact = exact_frontier(figure1_pool)
        sampled = sampled_frontier(
            figure1_pool, budgets=[5, 10, 15, 20], rng=rng, restarts=3
        )
        assert not sampled.exact
        # Every sampled point is dominated-or-equal to the exact curve.
        for point in sampled.points:
            reference = exact.best_under(point.cost)
            assert reference is not None
            assert point.jq <= reference.jq + 1e-9

    def test_monotone(self, figure1_pool, rng):
        sampled = sampled_frontier(
            figure1_pool, budgets=[5, 10, 15, 20], rng=rng
        )
        jqs = [p.jq for p in sampled.points]
        assert all(b > a for a, b in zip(jqs, jqs[1:]))

    def test_objective_passthrough(self, figure1_pool, rng):
        from repro.voting import MajorityVoting

        sampled = sampled_frontier(
            figure1_pool,
            budgets=[15],
            objective=JQObjective(MajorityVoting()),
            rng=rng,
        )
        assert len(sampled.points) >= 1


class TestFrontierKernelParity:
    """The batched all-subsets kernel path must reproduce the scalar
    frontier bit-for-bit — same points, same floats, same order."""

    def _random_pool(self, rng, n):
        return WorkerPool(
            Worker(f"w{i}", float(q), float(c))
            for i, (q, c) in enumerate(
                zip(rng.random(n), rng.random(n) * 5)
            )
        )

    def test_batch_equals_scalar_lattice_path(self, rng):
        for n in (1, 2, 6, 10):
            pool = self._random_pool(rng, n)
            for alpha in (0.5, 0.31):
                batch = exact_frontier(
                    pool, JQObjective(alpha=alpha), implementation="batch"
                )
                scalar = exact_frontier(
                    pool, JQObjective(alpha=alpha), implementation="scalar"
                )
                assert batch.points == scalar.points

    def test_batch_equals_scalar_chunked_fallback(self, rng):
        """Pools above the lattice bound fall back to chunked per-jury
        kernels — still bit-identical, now mixing exact and bucket
        rows (subsets above the objective's exact cutoff)."""
        pool = self._random_pool(rng, 15)
        objective = JQObjective(exact_cutoff=9)
        batch = exact_frontier(pool, objective, implementation="batch")
        scalar = exact_frontier(
            pool, JQObjective(exact_cutoff=9), implementation="scalar"
        )
        assert batch.points == scalar.points

    def test_auto_batches_for_stock_objective(self, figure1_pool):
        auto = exact_frontier(figure1_pool)
        scalar = exact_frontier(figure1_pool, implementation="scalar")
        assert auto.points == scalar.points

    def test_evaluation_accounting_matches(self, figure1_pool):
        batch_obj = JQObjective()
        scalar_obj = JQObjective()
        exact_frontier(figure1_pool, batch_obj, implementation="batch")
        exact_frontier(figure1_pool, scalar_obj, implementation="scalar")
        assert batch_obj.evaluations == scalar_obj.evaluations

    def test_unknown_implementation_rejected(self, figure1_pool):
        with pytest.raises(ValueError):
            exact_frontier(figure1_pool, implementation="vectorized")


class _LatticeSpy(JQObjective):
    """Records what ``all_subsets`` returned, so tests can assert which
    path ``exact_frontier(implementation="auto")`` actually took."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.lattice_results = []

    def all_subsets(self, qualities):
        result = super().all_subsets(qualities)
        self.lattice_results.append(result is not None)
        return result


class TestLatticeBoundary:
    """The subset lattice caps at ``ALL_SUBSETS_MAX`` (= 14) workers:
    the 2^n jq array is the limiting allocation.  At the cap the kernel
    must run; one past it, ``implementation="auto"`` must fall back to
    the chunked per-jury path — with identical frontiers either side."""

    def _pool(self, n):
        rng = np.random.default_rng(2015)
        return WorkerPool(
            Worker(f"w{i}", float(0.55 + 0.4 * q), float(0.2 + c))
            for i, (q, c) in enumerate(
                zip(rng.random(n), rng.random(n))
            )
        )

    def test_cap_is_fourteen(self):
        from repro.quality import ALL_SUBSETS_MAX

        assert ALL_SUBSETS_MAX == 14
        objective = JQObjective()
        assert objective.all_subsets(np.full(14, 0.7)) is not None
        assert objective.all_subsets(np.full(15, 0.7)) is None

    def test_auto_at_cap_runs_the_kernel(self):
        pool = self._pool(14)
        spy = _LatticeSpy()
        auto = exact_frontier(pool, spy, implementation="auto")
        assert spy.lattice_results == [True]  # the lattice served it
        assert spy.evaluations == 2**14 - 1
        scalar = exact_frontier(
            pool, JQObjective(), implementation="scalar"
        )
        assert auto.points == scalar.points

    def test_auto_past_cap_falls_back_cleanly(self):
        pool = self._pool(15)
        spy = _LatticeSpy()
        auto = exact_frontier(pool, spy, implementation="auto")
        assert spy.lattice_results == [False]  # lattice declined...
        scalar = exact_frontier(
            pool, JQObjective(), implementation="scalar"
        )
        assert auto.points == scalar.points  # ...fallback still exact

    def test_selector_and_cache_objectives_flip_at_the_same_bound(self):
        """`JQObjective.all_subsets` (selection/base.py) and the
        engine's `CachedJQObjective.all_subsets` (engine/cache.py)
        guard on the *same* constant: both serve the dense lattice at
        ``ALL_SUBSETS_MAX`` and both decline one past it, so every
        caller switches to the streamed path at one bound."""
        from repro.engine.cache import CachedJQObjective, JQCache
        from repro.quality import ALL_SUBSETS_MAX

        at = np.full(ALL_SUBSETS_MAX, 0.7)
        past = np.full(ALL_SUBSETS_MAX + 1, 0.7)
        plain = JQObjective()
        cached = CachedJQObjective(JQCache())
        assert plain.all_subsets(at) is not None
        assert cached.all_subsets(at) is not None
        assert plain.all_subsets(past) is None
        assert cached.all_subsets(past) is None

    def test_identical_frontiers_either_side_of_the_bound(self):
        """On the last dense size (14) and the first streamed size
        (15), forcing the streamed path produces the identical frontier
        the auto path does — for the plain objective AND for the
        engine's cached objective.  (The two families are compared
        within themselves: the cache canonicalizes quality vectors
        before evaluating, so its values legitimately differ from the
        plain objective's by ulps — but each family must be internally
        path-independent.)  Scalar parity for these same pools is
        pinned by the two tests above."""
        from repro.engine.cache import CachedJQObjective, JQCache

        for n in (14, 15):
            pool = self._pool(n)
            for make_objective in (
                JQObjective,
                lambda: CachedJQObjective(JQCache()),
            ):
                auto = exact_frontier(
                    pool, make_objective(), implementation="auto"
                )
                stream = exact_frontier(
                    pool, make_objective(), implementation="stream"
                )
                assert stream.points == auto.points
