"""Edge cases and failure injection across module boundaries."""

import numpy as np
import pytest

from repro.core import Worker, WorkerPool
from repro.multiclass import (
    ConfusionMatrix,
    MultiClassWorker,
    estimate_jq_multiclass,
    exact_jq_multiclass,
)
from repro.quality import (
    estimate_jq,
    exact_jq_bv,
    jury_quality,
)
from repro.simulation import AMTConfig, AMTSimulator


class TestDegenerateQualities:
    def test_single_coin_flip_worker(self):
        assert exact_jq_bv([0.5]) == pytest.approx(0.5)
        assert estimate_jq([0.5]) == 0.5

    def test_single_perfect_worker(self):
        assert exact_jq_bv([1.0]) == pytest.approx(1.0)
        assert estimate_jq([1.0]) == 1.0

    def test_single_always_wrong_worker(self):
        """q=0 is as good as q=1 for BV (flip reinterpretation)."""
        assert exact_jq_bv([0.0]) == pytest.approx(1.0)

    def test_mixed_perfect_and_noise(self):
        assert exact_jq_bv([1.0, 0.5, 0.5]) == pytest.approx(1.0)

    def test_contradicting_perfect_workers(self):
        """Two infallible workers: the contradictory votings have
        probability zero; JQ stays 1."""
        assert exact_jq_bv([1.0, 1.0]) == pytest.approx(1.0)

    def test_all_zero_quality_jury(self):
        """Everyone always wrong = everyone always right, flipped."""
        assert exact_jq_bv([0.0, 0.0, 0.0]) == pytest.approx(
            exact_jq_bv([1.0, 1.0, 1.0])
        )

    def test_extreme_priors_dominate(self):
        assert exact_jq_bv([0.6, 0.6], alpha=1.0) == pytest.approx(1.0)
        assert exact_jq_bv([0.6, 0.6], alpha=0.0) == pytest.approx(1.0)

    def test_n_equals_one_bucket(self):
        assert estimate_jq([0.73], num_buckets=1) == pytest.approx(0.73)


class TestFacadeBoundaries:
    def test_exact_cutoff_boundary(self):
        from repro.quality import EXACT_BV_CUTOFF

        q_at = np.full(EXACT_BV_CUTOFF, 0.7)
        q_above = np.full(EXACT_BV_CUTOFF + 1, 0.7)
        at = jury_quality(q_at)
        above = jury_quality(q_above)
        # Both paths work; and more workers never hurt (Lemma 1),
        # modulo the estimator's sub-1% error.
        assert above >= at - 0.01

    def test_method_exact_overrides_size_heuristic(self):
        q = np.full(16, 0.7)
        exact = jury_quality(q, method="exact")
        bucket = jury_quality(q, method="bucket", num_buckets=400)
        assert exact == pytest.approx(bucket, abs=1e-3)


class TestMulticlassDegenerates:
    def test_near_singular_confusion(self):
        """Rows concentrated on one vote regardless of truth: the
        worker is uninformative and JQ falls to the prior mode."""
        matrix = ConfusionMatrix([[0.99, 0.01], [0.99, 0.01]])
        worker = MultiClassWorker("stuck", matrix)
        assert exact_jq_multiclass([worker]) == pytest.approx(0.5, abs=1e-9)

    def test_zero_entry_confusion_exact(self):
        matrix = ConfusionMatrix([[1.0, 0.0], [0.0, 1.0]])
        worker = MultiClassWorker("perfect", matrix)
        assert exact_jq_multiclass([worker]) == pytest.approx(1.0)

    def test_zero_entry_confusion_bucketed(self):
        """Infinite log-ratios saturate instead of overflowing."""
        matrix = ConfusionMatrix([[1.0, 0.0], [0.0, 1.0]])
        worker = MultiClassWorker("perfect", matrix)
        assert estimate_jq_multiclass([worker]) == pytest.approx(1.0)

    def test_smoothing_recovers_estimator_accuracy(self):
        sharp = ConfusionMatrix([[0.999, 0.001], [0.001, 0.999]])
        worker = MultiClassWorker("sharp", sharp.smoothed(1e-4))
        exact = exact_jq_multiclass([worker])
        approx = estimate_jq_multiclass([worker], num_buckets=400)
        assert approx == pytest.approx(exact, abs=1e-3)


class TestCampaignEdges:
    def test_candidate_pool_skips_unknown_qualities(self):
        config = AMTConfig(
            num_workers=12, num_tasks=20, questions_per_hit=10,
            assignments_per_hit=6,
        )
        campaign = AMTSimulator(config, np.random.default_rng(0)).run()
        task_id = sorted(campaign.tasks)[0]
        # Provide qualities for only a subset of workers.
        partial = dict(
            list(campaign.estimated_qualities().items())[:3]
        )
        pool = campaign.candidate_pool(
            task_id, partial, rng=np.random.default_rng(0)
        )
        assert all(w.worker_id in partial for w in pool)

    def test_empty_pool_operations(self):
        pool = WorkerPool()
        assert pool.total_cost == 0.0
        assert len(pool.sorted_by_quality()) == 0
        assert len(pool.affordable(10)) == 0
