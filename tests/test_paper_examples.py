"""End-to-end checks against every number the paper states in prose.

These are the repository's ground-truth anchors: if any of them fails,
the reproduction has drifted from the paper.
"""

import numpy as np
import pytest

from repro import OptimalJurySelectionSystem, Worker, WorkerPool
from repro.quality import (
    estimate_jq,
    exact_jq,
    exact_jq_bv,
    exact_jq_mv,
    jury_quality,
    paper_default_bound,
)
from repro.voting import BayesianVoting, MajorityVoting, make_strategy


class TestIntroductionNumbers:
    def test_jury_bef_mv(self):
        """Page 1: jury {B, E, F} = (0.7, 0.6, 0.6) has MV probability
        0.7*0.6*0.6 + 0.7*0.6*0.4 + 0.7*0.4*0.6 + 0.3*0.6*0.6 = 69.6%."""
        assert exact_jq_mv([0.7, 0.6, 0.6]) == pytest.approx(0.696)


class TestExample2And3:
    def test_mv_is_79_2(self):
        assert exact_jq([0.9, 0.6, 0.6], MajorityVoting()) == pytest.approx(
            0.792
        )

    def test_bv_is_90(self):
        assert exact_jq_bv([0.9, 0.6, 0.6]) == pytest.approx(0.90)

    def test_bv_beats_mv_by_10_8_points(self):
        gap = exact_jq_bv([0.9, 0.6, 0.6]) - exact_jq_mv([0.9, 0.6, 0.6])
        assert gap == pytest.approx(0.108)

    def test_example3_voting_011(self):
        """Page 5: V = (0, 1, 1) with q = (0.9, 0.6, 0.6): BV returns 0
        because 0.5*0.9*0.4*0.4 > 0.5*0.1*0.6*0.6; MV returns 1."""
        bv, mv = BayesianVoting(), MajorityVoting()
        q = [0.9, 0.6, 0.6]
        assert bv.decide((0, 1, 1), q) == 0
        assert mv.decide((0, 1, 1), q) == 1


class TestFigure1Table:
    BUDGET_ROWS = {
        5: (0.75, 5),
        10: (0.80, None),  # several 80% juries exist; cost may differ
        15: (0.845, 14),
        20: (0.8695, 20),
    }

    def test_all_rows(self, figure1_pool):
        system = OptimalJurySelectionSystem(figure1_pool, seed=7)
        for budget, (jq, required) in self.BUDGET_ROWS.items():
            result = system.select_jury(budget)
            assert result.jq == pytest.approx(jq, abs=1e-9), budget
            if required is not None:
                assert result.cost == pytest.approx(required), budget

    def test_paper_jury_identities(self, figure1_pool):
        """The juries named in Figure 1 achieve the stated JQs."""
        assert exact_jq_bv([0.6, 0.75]) == pytest.approx(0.75)  # {F,G}
        assert exact_jq_bv([0.8, 0.75]) == pytest.approx(0.80)  # {C,G}
        assert exact_jq_bv([0.7, 0.8, 0.75]) == pytest.approx(0.845)  # {B,C,G}
        assert exact_jq_bv([0.77, 0.8, 0.6, 0.75]) == pytest.approx(
            0.8695
        )  # {A,C,F,G}

    def test_marginal_gain_15_to_20(self):
        """Page 2: raising the budget from 15 to 20 buys ~2.5%."""
        gain = 0.8695 - 0.845
        assert gain == pytest.approx(0.0245, abs=1e-4)


class TestSection44Bound:
    def test_d200_bound(self):
        """Setting d >= 200 bounds the error by 0.627% < 1%."""
        assert paper_default_bound(200) == pytest.approx(0.00627, abs=1e-4)

    def test_phi_099_below_5(self):
        """Section 4.4 assumes phi(0.99) < 5."""
        from repro.quality import log_odds

        assert log_odds(0.99) < 5.0


class TestJuryQualityFacade:
    def test_auto_dispatch(self, example2_qualities):
        assert jury_quality(example2_qualities) == pytest.approx(0.9)
        assert jury_quality(
            example2_qualities, MajorityVoting()
        ) == pytest.approx(0.792)
        assert jury_quality(
            example2_qualities, make_strategy("RBV")
        ) == pytest.approx(0.5)

    def test_bucket_method(self, example2_qualities):
        jq = jury_quality(example2_qualities, method="bucket", num_buckets=300)
        assert jq == pytest.approx(0.9, abs=1e-4)

    def test_bucket_requires_bv(self, example2_qualities):
        with pytest.raises(ValueError):
            jury_quality(example2_qualities, MajorityVoting(), method="bucket")

    def test_unknown_method(self, example2_qualities):
        with pytest.raises(ValueError):
            jury_quality(example2_qualities, method="psychic")

    def test_large_jury_auto_switches_to_bucket(self):
        q = np.full(30, 0.7)
        jq = jury_quality(q)  # would raise if it tried 2^30 enumeration
        # Reference value 0.98835 from estimate_jq at numBuckets=2000.
        assert jq == pytest.approx(0.9883, abs=1e-3)

    def test_estimate_matches_exact_on_example(self, example2_qualities):
        assert estimate_jq(
            example2_qualities, num_buckets=500
        ) == pytest.approx(exact_jq_bv(example2_qualities), abs=1e-4)
