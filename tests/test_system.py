"""Tests for the OptimalJurySelectionSystem facade."""

import numpy as np
import pytest

from repro import (
    Jury,
    OptimalJurySelectionSystem,
    Worker,
    WorkerPool,
)


class TestSelectJury:
    def test_small_pool_exact(self, figure1_pool):
        system = OptimalJurySelectionSystem(figure1_pool, seed=0)
        result = system.select_jury(15)
        assert result.jq == pytest.approx(0.845)
        assert set(result.worker_ids) == {"B", "C", "G"}

    def test_unconstrained_shortcut(self, figure1_pool):
        system = OptimalJurySelectionSystem(figure1_pool, seed=0)
        result = system.select_jury(1000)
        assert result.jury.size == 7
        assert result.selector == "special-case"

    def test_uniform_cost_shortcut(self):
        pool = WorkerPool(
            [Worker("a", 0.9, 1.0), Worker("b", 0.6, 1.0), Worker("c", 0.8, 1.0)]
        )
        system = OptimalJurySelectionSystem(pool, seed=0)
        result = system.select_jury(2.0)
        assert result.selector == "special-case"
        assert set(result.worker_ids) == {"a", "c"}

    def test_large_pool_uses_annealer(self, rng):
        workers = [
            Worker(f"w{i}", float(q), float(c))
            for i, (q, c) in enumerate(
                zip(rng.uniform(0.5, 0.9, 30), rng.uniform(0.5, 2.0, 30))
            )
        ]
        system = OptimalJurySelectionSystem(WorkerPool(workers), seed=0)
        result = system.select_jury(3.0)
        assert result.selector == "annealing"
        assert result.cost <= 3.0 + 1e-9

    def test_prior_influences_selection_quality(self, figure1_pool):
        flat = OptimalJurySelectionSystem(figure1_pool, alpha=0.5, seed=0)
        biased = OptimalJurySelectionSystem(figure1_pool, alpha=0.9, seed=0)
        # A confident prior raises the achievable JQ.
        assert biased.select_jury(5).jq >= flat.select_jury(5).jq


class TestBudgetQualityTable:
    def test_figure1_walkthrough(self, figure1_pool):
        system = OptimalJurySelectionSystem(figure1_pool, seed=0)
        table = system.budget_quality_table([5, 10, 15, 20])
        assert [round(r.jq, 4) for r in table.rows] == [
            0.75, 0.80, 0.845, 0.8695,
        ]


class TestDecide:
    def test_unanimous_yes(self, figure1_pool):
        system = OptimalJurySelectionSystem(figure1_pool, seed=0)
        jury = Jury([figure1_pool.get("B"), figure1_pool.get("C")])
        verdict = system.decide(jury, [1, 1])
        assert verdict.answer == 1
        assert verdict.confidence > 0.9

    def test_high_quality_dissenter_wins(self, figure1_pool):
        system = OptimalJurySelectionSystem(figure1_pool, seed=0)
        jury = Jury(
            [figure1_pool.get("C"), figure1_pool.get("E"), figure1_pool.get("F")]
        )
        # C (0.8) says no; E, F (0.6) say yes: 0.8*0.4*0.4 > 0.2*0.6*0.6.
        verdict = system.decide(jury, [0, 1, 1])
        assert verdict.answer == 0

    def test_confidence_is_posterior_of_answer(self, figure1_pool):
        system = OptimalJurySelectionSystem(figure1_pool, seed=0)
        jury = Jury([figure1_pool.get("C")])
        verdict = system.decide(jury, [1])
        assert verdict.answer == 1
        assert verdict.confidence == pytest.approx(0.8)
        assert verdict.posterior_zero == pytest.approx(0.2)

    def test_predicted_quality(self, figure1_pool):
        system = OptimalJurySelectionSystem(figure1_pool, seed=0)
        jury = Jury([figure1_pool.get("F"), figure1_pool.get("G")])
        assert system.predicted_quality(jury) == pytest.approx(0.75)
