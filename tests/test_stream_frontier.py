"""Streamed subset-lattice frontier (`repro.quality.stream`).

Three layers of pins:

* kernel unit behavior — guards, accounting, skyline shape;
* dense parity — for every pool size the dense lattice accepts
  (n <= ALL_SUBSETS_MAX), the streamed sweep must reproduce the
  ``all_subsets_jq_bv`` frontier bit-for-bit, exact and bucketed;
* scalar parity past the dense bound — streamed frontiers at
  n = 15-18 equal the historical one-jury-at-a-time loop.  A fast
  slice runs in tier-1; the full >= 50-pool sweep is the CI
  ``frontier-stream`` job (``REPRO_STREAM_SWEEP=1``).
"""

import os

import numpy as np
import pytest

from repro.core import EnumerationLimitError, Worker, WorkerPool
from repro.frontier import exact_frontier
from repro.quality import STREAM_MAX, streamed_frontier_jq
from repro.selection import JQObjective

SWEEP = os.environ.get("REPRO_STREAM_SWEEP") == "1"


def make_pool(rng, n, ties=False):
    qualities = 0.5 + 0.5 * rng.random(n)
    costs = 0.2 + 3.0 * rng.random(n)
    if ties:
        # Duplicate qualities and costs force JQ and cost ties — the
        # regime where a sloppy skyline rule diverges from the scalar
        # filter's tie-breaks.
        qualities[: n // 2] = qualities[0]
        costs[: n // 2] = costs[0]
    return WorkerPool(
        Worker(f"w{i}", float(q), float(c))
        for i, (q, c) in enumerate(zip(qualities, costs))
    )


# ---------------------------------------------------------------------------
# Kernel unit behavior
# ---------------------------------------------------------------------------
class TestStreamedKernel:
    def test_empty_pool(self):
        result = streamed_frontier_jq([], [])
        assert result.masks.size == 0
        assert result.evaluations == 0

    def test_single_worker(self):
        result = streamed_frontier_jq([0.8], [2.0])
        assert result.masks.tolist() == [1]
        assert result.costs.tolist() == [2.0]
        assert result.evaluations == 1

    def test_misaligned_costs_rejected(self):
        with pytest.raises(ValueError, match="align"):
            streamed_frontier_jq([0.8, 0.7], [1.0])

    def test_size_guard(self):
        n = STREAM_MAX + 1
        with pytest.raises(EnumerationLimitError):
            streamed_frontier_jq([0.7] * n, [1.0] * n)

    def test_scores_every_subset_once(self, rng):
        n = 9
        pool = make_pool(rng, n)
        result = streamed_frontier_jq(pool.qualities, pool.costs)
        assert result.evaluations == 2**n - 1

    def test_survivors_are_an_undominated_skyline(self, rng):
        pool = make_pool(rng, 10)
        result = streamed_frontier_jq(pool.qualities, pool.costs)
        # Mask-ascending by contract; and no survivor is dominated by
        # another (<= cost with >= jq, one strict).
        assert np.all(np.diff(result.masks) > 0)
        order = np.lexsort((-result.jqs, result.costs))
        costs, jqs = result.costs[order], result.jqs[order]
        best = np.maximum.accumulate(jqs)
        # Walking cost-ascending, any strictly-later entry with jq <=
        # an earlier max AND strictly higher cost would be dominated.
        for i in range(1, costs.size):
            if costs[i] > costs[i - 1]:
                assert jqs[i] > best[i - 1] - 1e-15

    def test_stream_implementation_requires_batch_objective(
        self, figure1_pool
    ):
        class ScalarOnly(JQObjective):
            supports_batch = False

        with pytest.raises(ValueError, match="batch-capable"):
            exact_frontier(
                figure1_pool, ScalarOnly(), implementation="stream"
            )


# ---------------------------------------------------------------------------
# Dense-lattice parity: every n the dense kernel accepts
# ---------------------------------------------------------------------------
class TestDenseParity:
    """`implementation="stream"` vs `implementation="batch"` (the
    all_subsets_jq_bv lattice) — identical points, identical floats."""

    # Tier-1 covers every size up to 12 — past that each dense sweep
    # costs seconds, so 13/14 ride the CI sweep (the boundary suite in
    # test_frontier.py still pins 14/15 in tier-1 once each).
    SIZES = tuple(range(1, 13)) + ((13, 14) if SWEEP else ())

    @pytest.mark.parametrize("n", SIZES)
    def test_stream_equals_dense_lattice(self, n):
        rng = np.random.default_rng(100 + n)
        for ties in (False, True):
            pool = make_pool(rng, n, ties=ties)
            for objective_kwargs in (
                {"exact_cutoff": 99},  # every level exact
                {"exact_cutoff": 5},  # bucket estimator past size 5
                {"exact_cutoff": 5, "alpha": 0.31},
            ):
                dense = exact_frontier(
                    pool,
                    JQObjective(**objective_kwargs),
                    implementation="batch",
                )
                stream = exact_frontier(
                    pool,
                    JQObjective(**objective_kwargs),
                    implementation="stream",
                )
                assert stream.points == dense.points

    def test_evaluation_accounting_matches_dense(self, figure1_pool):
        dense_obj, stream_obj = JQObjective(), JQObjective()
        exact_frontier(figure1_pool, dense_obj, implementation="batch")
        exact_frontier(figure1_pool, stream_obj, implementation="stream")
        assert stream_obj.evaluations == dense_obj.evaluations


# ---------------------------------------------------------------------------
# Scalar parity past the dense bound (n = 15-18)
# ---------------------------------------------------------------------------
def _scalar_parity_pool_ids():
    """>= 50 sampled pools across n = 15-18 for the CI sweep; a single
    n=15 pool in tier-1 (the lattice-boundary suite pins another)."""
    if not SWEEP:
        return [(15, 0)]
    cases = []
    for n, count in ((15, 20), (16, 15), (17, 10), (18, 5)):
        cases.extend((n, seed) for seed in range(count))
    return cases


class TestScalarParityPastDenseBound:
    @pytest.mark.parametrize("n,seed", _scalar_parity_pool_ids())
    def test_stream_equals_scalar(self, n, seed):
        rng = np.random.default_rng(1000 * n + seed)
        pool = make_pool(rng, n, ties=seed % 3 == 0)
        # A small exact cutoff keeps the scalar loop tractable at
        # 2^18 juries; the kernels' own exact/bucket parity is pinned
        # separately, so the *frontier* comparison loses nothing.
        objective_kwargs = {"exact_cutoff": 2, "num_buckets": 25}
        stream = exact_frontier(
            pool, JQObjective(**objective_kwargs), implementation="stream"
        )
        scalar = exact_frontier(
            pool,
            JQObjective(**objective_kwargs),
            implementation="scalar",
            max_pool=n,
        )
        assert stream.points == scalar.points
