"""Tests for the experiment plumbing (reporting + runner)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    HistogramResult,
    SweepSeries,
    collect_over_reps,
    mean_over_reps,
    spawn_rngs,
)


class TestSweepSeries:
    def test_coerces_to_float_tuple(self):
        s = SweepSeries("a", [1, 2])
        assert s.values == (1.0, 2.0)


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="figX",
            title="demo",
            x_label="x",
            xs=(1, 2, 3),
            series=(
                SweepSeries("up", (0.1, 0.2, 0.3)),
                SweepSeries("down", (0.3, 0.2, 0.1)),
            ),
            notes="unit test",
        )

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            ExperimentResult(
                "figX", "demo", "x", (1, 2), (SweepSeries("a", (1,)),)
            )

    def test_series_by_name(self):
        r = self.make()
        assert r.series_by_name("up").values == (0.1, 0.2, 0.3)
        with pytest.raises(KeyError):
            r.series_by_name("nope")

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "figX" in text
        assert "up" in text and "down" in text
        assert "0.3000" in text
        assert "unit test" in text

    def test_render_integer_formatting(self):
        text = self.make().render()
        assert " 1 " in text or "| 1" in text or "1 |" in text


class TestHistogramResult:
    def test_alignment(self):
        with pytest.raises(ValueError):
            HistogramResult("t", "demo", ("a",), (1, 2))

    def test_render_and_total(self):
        h = HistogramResult("t3", "demo", ("low", "high"), (3, 1))
        assert h.total == 4
        text = h.render()
        assert "low" in text and "3" in text and "total" in text


class TestRunner:
    def test_spawn_rngs_independent_and_reproducible(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        draws_a = [r.random() for r in a]
        draws_b = [r.random() for r in b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 3

    def test_spawn_rngs_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_mean_over_reps(self):
        value = mean_over_reps(lambda rng: 2.0, reps=5, seed=0)
        assert value == 2.0
        with pytest.raises(ValueError):
            mean_over_reps(lambda rng: 0.0, reps=0)

    def test_collect_over_reps(self):
        values = collect_over_reps(lambda rng: rng.random(), reps=4, seed=1)
        assert len(values) == 4
        assert values == collect_over_reps(
            lambda rng: rng.random(), reps=4, seed=1
        )
