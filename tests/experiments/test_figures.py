"""Integration tests: every figure driver runs (at toy scale) and its
output has the paper's qualitative shape."""

import numpy as np
import pytest

from repro.experiments import (
    FIGURE1_EXPECTED_JQ,
    run_fig1,
    run_fig6a,
    run_fig6b,
    run_fig7a,
    run_fig7b,
    run_fig8a,
    run_fig8b,
    run_fig9a,
    run_fig9b,
    run_fig9c,
    run_fig9d,
    run_fig10a,
    run_fig10d,
    run_table3,
    simulate_campaign,
)
from repro.simulation import AMTConfig, AMTSimulator


@pytest.fixture(scope="module")
def small_campaign():
    """A reduced AMT campaign for the fig10 integration tests."""
    config = AMTConfig(
        num_workers=32,
        num_tasks=60,
        questions_per_hit=10,
        assignments_per_hit=10,
    )
    return AMTSimulator(config, np.random.default_rng(5)).run()


class TestFig1:
    def test_reproduces_paper_table(self):
        table = run_fig1()
        jqs = [row.jq for row in table.rows]
        assert jqs == pytest.approx(list(FIGURE1_EXPECTED_JQ), abs=1e-9)
        assert [row.required for row in table.rows] == [5, 8, 14, 20]


class TestFig6:
    def test_optjs_dominates_mvjs(self):
        result = run_fig6a(mus=(0.6, 0.8), reps=2, seed=0, epsilon=1e-4)
        opt = result.series_by_name("OPTJS").values
        mv = result.series_by_name("MVJS").values
        assert all(o >= m - 1e-9 for o, m in zip(opt, mv))

    def test_budget_monotonicity_roughly(self):
        result = run_fig6b(budgets=(0.1, 1.0), reps=2, seed=0, epsilon=1e-4)
        opt = result.series_by_name("OPTJS").values
        assert opt[1] >= opt[0] - 0.02  # more budget, no worse


class TestFig7:
    def test_sa_close_to_optimal(self):
        result = run_fig7a(budgets=(0.1, 0.3), reps=3, seed=0)
        optimal = result.series_by_name("JQ(J*)").values
        annealed = result.series_by_name("JQ(J-hat)").values
        for o, a in zip(optimal, annealed):
            assert o >= a - 1e-9  # optimal is an upper bound
            assert o - a < 0.05  # and SA is close

    def test_fig7b_reports_positive_times(self):
        result = run_fig7b(pool_sizes=(20, 40), budgets=(0.2,), epsilon=1e-2)
        times = result.series[0].values
        assert all(t > 0 for t in times)

    def test_table3_concentrated_at_zero(self):
        hist = run_table3(budgets=(0.2, 0.4), reps=5, seed=0)
        assert hist.total == 10
        # The lion's share of runs should have (near-)zero gap.
        assert hist.counts[0] + hist.counts[1] + hist.counts[2] >= 8


class TestFig8:
    def test_bv_dominates_everywhere(self):
        result = run_fig8a(mus=(0.5, 0.7, 0.9), reps=5, seed=0)
        bv = result.series_by_name("BV").values
        for name in ("MV", "RBV", "RMV"):
            other = result.series_by_name(name).values
            assert all(b >= o - 1e-9 for b, o in zip(bv, other))

    def test_rbv_pinned_at_half(self):
        result = run_fig8a(mus=(0.5, 0.9), reps=3, seed=0)
        assert result.series_by_name("RBV").values == (0.5, 0.5)

    def test_mv_improves_with_size(self):
        result = run_fig8b(sizes=(1, 11), mu=0.7, reps=10, seed=0)
        mv = result.series_by_name("MV").values
        assert mv[1] > mv[0]

    def test_bv_robust_at_half(self):
        """Figure 8(a)'s striking point: BV stays high at mu=0.5."""
        result = run_fig8a(mus=(0.5,), reps=10, seed=0)
        assert result.series_by_name("BV").values[0] > 0.85
        assert result.series_by_name("MV").values[0] < 0.8


class TestFig9:
    def test_variance_helps_at_half(self):
        result = run_fig9a(
            mus=(0.5,), variances=(0.01, 0.10), reps=10, seed=0
        )
        low_var = result.series_by_name("var=0.01").values[0]
        high_var = result.series_by_name("var=0.1").values[0]
        assert high_var > low_var

    def test_error_shrinks_with_buckets(self):
        result = run_fig9b(bucket_counts=(5, 200), reps=20, seed=0)
        errors = result.series[0].values
        assert errors[1] <= errors[0]
        assert errors[1] < 1e-3

    def test_fig9c_errors_tiny(self):
        hist = run_fig9c(reps=50, seed=0)
        assert hist.total == 50
        # Nearly all errors below 1e-4 at numBuckets=50 (paper: max
        # error within 0.01%).
        assert sum(hist.counts[:-1]) >= 45

    def test_fig9d_pruning_is_faster(self):
        result = run_fig9d(sizes=(150,), seed=0)
        with_p = result.series_by_name("with pruning (s)").values[0]
        without_p = result.series_by_name("without pruning (s)").values[0]
        assert with_p < without_p


class TestFig10:
    def test_fig10a_runs_and_optjs_wins(self, small_campaign):
        result = run_fig10a(
            campaign=small_campaign,
            budgets=(0.4,),
            num_questions=6,
            seed=0,
        )
        opt = result.series_by_name("OPTJS").values[0]
        mv = result.series_by_name("MVJS").values[0]
        assert opt >= mv - 1e-9

    def test_fig10b_pool_limit(self, small_campaign):
        from repro.experiments import run_fig10b

        result = run_fig10b(
            campaign=small_campaign,
            pool_sizes=(3, 6),
            budget=0.4,
            num_questions=5,
            seed=0,
        )
        # Larger candidate sets cannot hurt the optimum much; allow
        # annealing noise but require the broad trend.
        opt = result.series_by_name("OPTJS").values
        assert opt[1] >= opt[0] - 0.05

    def test_fig10c_cost_sd(self, small_campaign):
        from repro.experiments import run_fig10c

        result = run_fig10c(
            campaign=small_campaign,
            cost_sds=(0.2,),
            num_questions=5,
            seed=0,
        )
        assert 0.5 <= result.series_by_name("OPTJS").values[0] <= 1.0

    def test_fig10d_jq_predicts_accuracy(self, small_campaign):
        result = run_fig10d(
            campaign=small_campaign,
            z_values=(3, 9),
            num_questions=40,
            seed=0,
        )
        predicted = result.series_by_name("Average JQ").values
        realized = result.series_by_name("Accuracy").values
        # More votes help both curves...
        assert predicted[1] >= predicted[0] - 0.02
        # ...and prediction tracks reality within a loose band.
        for p, r in zip(predicted, realized):
            assert abs(p - r) < 0.15

    def test_simulate_campaign_default(self):
        campaign = simulate_campaign(seed=1)
        assert len(campaign.tasks) == 600
