"""Tests for repro.quality.prior (Theorem 3), canonical, and bounds."""

import math

import numpy as np
import pytest

from repro.core import Jury, Worker
from repro.quality import (
    PRIOR_WORKER_ID,
    bucket_error_bound,
    buckets_for_error,
    canonicalize_qualities,
    exact_jq_bv,
    fold_prior,
    fold_prior_jury,
    paper_default_bound,
    pseudo_worker,
    reinterpret_voting,
)


class TestTheorem3:
    def test_fold_prior_appends_pseudo_worker(self):
        folded = fold_prior([0.8, 0.7], 0.3)
        assert folded.tolist() == [0.8, 0.7, 0.3]

    def test_flat_prior_is_noop(self):
        folded = fold_prior([0.8, 0.7], 0.5)
        assert folded.tolist() == [0.8, 0.7]

    def test_theorem3_identity_exact(self, rng):
        """JQ(J, BV, alpha) == JQ(J + worker(alpha), BV, 0.5)."""
        for _ in range(25):
            n = int(rng.integers(1, 8))
            q = rng.uniform(0.1, 0.95, size=n)
            alpha = float(rng.uniform(0.05, 0.95))
            lhs = exact_jq_bv(q, alpha)
            rhs = exact_jq_bv(np.append(q, alpha), 0.5)
            assert lhs == pytest.approx(rhs, abs=1e-12)

    def test_fold_prior_jury(self):
        jury = Jury([Worker("a", 0.8)])
        folded = fold_prior_jury(jury, 0.7)
        assert folded.size == 2
        assert PRIOR_WORKER_ID in folded
        assert fold_prior_jury(jury, 0.5) is jury

    def test_pseudo_worker_is_free(self):
        w = pseudo_worker(0.7)
        assert w.cost == 0.0
        assert w.quality == 0.7


class TestCanonicalization:
    def test_flips_below_half(self):
        out = canonicalize_qualities([0.3, 0.8, 0.5])
        assert np.allclose(out, [0.7, 0.8, 0.5])

    def test_jq_invariant_under_flip(self, rng):
        """JQ(J, BV) is unchanged when any worker's q becomes 1-q."""
        for _ in range(25):
            n = int(rng.integers(1, 8))
            q = rng.uniform(0.05, 0.95, size=n)
            i = int(rng.integers(n))
            flipped = q.copy()
            flipped[i] = 1.0 - flipped[i]
            assert exact_jq_bv(q) == pytest.approx(
                exact_jq_bv(flipped), abs=1e-12
            )

    def test_reinterpret_voting(self):
        votes, qualities = reinterpret_voting([1, 0, 1], [0.3, 0.8, 0.6])
        assert votes.tolist() == [0, 0, 1]
        assert np.allclose(qualities, [0.7, 0.8, 0.6])

    def test_reinterpret_shape_mismatch(self):
        with pytest.raises(ValueError):
            reinterpret_voting([1, 0], [0.5])


class TestErrorBounds:
    def test_bound_formula(self):
        q = [0.9, 0.8, 0.7]
        phis = [math.log(x / (1 - x)) for x in q]
        delta = max(phis) / 100
        expected = math.exp(3 * delta / 4) - 1
        assert bucket_error_bound(q, 100) == pytest.approx(expected)

    def test_bound_includes_prior_worker(self):
        q = [0.9, 0.8, 0.7]
        flat = bucket_error_bound(q, 100, alpha=0.5)
        informative = bucket_error_bound(q, 100, alpha=0.6)
        assert informative > flat  # n grows by one

    def test_bound_decreases_with_buckets(self):
        q = [0.9, 0.8]
        assert bucket_error_bound(q, 200) < bucket_error_bound(q, 20)

    def test_degenerate_bounds(self):
        assert bucket_error_bound([0.5, 0.5], 10) == 0.0
        assert bucket_error_bound([1.0, 0.7], 10) == math.inf

    def test_buckets_for_error_inverts_bound(self):
        q = [0.9, 0.8, 0.7]
        for target in (0.01, 0.001):
            buckets = buckets_for_error(q, target)
            assert bucket_error_bound(q, buckets) <= target + 1e-12
            if buckets > 1:
                assert bucket_error_bound(q, buckets - 1) > target

    def test_buckets_for_error_validation(self):
        with pytest.raises(ValueError):
            buckets_for_error([0.8], 0.0)
        with pytest.raises(ValueError):
            buckets_for_error([1.0], 0.01)

    def test_paper_headline_bound(self):
        """Section 4.4: d >= 200 gives error < 0.627% < 1%."""
        assert paper_default_bound(200) < 0.00627
        assert paper_default_bound(200) == pytest.approx(
            math.exp(5 / 800) - 1
        )
        with pytest.raises(ValueError):
            paper_default_bound(0)
