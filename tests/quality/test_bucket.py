"""Tests for repro.quality.bucket (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.quality import (
    bucket_error_bound,
    estimate_jq,
    estimate_jq_detailed,
    exact_jq_bv,
    log_odds,
)
from repro.quality.bucket import bucket_indices


class TestLogOdds:
    def test_values(self):
        assert log_odds(0.5) == pytest.approx(0.0)
        assert log_odds(0.9) == pytest.approx(np.log(9))
        assert log_odds(1.0) == np.inf
        assert log_odds(0.0) == -np.inf

    def test_antisymmetry(self):
        assert log_odds(0.7) == pytest.approx(-log_odds(0.3))


class TestBucketIndices:
    def test_max_phi_gets_top_bucket(self):
        phis = np.array([0.5, 1.0, 2.0])
        b, delta = bucket_indices(phis, 4)
        assert delta == pytest.approx(0.5)
        assert b[2] == 4
        assert b[1] == 2
        assert b[0] == 1

    def test_rounding_to_nearest(self):
        phis = np.array([0.24, 0.26, 1.0])
        b, delta = bucket_indices(phis, 4)  # delta = 0.25
        assert b.tolist() == [1, 1, 4]

    def test_requires_positive_phi(self):
        with pytest.raises(ValueError):
            bucket_indices(np.array([0.0, 0.0]), 4)


class TestEstimateJQ:
    def test_matches_exact_within_bound(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 12))
            q = rng.uniform(0.4, 0.95, size=n)
            exact = exact_jq_bv(q)
            approx = estimate_jq(q, num_buckets=50, high_quality_shortcut=False)
            bound = bucket_error_bound(q, 50)
            assert abs(exact - approx) <= bound + 1e-9

    def test_error_shrinks_with_buckets(self, rng):
        q = rng.uniform(0.5, 0.95, size=10)
        exact = exact_jq_bv(q)
        coarse = abs(exact - estimate_jq(q, num_buckets=5))
        fine = abs(exact - estimate_jq(q, num_buckets=500))
        assert fine <= coarse + 1e-12
        assert fine < 1e-3

    def test_perfect_worker_shortcut(self):
        assert estimate_jq([1.0, 0.6]) == 1.0

    def test_high_quality_shortcut(self):
        q = [0.995, 0.6]
        assert estimate_jq(q) == pytest.approx(0.995)
        # Disabled: falls through to the DP, still close to exact.
        approx = estimate_jq(q, num_buckets=2000, high_quality_shortcut=False)
        assert approx == pytest.approx(exact_jq_bv(q), abs=1e-2)

    def test_uninformative_jury(self):
        assert estimate_jq([0.5, 0.5, 0.5]) == 0.5

    def test_prior_folding(self):
        """estimate_jq(J, alpha) == estimate_jq(J + worker(alpha), 0.5)."""
        q = [0.8, 0.7]
        with_alpha = estimate_jq(q, alpha=0.7, num_buckets=400)
        folded = estimate_jq([0.8, 0.7, 0.7], num_buckets=400)
        assert with_alpha == pytest.approx(folded, abs=1e-9)

    def test_low_quality_worker_canonicalized(self):
        """q and 1-q workers are interchangeable for BV's JQ."""
        assert estimate_jq([0.3, 0.8], num_buckets=200) == pytest.approx(
            estimate_jq([0.7, 0.8], num_buckets=200)
        )

    def test_paper_example(self, example2_qualities):
        assert estimate_jq(
            example2_qualities, num_buckets=200
        ) == pytest.approx(0.9, abs=1e-6)

    def test_implementations_agree(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 15))
            q = rng.uniform(0.35, 0.95, size=n)
            dense = estimate_jq(q, num_buckets=50)
            mapped = estimate_jq(q, num_buckets=50, implementation="map")
            assert dense == pytest.approx(mapped, abs=1e-12)

    def test_unknown_implementation(self):
        with pytest.raises(ValueError):
            estimate_jq([0.7], implementation="quantum")

    def test_invalid_num_buckets(self):
        with pytest.raises(ValueError):
            estimate_jq([0.7], num_buckets=0)

    def test_empty_jury(self):
        with pytest.raises(ValueError):
            estimate_jq([])

    def test_result_in_unit_interval(self, rng):
        for _ in range(20):
            q = rng.uniform(0, 1, size=8)
            assert 0.0 <= estimate_jq(q) <= 1.0


class TestPruning:
    def test_pruning_does_not_change_result(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 20))
            q = rng.uniform(0.5, 0.95, size=n)
            with_p = estimate_jq_detailed(q, pruning=True)
            without_p = estimate_jq_detailed(q, pruning=False)
            assert with_p.jq == pytest.approx(without_p.jq, abs=1e-9)

    def test_pruning_reduces_expansions(self, rng):
        q = rng.uniform(0.5, 0.95, size=40)
        with_p = estimate_jq_detailed(q, pruning=True)
        without_p = estimate_jq_detailed(q, pruning=False)
        assert with_p.expansions < without_p.expansions
        assert with_p.pruned > 0
        assert without_p.pruned == 0

    def test_instrumentation_fields(self):
        detail = estimate_jq_detailed([0.8, 0.7, 0.6])
        assert detail.shortcut == ""
        assert detail.num_buckets == 50
        assert detail.delta > 0
        assert detail.max_keys >= 1

    def test_shortcut_reporting(self):
        assert estimate_jq_detailed([1.0]).shortcut == "perfect-worker"
        assert estimate_jq_detailed([0.999]).shortcut == "high-quality"
        assert estimate_jq_detailed([0.5]).shortcut == "uninformative"
