"""Property tests for the batched JQ kernels (repro.quality.batch).

The kernels' contract is *bit-identity* with the scalar oracles — not
approximate agreement — because the engine's kernel/scalar toggle must
produce byte-identical campaign fingerprints.  The randomized sweeps
here cover jury sizes up to 12, mixed priors, several bucket counts,
and every shortcut regime (perfect worker, high-quality, uninformative,
full DP).
"""

import numpy as np
import pytest

from repro.core import EnumerationLimitError, Jury, Worker
from repro.quality import (
    ALL_SUBSETS_MAX,
    all_subset_costs,
    all_subsets_jq_bv,
    estimate_jq,
    estimate_jq_batch,
    exact_jq_bv,
    exact_jq_bv_batch,
    subset_members,
)
from repro.selection import JQObjective


PRIORS = (0.5, 0.3, 0.72)
BUCKETS = (5, 50, 200)


def random_jury(rng, max_size=12, regime=None):
    """One quality vector, optionally forced into a shortcut regime."""
    size = int(rng.integers(1, max_size + 1))
    if regime is None:
        regime = rng.choice(["plain", "perfect", "high", "uninformative"])
    if regime == "perfect":
        q = rng.random(size)
        q[rng.integers(size)] = 1.0
        return q
    if regime == "high":
        q = rng.random(size) * 0.5 + 0.4
        q[rng.integers(size)] = 0.995
        return q
    if regime == "uninformative":
        # canonicalize() maps q and 1-q alike; exactly 0.5 everywhere
        # is the only all-fair-coin vector.
        return np.full(size, 0.5)
    return rng.random(size)


class TestEstimateJQBatch:
    def test_matches_scalar_bitwise_across_regimes(self, rng):
        for trial in range(40):
            rows = [random_jury(rng) for _ in range(int(rng.integers(1, 25)))]
            alpha = float(rng.choice(PRIORS))
            num_buckets = int(rng.choice(BUCKETS))
            got = estimate_jq_batch(rows, alpha=alpha, num_buckets=num_buckets)
            for row, value in zip(rows, got):
                assert float(value) == estimate_jq(
                    row, alpha=alpha, num_buckets=num_buckets
                )

    def test_shortcut_toggle_matches_scalar(self, rng):
        rows = [random_jury(rng, regime="high") for _ in range(8)]
        got = estimate_jq_batch(rows, high_quality_shortcut=False)
        for row, value in zip(rows, got):
            assert float(value) == estimate_jq(row, high_quality_shortcut=False)

    def test_single_row_and_singleton_jury(self):
        assert float(estimate_jq_batch([[0.8]])[0]) == estimate_jq([0.8])

    def test_empty_row_rejected(self):
        with pytest.raises(ValueError):
            estimate_jq_batch([[0.7], []])

    def test_bad_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            estimate_jq_batch([[0.7]], num_buckets=0)


class TestExactJQBVBatch:
    def test_matches_scalar_bitwise(self, rng):
        for trial in range(30):
            rows = [
                rng.random(int(rng.integers(1, 13)))
                for _ in range(int(rng.integers(1, 20)))
            ]
            alpha = float(rng.choice(PRIORS))
            got = exact_jq_bv_batch(rows, alpha)
            for row, value in zip(rows, got):
                assert float(value) == exact_jq_bv(row, alpha)

    def test_size_guard(self):
        with pytest.raises(EnumerationLimitError):
            exact_jq_bv_batch([np.full(21, 0.7)])

    def test_empty_row_rejected(self):
        with pytest.raises(ValueError):
            exact_jq_bv_batch([[]])


class TestAllSubsetsJQBV:
    def test_exact_mode_matches_exact_jq_bv_bitwise(self, rng):
        for trial in range(6):
            n = int(rng.integers(1, 10))
            q = rng.random(n)
            alpha = float(rng.choice(PRIORS))
            table = all_subsets_jq_bv(q, alpha=alpha)
            assert table.size == 1 << n
            assert table[0] == max(alpha, 1.0 - alpha)
            for mask in range(1, 1 << n):
                members = subset_members(mask, n)
                assert table[mask] == exact_jq_bv(q[members], alpha)

    def test_cutoff_mode_matches_objective_bitwise(self, rng):
        """Above the cutoff the lattice hands off to the bucket batch —
        the same split JQObjective applies, entry for entry."""
        n, cutoff = 9, 4
        q = rng.random(n)
        objective = JQObjective(alpha=0.3, exact_cutoff=cutoff, num_buckets=50)
        table = all_subsets_jq_bv(q, alpha=0.3, exact_cutoff=cutoff)
        for mask in range(1, 1 << n):
            members = subset_members(mask, n)
            jury = Jury(Worker(f"w{i}", float(q[i])) for i in members)
            assert table[mask] == objective(jury), mask

    def test_duplicate_qualities(self):
        table = all_subsets_jq_bv([0.7, 0.7, 0.7])
        assert table[0b011] == table[0b101] == table[0b110]

    def test_size_guard(self):
        with pytest.raises(EnumerationLimitError):
            all_subsets_jq_bv(np.full(ALL_SUBSETS_MAX + 1, 0.7))

    def test_empty_pool(self):
        table = all_subsets_jq_bv([], alpha=0.8)
        assert table.tolist() == [0.8]


class TestAllSubsetCosts:
    def test_matches_member_sums(self, rng):
        for trial in range(5):
            n = int(rng.integers(1, 12))
            costs = rng.random(n) * 10
            table = all_subset_costs(costs)
            assert table.size == 1 << n
            assert table[0] == 0.0
            for mask in range(1, 1 << n):
                members = subset_members(mask, n)
                assert table[mask] == pytest.approx(
                    float(costs[members].sum()), abs=1e-9
                )
