"""Property-based tests (hypothesis) for the paper's theorems.

Each property is one of the paper's formal claims, checked numerically
on randomized instances:

* Theorem 1 / Corollary 1 — BV's JQ dominates every implemented
  strategy, deterministic or randomized.
* Lemma 1 — JQ(BV) is monotone in jury size.
* Lemma 2 — JQ(BV) is monotone in member quality (above 0.5).
* Theorem 3 — the prior folds into a pseudo-worker.
* Section 4.4 — the bucket estimate's additive error respects the
  proven bound.
* Definition 3 — JQ is a probability and at least max(alpha, 1-alpha).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quality import (
    bucket_error_bound,
    estimate_jq,
    exact_jq,
    exact_jq_bv,
    exact_jq_mv,
)
from repro.voting import all_strategies

# Qualities away from the exact 0/1 endpoints keep log-likelihoods
# finite; the endpoints get dedicated unit tests elsewhere.
quality = st.floats(min_value=0.02, max_value=0.98)
reliable_quality = st.floats(min_value=0.5, max_value=0.98)
prior = st.floats(min_value=0.02, max_value=0.98)
jury = st.lists(quality, min_size=1, max_size=7)
reliable_jury = st.lists(reliable_quality, min_size=1, max_size=7)

_STRATEGIES = all_strategies()


@settings(max_examples=60, deadline=None)
@given(qualities=jury, alpha=prior)
def test_theorem1_bv_dominates_every_strategy(qualities, alpha):
    bv_jq = exact_jq_bv(qualities, alpha)
    for strategy in _STRATEGIES:
        other = exact_jq(qualities, strategy, alpha)
        assert bv_jq >= other - 1e-9, (
            f"{strategy.name} beat BV: {other} > {bv_jq} on "
            f"q={qualities}, alpha={alpha}"
        )


@settings(max_examples=60, deadline=None)
@given(qualities=jury, extra=quality, alpha=prior)
def test_lemma1_monotone_in_jury_size(qualities, extra, alpha):
    before = exact_jq_bv(qualities, alpha)
    after = exact_jq_bv(qualities + [extra], alpha)
    assert after >= before - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    qualities=reliable_jury,
    bump=st.floats(min_value=0.0, max_value=0.48),
    index=st.integers(min_value=0, max_value=6),
    alpha=prior,
)
def test_lemma2_monotone_in_worker_quality(qualities, bump, index, alpha):
    index = index % len(qualities)
    upgraded = list(qualities)
    upgraded[index] = min(upgraded[index] + bump, 0.98)
    before = exact_jq_bv(qualities, alpha)
    after = exact_jq_bv(upgraded, alpha)
    assert after >= before - 1e-9


@settings(max_examples=60, deadline=None)
@given(qualities=jury, alpha=prior)
def test_theorem3_prior_is_pseudo_worker(qualities, alpha):
    direct = exact_jq_bv(qualities, alpha)
    folded = exact_jq_bv(qualities + [alpha], 0.5)
    assert direct == pytest.approx(folded, abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(
    qualities=jury,
    alpha=prior,
    num_buckets=st.integers(min_value=5, max_value=400),
)
def test_bucket_error_within_proven_bound(qualities, alpha, num_buckets):
    exact = exact_jq_bv(qualities, alpha)
    approx = estimate_jq(
        qualities,
        alpha=alpha,
        num_buckets=num_buckets,
        high_quality_shortcut=False,
    )
    bound = bucket_error_bound(qualities, num_buckets, alpha)
    assert abs(exact - approx) <= bound + 1e-9


@settings(max_examples=60, deadline=None)
@given(qualities=jury, alpha=prior)
def test_jq_is_probability_and_beats_prior_guess(qualities, alpha):
    jq = exact_jq_bv(qualities, alpha)
    assert 0.0 <= jq <= 1.0 + 1e-12
    # Answering the prior's mode with no votes achieves max(a, 1-a);
    # BV with votes can only do better (Lemma 1 from the empty jury).
    assert jq >= max(alpha, 1.0 - alpha) - 1e-9


@settings(max_examples=60, deadline=None)
@given(qualities=jury)
def test_complement_symmetry(qualities):
    """Section 4.2: summing A0 + A1 over V equals summing over V-bar —
    numerically, JQ computed on flipped labels with flipped prior is
    identical."""
    q = np.asarray(qualities)
    assert exact_jq_bv(q, 0.5) == pytest.approx(
        exact_jq_bv(1.0 - q, 0.5), abs=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(qualities=st.lists(reliable_quality, min_size=1, max_size=9), alpha=prior)
def test_mv_never_beats_bv(qualities, alpha):
    """The headline claim, restricted to the MV oracle path."""
    assert exact_jq_bv(qualities, alpha) >= exact_jq_mv(qualities, alpha) - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    qualities=st.lists(reliable_quality, min_size=1, max_size=12),
    num_buckets=st.integers(min_value=10, max_value=100),
)
def test_bucket_implementations_agree(qualities, num_buckets):
    dense = estimate_jq(qualities, num_buckets=num_buckets)
    mapped = estimate_jq(
        qualities, num_buckets=num_buckets, implementation="map"
    )
    assert dense == pytest.approx(mapped, abs=1e-10)
