"""Tests for repro.quality.exact (Definition 3 enumeration)."""

import numpy as np
import pytest

from repro.core import EnumerationLimitError, Jury, Worker
from repro.quality import (
    exact_jq,
    exact_jq_bv,
    joint_probabilities,
    strategy_accuracy_per_voting,
    vote_matrix,
)
from repro.voting import (
    BayesianVoting,
    MajorityVoting,
    RandomBallotVoting,
    RandomizedMajorityVoting,
)


class TestVoteMatrix:
    def test_enumerates_all_rows(self):
        m = vote_matrix(3)
        assert m.shape == (8, 3)
        assert len({tuple(r) for r in m.tolist()}) == 8

    def test_bit_order(self):
        m = vote_matrix(2)
        assert m[0].tolist() == [0, 0]
        assert m[1].tolist() == [1, 0]  # bit 0 is worker 0
        assert m[2].tolist() == [0, 1]


class TestJointProbabilities:
    def test_total_mass_is_one(self):
        q = np.array([0.9, 0.6, 0.7])
        p0, p1 = joint_probabilities(q, 0.3)
        assert p0.sum() + p1.sum() == pytest.approx(1.0)

    def test_alpha_zero_kills_p0(self):
        q = np.array([0.8, 0.7])
        p0, p1 = joint_probabilities(q, 0.0)
        assert p0.sum() == 0.0
        assert p1.sum() == pytest.approx(1.0)


class TestExactJQ:
    def test_paper_example2_mv(self, example2_qualities):
        """Example 2: JQ(J, MV, 0.5) = 79.2%."""
        jq = exact_jq(example2_qualities, MajorityVoting())
        assert jq == pytest.approx(0.792)

    def test_paper_example3_bv(self, example2_qualities):
        """Example 3: JQ(J, BV, 0.5) = 90%."""
        assert exact_jq_bv(example2_qualities) == pytest.approx(0.9)
        assert exact_jq(
            example2_qualities, BayesianVoting()
        ) == pytest.approx(0.9)

    def test_single_worker_bv_equals_quality(self):
        assert exact_jq_bv([0.73]) == pytest.approx(0.73)

    def test_figure1_pairs(self):
        """Figure 1: {F, G} has JQ 75%, {C, G} has 80%."""
        assert exact_jq_bv([0.6, 0.75]) == pytest.approx(0.75)
        assert exact_jq_bv([0.8, 0.75]) == pytest.approx(0.80)

    def test_figure1_budget20_jury(self):
        """Figure 1: {A, C, F, G} has JQ 86.95%."""
        assert exact_jq_bv([0.77, 0.8, 0.6, 0.75]) == pytest.approx(0.8695)

    def test_rbv_is_half(self, example2_qualities):
        assert exact_jq(
            example2_qualities, RandomBallotVoting()
        ) == pytest.approx(0.5)

    def test_rmv_equals_mean_quality(self, rng):
        """RMV's JQ has the closed form E[#correct]/n = mean(q)."""
        for _ in range(10):
            q = rng.uniform(0.3, 0.95, size=6)
            jq = exact_jq(q, RandomizedMajorityVoting())
            assert jq == pytest.approx(float(np.mean(q)))

    def test_accepts_jury_objects(self):
        jury = Jury([Worker("a", 0.9), Worker("b", 0.6), Worker("c", 0.6)])
        assert exact_jq_bv(jury) == pytest.approx(0.9)

    def test_enumeration_guard(self):
        with pytest.raises(EnumerationLimitError):
            exact_jq_bv(np.full(25, 0.7))
        with pytest.raises(EnumerationLimitError):
            exact_jq(np.full(25, 0.7), MajorityVoting())

    def test_guard_can_be_raised(self):
        assert exact_jq_bv(np.full(21, 0.7), max_size=21) > 0.9

    def test_empty_jury_rejected(self):
        with pytest.raises(ValueError):
            exact_jq_bv([])

    def test_jq_bounds(self, rng):
        for _ in range(20):
            q = rng.uniform(0, 1, size=5)
            a = rng.uniform(0, 1)
            jq = exact_jq_bv(q, a)
            assert max(a, 1 - a) - 1e-12 <= jq <= 1.0 + 1e-12

    def test_bv_with_prior_by_hand(self):
        # One worker q=0.8, alpha=0.9: BV answers 0 unless... even a
        # "1" vote can't overturn the prior (0.9*0.2 > 0.1*0.8), so BV
        # always answers 0 and JQ = alpha = 0.9.
        assert exact_jq_bv([0.8], 0.9) == pytest.approx(0.9)


class TestPerVotingBreakdown:
    def test_contributions_sum_to_jq(self, example2_qualities):
        records = strategy_accuracy_per_voting(
            example2_qualities, MajorityVoting()
        )
        assert len(records) == 8
        total = sum(r["contribution"] for r in records)
        assert total == pytest.approx(0.792)

    def test_figure2_specific_voting(self, example2_qualities):
        """Figure 2: V=(1,0,0), t=0 has joint probability 0.018 and MV
        decides 0 there while BV decides 1."""
        records = strategy_accuracy_per_voting(
            example2_qualities, MajorityVoting()
        )
        row = next(r for r in records if r["votes"] == (1, 0, 0))
        assert row["p0"] == pytest.approx(0.018)
        assert row["p1"] == pytest.approx(0.072)
        assert row["prob_zero"] == 1.0  # MV says 0
        bv_records = strategy_accuracy_per_voting(
            example2_qualities, BayesianVoting()
        )
        bv_row = next(r for r in bv_records if r["votes"] == (1, 0, 0))
        assert bv_row["prob_zero"] == 0.0  # BV says 1
