"""Tests for repro.quality.majority (the Poisson-binomial MV oracle)."""

import numpy as np
import pytest

from repro.quality import (
    exact_jq,
    exact_jq_half,
    exact_jq_mv,
    majority_threshold,
    poisson_binomial_pmf,
)
from repro.voting import HalfVoting, MajorityVoting


class TestPoissonBinomial:
    def test_matches_binomial(self):
        from scipy import stats

        pmf = poisson_binomial_pmf([0.3] * 10)
        expected = stats.binom.pmf(np.arange(11), 10, 0.3)
        assert np.allclose(pmf, expected)

    def test_sums_to_one(self, rng):
        probs = rng.uniform(0, 1, size=17)
        assert poisson_binomial_pmf(probs).sum() == pytest.approx(1.0)

    def test_degenerate_probabilities(self):
        pmf = poisson_binomial_pmf([1.0, 0.0, 1.0])
        assert pmf[2] == pytest.approx(1.0)

    def test_fft_path_matches_dp(self, rng):
        probs = rng.uniform(0.1, 0.9, size=300)  # above FFT threshold
        fft_pmf = poisson_binomial_pmf(probs)
        from repro.quality.majority import _pmf_dynamic_program

        dp_pmf = _pmf_dynamic_program(probs)
        assert np.allclose(fft_pmf, dp_pmf, atol=1e-10)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([])
        with pytest.raises(ValueError):
            poisson_binomial_pmf([0.5, 1.5])


class TestMajorityThreshold:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (11, 6)]
    )
    def test_threshold(self, n, expected):
        assert majority_threshold(n) == expected


class TestExactJQMV:
    def test_matches_enumeration(self, rng):
        mv = MajorityVoting()
        for _ in range(20):
            n = int(rng.integers(1, 9))
            q = rng.uniform(0, 1, size=n)
            alpha = float(rng.uniform(0, 1))
            assert exact_jq_mv(q, alpha) == pytest.approx(
                exact_jq(q, mv, alpha), abs=1e-12
            )

    def test_half_matches_enumeration(self, rng):
        half = HalfVoting()
        for _ in range(20):
            n = int(rng.integers(1, 9))
            q = rng.uniform(0, 1, size=n)
            alpha = float(rng.uniform(0, 1))
            assert exact_jq_half(q, alpha) == pytest.approx(
                exact_jq(q, half, alpha), abs=1e-12
            )

    def test_paper_example(self, example2_qualities):
        assert exact_jq_mv(example2_qualities) == pytest.approx(0.792)

    def test_intro_example(self):
        """Introduction: jury {B, E, F} with q = (0.7, 0.6, 0.6) gives
        69.6% under MV."""
        assert exact_jq_mv([0.7, 0.6, 0.6]) == pytest.approx(0.696)

    def test_identical_workers_condorcet(self):
        """With identical reliable workers, bigger odd juries do better
        (Condorcet's jury theorem)."""
        jq3 = exact_jq_mv([0.7] * 3)
        jq5 = exact_jq_mv([0.7] * 5)
        jq11 = exact_jq_mv([0.7] * 11)
        assert jq3 < jq5 < jq11

    def test_even_jury_no_better_than_odd(self):
        """Adding one identical voter to an odd jury cannot help MV
        (with iid voters and a flat prior the JQ is exactly equal —
        the tie mass gained on t=1 equals the mass lost on t=0)."""
        assert exact_jq_mv([0.7] * 4) == pytest.approx(exact_jq_mv([0.7] * 3))
        # With an informative prior the tie-to-1 rule is asymmetric:
        # favouring 1 helps when the truth is likely 1.
        assert exact_jq_mv([0.7] * 4, alpha=0.2) > exact_jq_mv(
            [0.7] * 3, alpha=0.2
        )

    def test_large_jury_runs_fast(self):
        q = np.full(400, 0.6)
        assert exact_jq_mv(q) > 0.99

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_jq_mv([])
