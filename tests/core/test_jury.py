"""Tests for repro.core.jury."""

import numpy as np
import pytest

from repro.core import (
    BudgetError,
    EmptyJuryError,
    InvalidVoteError,
    Jury,
    Voting,
    Worker,
    WorkerPool,
)


class TestJury:
    def test_basic_properties(self, small_jury):
        assert small_jury.size == 3
        assert small_jury.cost == pytest.approx(3.5)
        assert np.allclose(small_jury.qualities, [0.8, 0.7, 0.6])
        assert small_jury.worker_ids == ("x", "y", "z")

    def test_duplicate_member_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Jury([Worker("a", 0.5), Worker("a", 0.6)])

    def test_non_worker_rejected(self):
        with pytest.raises(TypeError):
            Jury(["nope"])  # type: ignore[list-item]

    def test_empty_jury_allowed_but_guarded(self):
        empty = Jury(())
        assert empty.size == 0
        assert empty.cost == 0.0
        with pytest.raises(EmptyJuryError):
            empty.require_nonempty()

    def test_feasibility(self, small_jury):
        assert small_jury.is_feasible(3.5)
        assert small_jury.is_feasible(10)
        assert not small_jury.is_feasible(3.4)
        small_jury.require_feasible(4)
        with pytest.raises(BudgetError):
            small_jury.require_feasible(1)

    def test_qualities_returns_copy(self, small_jury):
        q = small_jury.qualities
        q[0] = 0.0
        assert small_jury.qualities[0] == 0.8

    def test_with_worker(self, small_jury):
        grown = small_jury.with_worker(Worker("w", 0.9, 1.0))
        assert grown.size == 4
        assert small_jury.size == 3  # original untouched
        with pytest.raises(ValueError):
            small_jury.with_worker(Worker("x", 0.1))

    def test_without_worker(self, small_jury):
        shrunk = small_jury.without_worker("y")
        assert shrunk.worker_ids == ("x", "z")
        with pytest.raises(KeyError):
            small_jury.without_worker("nope")

    def test_replace_worker(self, small_jury):
        swapped = small_jury.replace_worker("z", Worker("w", 0.95, 9.0))
        assert "w" in swapped
        assert "z" not in swapped
        assert swapped.size == 3

    def test_contains(self, small_jury):
        assert "x" in small_jury
        assert Worker("x", 0.8, 2.0) in small_jury
        assert Worker("x", 0.5, 2.0) not in small_jury
        assert 3 not in small_jury

    def test_order_invariant_equality_and_hash(self):
        a, b = Worker("a", 0.5), Worker("b", 0.7, 1)
        assert Jury([a, b]) == Jury([b, a])
        assert hash(Jury([a, b])) == hash(Jury([b, a]))
        assert Jury([a]) != Jury([b])

    def test_from_pool(self):
        pool = WorkerPool([Worker("a", 0.5), Worker("b", 0.6), Worker("c", 0.7)])
        assert Jury.from_pool(pool).size == 3
        partial = Jury.from_pool(pool, [2, 0])
        assert partial.worker_ids == ("c", "a")

    def test_as_pool_roundtrip(self, small_jury):
        pool = small_jury.as_pool()
        assert isinstance(pool, WorkerPool)
        assert Jury.from_pool(pool) == small_jury


class TestVoting:
    def test_valid_voting(self, small_jury):
        v = Voting(small_jury, (1, 0, 1))
        assert v.size == 3
        assert v.count(1) == 2
        assert v.count(0) == 1

    def test_vote_count_mismatch(self, small_jury):
        with pytest.raises(InvalidVoteError):
            Voting(small_jury, (1, 0))

    def test_vote_domain(self, small_jury):
        with pytest.raises(InvalidVoteError):
            Voting(small_jury, (1, 0, 2))
        Voting(small_jury, (1, 0, 2), num_labels=3)

    def test_complement(self, small_jury):
        v = Voting(small_jury, (1, 0, 1))
        assert v.complement().votes == (0, 1, 0)
        multi = Voting(small_jury, (1, 0, 2), num_labels=3)
        with pytest.raises(InvalidVoteError):
            multi.complement()

    def test_likelihood_matches_product_formula(self, small_jury):
        v = Voting(small_jury, (0, 1, 0))
        # qualities 0.8, 0.7, 0.6; truth 0: correct, wrong, correct.
        assert v.likelihood(0) == pytest.approx(0.8 * 0.3 * 0.6)
        assert v.likelihood(1) == pytest.approx(0.2 * 0.7 * 0.4)

    def test_likelihood_symmetry_with_complement(self, small_jury):
        v = Voting(small_jury, (0, 1, 1))
        # Pr(V | t=0) == Pr(V-bar | t=1): the Section-4.2 symmetry.
        assert v.likelihood(0) == pytest.approx(v.complement().likelihood(1))
