"""Tests for repro.core.task."""

import numpy as np
import pytest

from repro.core import (
    DecisionTask,
    InvalidPriorError,
    MultiChoiceTask,
    validate_prior,
    validate_prior_vector,
)


class TestValidatePrior:
    def test_valid_range(self):
        assert validate_prior(0.0) == 0.0
        assert validate_prior(1.0) == 1.0
        assert validate_prior(0.3) == pytest.approx(0.3)

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
    def test_invalid(self, bad):
        with pytest.raises(InvalidPriorError):
            validate_prior(bad)


class TestValidatePriorVector:
    def test_valid(self):
        vec = validate_prior_vector([0.2, 0.3, 0.5])
        assert np.allclose(vec, [0.2, 0.3, 0.5])

    def test_must_sum_to_one(self):
        with pytest.raises(InvalidPriorError):
            validate_prior_vector([0.5, 0.6])

    def test_entries_in_range(self):
        with pytest.raises(InvalidPriorError):
            validate_prior_vector([1.2, -0.2])

    def test_needs_two_entries(self):
        with pytest.raises(InvalidPriorError):
            validate_prior_vector([1.0])


class TestDecisionTask:
    def test_defaults(self):
        t = DecisionTask("t1")
        assert t.prior == 0.5
        assert t.ground_truth is None
        assert t.labels == (0, 1)
        assert t.num_labels == 2

    def test_prior_vector(self):
        t = DecisionTask("t1", prior=0.3)
        assert np.allclose(t.prior_vector, [0.3, 0.7])

    def test_invalid_prior(self):
        with pytest.raises(InvalidPriorError):
            DecisionTask("t1", prior=1.5)

    def test_ground_truth_domain(self):
        DecisionTask("t1", ground_truth=0)
        DecisionTask("t2", ground_truth=1)
        with pytest.raises(ValueError):
            DecisionTask("t3", ground_truth=2)

    def test_with_prior(self):
        t = DecisionTask("t1", question="q?", ground_truth=1)
        t2 = t.with_prior(0.9)
        assert t2.prior == 0.9
        assert t2.question == "q?"
        assert t2.ground_truth == 1
        assert t.prior == 0.5  # original untouched


class TestMultiChoiceTask:
    def test_uniform_default_prior(self):
        t = MultiChoiceTask("m1", num_labels=4)
        assert np.allclose(t.prior_vector, [0.25] * 4)
        assert t.labels == (0, 1, 2, 3)

    def test_explicit_prior(self):
        t = MultiChoiceTask("m1", num_labels=3, prior=(0.5, 0.3, 0.2))
        assert np.allclose(t.prior_vector, [0.5, 0.3, 0.2])

    def test_prior_length_mismatch(self):
        with pytest.raises(InvalidPriorError):
            MultiChoiceTask("m1", num_labels=3, prior=(0.5, 0.5))

    def test_needs_two_labels(self):
        with pytest.raises(ValueError):
            MultiChoiceTask("m1", num_labels=1)

    def test_ground_truth_domain(self):
        MultiChoiceTask("m1", num_labels=3, ground_truth=2)
        with pytest.raises(ValueError):
            MultiChoiceTask("m1", num_labels=3, ground_truth=3)

    def test_as_decision_task(self):
        t = MultiChoiceTask("m1", num_labels=2, prior=(0.7, 0.3), ground_truth=1)
        d = t.as_decision_task()
        assert isinstance(d, DecisionTask)
        assert d.prior == pytest.approx(0.7)
        assert d.ground_truth == 1

    def test_as_decision_task_requires_binary(self):
        with pytest.raises(ValueError):
            MultiChoiceTask("m1", num_labels=3).as_decision_task()
