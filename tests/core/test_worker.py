"""Tests for repro.core.worker."""

import numpy as np
import pytest

from repro.core import (
    InvalidCostError,
    InvalidQualityError,
    Worker,
    WorkerPool,
)


class TestWorker:
    def test_basic_construction(self):
        w = Worker("a", 0.8, 2.5)
        assert w.worker_id == "a"
        assert w.quality == 0.8
        assert w.cost == 2.5

    def test_defaults(self):
        w = Worker("volunteer")
        assert w.quality == 0.5
        assert w.cost == 0.0

    def test_quality_bounds(self):
        Worker("lo", 0.0)
        Worker("hi", 1.0)
        with pytest.raises(InvalidQualityError):
            Worker("bad", -0.01)
        with pytest.raises(InvalidQualityError):
            Worker("bad", 1.01)
        with pytest.raises(InvalidQualityError):
            Worker("bad", float("nan"))

    def test_cost_bounds(self):
        with pytest.raises(InvalidCostError):
            Worker("bad", 0.5, -1.0)
        with pytest.raises(InvalidCostError):
            Worker("bad", 0.5, float("inf"))

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Worker("", 0.5)

    def test_immutability(self):
        w = Worker("a", 0.8)
        with pytest.raises(AttributeError):
            w.quality = 0.9  # type: ignore[misc]

    def test_is_reliable(self):
        assert Worker("a", 0.5).is_reliable
        assert Worker("b", 0.9).is_reliable
        assert not Worker("c", 0.49).is_reliable

    def test_flipped(self):
        w = Worker("a", 0.3, 1.0)
        f = w.flipped()
        assert f.quality == pytest.approx(0.7)
        assert f.cost == 1.0
        assert f.worker_id == "a"

    def test_with_quality_and_cost(self):
        w = Worker("a", 0.6, 1.0)
        assert w.with_quality(0.9).quality == 0.9
        assert w.with_quality(0.9).cost == 1.0
        assert w.with_cost(5.0).cost == 5.0
        assert w.with_cost(5.0).quality == 0.6

    def test_equality_and_ordering(self):
        assert Worker("a", 0.5, 1) == Worker("a", 0.5, 1)
        assert Worker("a", 0.5, 1) != Worker("a", 0.6, 1)
        assert Worker("a", 0.5) < Worker("b", 0.5)


class TestWorkerPool:
    def test_insertion_order_preserved(self):
        pool = WorkerPool([Worker("b", 0.6), Worker("a", 0.7)])
        assert pool.workers[0].worker_id == "b"
        assert pool[1].worker_id == "a"

    def test_duplicate_id_rejected(self):
        pool = WorkerPool([Worker("a", 0.5)])
        with pytest.raises(ValueError, match="duplicate"):
            pool.add(Worker("a", 0.9))

    def test_non_worker_rejected(self):
        pool = WorkerPool()
        with pytest.raises(TypeError):
            pool.add("not a worker")  # type: ignore[arg-type]

    def test_len_iter_contains(self):
        a, b = Worker("a", 0.5), Worker("b", 0.6, 1.0)
        pool = WorkerPool([a, b])
        assert len(pool) == 2
        assert list(pool) == [a, b]
        assert a in pool
        assert "b" in pool
        assert "c" not in pool
        assert Worker("a", 0.9) not in pool  # same id, different fields
        assert 42 not in pool

    def test_get_and_remove(self):
        a = Worker("a", 0.5)
        pool = WorkerPool([a, Worker("b", 0.6)])
        assert pool.get("a") == a
        removed = pool.remove("a")
        assert removed == a
        assert len(pool) == 1
        with pytest.raises(KeyError):
            pool.get("a")

    def test_vector_views(self):
        pool = WorkerPool([Worker("a", 0.5, 1.0), Worker("b", 0.75, 2.0)])
        assert np.allclose(pool.qualities, [0.5, 0.75])
        assert np.allclose(pool.costs, [1.0, 2.0])
        assert pool.total_cost == pytest.approx(3.0)

    def test_sorted_by_quality(self):
        pool = WorkerPool(
            [Worker("a", 0.5), Worker("b", 0.9), Worker("c", 0.7)]
        )
        ranked = pool.sorted_by_quality()
        assert [w.worker_id for w in ranked] == ["b", "c", "a"]
        ascending = pool.sorted_by_quality(descending=False)
        assert [w.worker_id for w in ascending] == ["a", "c", "b"]

    def test_sorted_by_quality_deterministic_ties(self):
        pool = WorkerPool([Worker("z", 0.7), Worker("a", 0.7)])
        ranked = pool.sorted_by_quality()
        assert [w.worker_id for w in ranked] == ["z", "a"]

    def test_sorted_by_cost(self):
        pool = WorkerPool([Worker("a", 0.5, 3.0), Worker("b", 0.5, 1.0)])
        assert [w.worker_id for w in pool.sorted_by_cost()] == ["b", "a"]

    def test_affordable_and_reliable(self):
        pool = WorkerPool(
            [Worker("a", 0.4, 1.0), Worker("b", 0.8, 5.0), Worker("c", 0.6, 2.0)]
        )
        assert [w.worker_id for w in pool.affordable(2.0)] == ["a", "c"]
        assert [w.worker_id for w in pool.reliable()] == ["b", "c"]

    def test_subset(self):
        pool = WorkerPool(
            [Worker("a", 0.5), Worker("b", 0.6), Worker("c", 0.7)]
        )
        sub = pool.subset(["c", "a"])
        assert [w.worker_id for w in sub] == ["c", "a"]

    def test_equality_and_hash(self):
        p1 = WorkerPool([Worker("a", 0.5)])
        p2 = WorkerPool([Worker("a", 0.5)])
        assert p1 == p2
        assert hash(p1) == hash(p2)
        assert p1 != WorkerPool([Worker("a", 0.6)])
