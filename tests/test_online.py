"""Tests for repro.online (sequential voting with stopping rule)."""

import numpy as np
import pytest

from repro.core import Worker
from repro.online import OnlineDecisionSession, run_online
from repro.voting import posterior_zero


class TestOnlineDecisionSession:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OnlineDecisionSession(confidence_target=0.4)
        with pytest.raises(ValueError):
            OnlineDecisionSession(budget=-1)

    def test_initial_state_is_prior(self):
        session = OnlineDecisionSession(alpha=0.7)
        assert session.posterior_zero == pytest.approx(0.7)
        assert session.answer == 0
        assert session.confidence == pytest.approx(0.7)
        assert session.votes_used == 0

    def test_incremental_matches_batch_posterior(self, rng):
        session = OnlineDecisionSession(alpha=0.3)
        qualities = [0.8, 0.65, 0.7, 0.55]
        votes = [1, 0, 1, 1]
        for q, v in zip(qualities, votes):
            session.add_vote(Worker(f"w{q}", q), v)
        batch = posterior_zero(votes, qualities, 0.3)
        assert session.posterior_zero == pytest.approx(batch, abs=1e-12)

    def test_confidence_target_stops(self):
        session = OnlineDecisionSession(confidence_target=0.9)
        assert not session.should_stop
        session.add_vote(Worker("strong", 0.95), 1)
        assert session.confidence == pytest.approx(0.95)
        assert session.should_stop

    def test_budget_enforced(self):
        session = OnlineDecisionSession(budget=1.0)
        session.add_vote(Worker("a", 0.7, 0.8), 1)
        expensive = Worker("b", 0.9, 0.5)
        assert not session.can_afford(expensive)
        with pytest.raises(ValueError, match="exceeds remaining budget"):
            session.add_vote(expensive, 0)

    def test_invalid_vote(self):
        session = OnlineDecisionSession()
        with pytest.raises(ValueError):
            session.add_vote(Worker("a", 0.7), 2)

    def test_outcome_snapshot(self):
        session = OnlineDecisionSession()
        session.add_vote(Worker("a", 0.8, 1.0), 0)
        outcome = session.outcome(stopped_early=True)
        assert outcome.answer == 0
        assert outcome.votes_used == 1
        assert outcome.cost == 1.0
        assert outcome.stopped_early
        assert len(outcome.history) == 1


class TestRunOnline:
    def workers(self):
        return [
            Worker("w1", 0.9, 1.0),
            Worker("w2", 0.8, 1.0),
            Worker("w3", 0.7, 1.0),
            Worker("w4", 0.6, 1.0),
        ]

    def test_stops_early_on_agreement(self):
        outcome = run_online(
            self.workers(), lambda w: 1, confidence_target=0.95
        )
        assert outcome.answer == 1
        assert outcome.stopped_early
        assert outcome.votes_used < 4  # two agreeing strong votes suffice

    def test_exhausts_queue_when_uncertain(self):
        # Alternating votes keep the posterior near 0.5.
        votes = iter([1, 0, 1, 0])
        outcome = run_online(
            self.workers(), lambda w: next(votes), confidence_target=0.99
        )
        assert outcome.votes_used == 4
        assert not outcome.stopped_early

    def test_budget_skips_unaffordable_workers(self):
        workers = [
            Worker("pricey", 0.9, 5.0),
            Worker("cheap1", 0.7, 1.0),
            Worker("cheap2", 0.7, 1.0),
        ]
        outcome = run_online(
            workers, lambda w: 1, confidence_target=0.999, budget=2.0
        )
        assert outcome.cost <= 2.0
        assert outcome.votes_used == 2  # both cheap workers, not pricey

    def test_online_saves_votes_vs_fixed_jury(self, rng):
        """The CDAS-style motivation: on easy tasks (high-quality,
        agreeing workers) the stopping rule uses far fewer votes than
        asking everyone."""
        workers = [Worker(f"w{i}", 0.85, 1.0) for i in range(10)]
        truth = 1
        used = []
        for _ in range(50):
            outcome = run_online(
                workers,
                lambda w: truth if rng.random() < w.quality else 1 - truth,
                confidence_target=0.95,
            )
            used.append(outcome.votes_used)
        assert np.mean(used) < 6  # well under the 10-vote fixed jury

    def test_confidence_controls_accuracy(self, rng):
        """Stopping at confidence tau should deliver accuracy >= tau
        (the posterior is exact under the model)."""
        workers = [Worker(f"w{i}", 0.75, 0.0) for i in range(15)]
        target = 0.9
        correct = 0
        trials = 200
        for _ in range(trials):
            truth = int(rng.random() < 0.5)
            outcome = run_online(
                workers,
                lambda w: truth if rng.random() < w.quality else 1 - truth,
                confidence_target=target,
            )
            correct += int(outcome.answer == truth)
        assert correct / trials >= target - 0.05
