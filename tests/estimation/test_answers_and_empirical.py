"""Tests for repro.estimation.answers and .empirical."""

import pytest

from repro.core import EstimationError, InvalidVoteError
from repro.estimation import (
    Answer,
    AnswerMatrix,
    empirical_qualities,
    empirical_quality,
)


class TestAnswerMatrix:
    def test_record_and_lookup(self):
        m = AnswerMatrix()
        m.record("w1", "t1", 1)
        m.record("w1", "t2", 0)
        m.record("w2", "t1", 0)
        assert m.num_answers == 3
        assert len(m) == 3
        assert m.answers_by("w1") == {"t1": 1, "t2": 0}
        assert m.answers_for("t1") == {"w1": 1, "w2": 0}

    def test_duplicate_answer_rejected(self):
        m = AnswerMatrix()
        m.record("w1", "t1", 1)
        with pytest.raises(ValueError, match="already answered"):
            m.record("w1", "t1", 0)

    def test_label_domain(self):
        m = AnswerMatrix(num_labels=3)
        m.record("w", "t", 2)
        with pytest.raises(InvalidVoteError):
            m.record("w", "t2", 3)
        with pytest.raises(InvalidVoteError):
            Answer("w", "t", -1)

    def test_num_labels_validation(self):
        with pytest.raises(ValueError):
            AnswerMatrix(num_labels=1)

    def test_iteration(self):
        m = AnswerMatrix(answers=[Answer("w", "t", 1)])
        answers = list(m)
        assert answers == [Answer("w", "t", 1)]

    def test_views_are_copies(self):
        m = AnswerMatrix()
        m.record("w", "t", 1)
        view = m.answers_by("w")
        view["t"] = 0
        assert m.answers_by("w") == {"t": 1}

    def test_participation_counts(self):
        m = AnswerMatrix()
        m.record("w1", "t1", 1)
        m.record("w1", "t2", 1)
        m.record("w2", "t1", 0)
        assert m.participation_counts() == {"w1": 2, "w2": 1}

    def test_missing_worker_and_task(self):
        m = AnswerMatrix()
        assert m.answers_by("nope") == {}
        assert m.answers_for("nope") == {}


class TestEmpiricalQuality:
    def make_matrix(self):
        m = AnswerMatrix()
        truth = {"t1": 1, "t2": 0, "t3": 1, "t4": 0}
        # w1: 3 of 4 correct; w2: 1 of 2 correct; w3: only ungraded work.
        m.record("w1", "t1", 1)
        m.record("w1", "t2", 0)
        m.record("w1", "t3", 0)
        m.record("w1", "t4", 0)
        m.record("w2", "t1", 1)
        m.record("w2", "t2", 1)
        m.record("w3", "t9", 1)
        return m, truth

    def test_accuracy_against_gold(self):
        m, truth = self.make_matrix()
        assert empirical_quality(m, truth, "w1") == pytest.approx(0.75)
        assert empirical_quality(m, truth, "w2") == pytest.approx(0.5)

    def test_no_gradable_history(self):
        m, truth = self.make_matrix()
        with pytest.raises(EstimationError):
            empirical_quality(m, truth, "w3")

    def test_smoothing_pulls_to_half(self):
        m, truth = self.make_matrix()
        raw = empirical_quality(m, truth, "w1")
        smoothed = empirical_quality(m, truth, "w1", smoothing=2.0)
        assert 0.5 < smoothed < raw

    def test_bulk_estimation_skips_ungradable(self):
        m, truth = self.make_matrix()
        qualities = empirical_qualities(m, truth)
        assert set(qualities) == {"w1", "w2"}
        assert qualities["w1"] == pytest.approx(0.75)
