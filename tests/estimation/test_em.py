"""Tests for one-coin EM and Dawid-Skene EM."""

import numpy as np
import pytest

from repro.core import EstimationError
from repro.estimation import AnswerMatrix, dawid_skene, one_coin_em
from repro.multiclass import ConfusionMatrix


def simulate_binary_campaign(rng, num_workers=15, num_tasks=120):
    """Workers with known qualities answer binary tasks."""
    qualities = rng.uniform(0.55, 0.95, size=num_workers)
    truths = rng.integers(0, 2, size=num_tasks)
    answers = AnswerMatrix()
    for w in range(num_workers):
        for t in range(num_tasks):
            correct = rng.random() < qualities[w]
            label = truths[t] if correct else 1 - truths[t]
            answers.record(f"w{w}", f"t{t}", int(label))
    return qualities, truths, answers


def simulate_multiclass_campaign(rng, num_workers=10, num_tasks=150, labels=3):
    matrices = []
    for _ in range(num_workers):
        raw = rng.uniform(0.05, 0.4, size=(labels, labels)) + 2.5 * np.eye(labels)
        matrices.append(raw / raw.sum(axis=1, keepdims=True))
    truths = rng.integers(0, labels, size=num_tasks)
    answers = AnswerMatrix(num_labels=labels)
    for w, matrix in enumerate(matrices):
        for t in range(num_tasks):
            vote = rng.choice(labels, p=matrix[truths[t]])
            answers.record(f"w{w}", f"t{t}", int(vote))
    return matrices, truths, answers


class TestOneCoinEM:
    def test_recovers_truths_and_qualities(self, rng):
        qualities, truths, answers = simulate_binary_campaign(rng)
        result = one_coin_em(answers)
        assert result.converged
        recovered = result.map_truths()
        accuracy = np.mean(
            [recovered[f"t{t}"] == truths[t] for t in range(len(truths))]
        )
        assert accuracy > 0.95
        errors = [
            abs(result.qualities[f"w{w}"] - qualities[w])
            for w in range(len(qualities))
        ]
        assert float(np.mean(errors)) < 0.08

    def test_empty_matrix_rejected(self):
        with pytest.raises(EstimationError):
            one_coin_em(AnswerMatrix())

    def test_multiclass_matrix_rejected(self):
        m = AnswerMatrix(num_labels=3)
        m.record("w", "t", 2)
        with pytest.raises(EstimationError):
            one_coin_em(m)

    def test_prior_validation(self):
        m = AnswerMatrix()
        m.record("w", "t", 1)
        with pytest.raises(ValueError):
            one_coin_em(m, prior_one=0.0)

    def test_qualities_stay_in_unit_interval(self, rng):
        _, _, answers = simulate_binary_campaign(rng, num_workers=5, num_tasks=30)
        result = one_coin_em(answers)
        for q in result.qualities.values():
            assert 0.0 < q < 1.0

    def test_sparse_answers(self, rng):
        """Workers answering disjoint task subsets still get estimates."""
        answers = AnswerMatrix()
        truths = rng.integers(0, 2, size=40)
        for w in range(6):
            tasks = range(w * 5, w * 5 + 15)  # overlapping windows
            for t in tasks:
                if t >= 40:
                    continue
                label = truths[t] if rng.random() < 0.8 else 1 - truths[t]
                answers.record(f"w{w}", f"t{t}", int(label))
        result = one_coin_em(answers)
        assert set(result.qualities) == {f"w{w}" for w in range(6)}


class TestDawidSkene:
    def test_recovers_truths(self, rng):
        matrices, truths, answers = simulate_multiclass_campaign(rng)
        result = dawid_skene(answers)
        recovered = result.map_truths()
        accuracy = np.mean(
            [recovered[f"t{t}"] == truths[t] for t in range(len(truths))]
        )
        assert accuracy > 0.9

    def test_recovers_confusion_matrices(self, rng):
        matrices, truths, answers = simulate_multiclass_campaign(
            rng, num_tasks=400
        )
        result = dawid_skene(answers)
        errors = []
        for w, true_matrix in enumerate(matrices):
            est = result.confusions[f"w{w}"].matrix
            errors.append(float(np.abs(est - true_matrix).mean()))
        assert float(np.mean(errors)) < 0.06

    def test_returns_valid_confusion_matrices(self, rng):
        _, _, answers = simulate_multiclass_campaign(
            rng, num_workers=4, num_tasks=30
        )
        result = dawid_skene(answers)
        for cm in result.confusions.values():
            assert isinstance(cm, ConfusionMatrix)
            assert cm.min_entry > 0.0  # smoothing keeps entries positive

    def test_class_prior_normalized(self, rng):
        _, _, answers = simulate_multiclass_campaign(
            rng, num_workers=4, num_tasks=30
        )
        result = dawid_skene(answers)
        assert result.class_prior.sum() == pytest.approx(1.0)

    def test_empty_matrix_rejected(self):
        with pytest.raises(EstimationError):
            dawid_skene(AnswerMatrix(num_labels=3))

    def test_smoothing_validation(self, rng):
        _, _, answers = simulate_multiclass_campaign(
            rng, num_workers=3, num_tasks=10
        )
        with pytest.raises(ValueError):
            dawid_skene(answers, smoothing=0.0)

    def test_binary_agreement_with_one_coin(self, rng):
        """On binary data the two EMs should broadly agree on truths."""
        _, truths, answers = simulate_binary_campaign(
            rng, num_workers=10, num_tasks=80
        )
        ds = dawid_skene(answers).map_truths()
        oc = one_coin_em(answers).map_truths()
        agreement = np.mean([ds[t] == oc[t] for t in ds])
        assert agreement > 0.95
