"""Determinism guarantees: same seed, same result, everywhere.

Reproducibility is a first-class requirement for a paper-reproduction
library: every stochastic entry point must be a pure function of its
seed.
"""

import numpy as np
import pytest

from repro import OptimalJurySelectionSystem
from repro.experiments import run_fig6a, run_fig8a, run_table3
from repro.frontier import sampled_frontier
from repro.multiclass import MultiClassWorker, select_multiclass_jury
from repro.selection import AnnealingSelector, JQObjective, MVJSSelector
from repro.simulation import AMTConfig, AMTSimulator, generate_pool


class TestSelectionDeterminism:
    def test_annealer(self, figure1_pool):
        results = [
            AnnealingSelector(JQObjective()).select(
                figure1_pool, 12, rng=np.random.default_rng(9)
            )
            for _ in range(2)
        ]
        assert results[0].worker_ids == results[1].worker_ids
        assert results[0].jq == results[1].jq

    def test_mvjs(self, figure1_pool):
        results = [
            MVJSSelector().select(
                figure1_pool, 12, rng=np.random.default_rng(9)
            )
            for _ in range(2)
        ]
        assert results[0].worker_ids == results[1].worker_ids

    def test_system_facade(self, figure1_pool):
        tables = [
            OptimalJurySelectionSystem(figure1_pool, seed=5)
            .budget_quality_table([5, 15])
            .rows
            for _ in range(2)
        ]
        assert tables[0] == tables[1]

    def test_multiclass_selection(self):
        workers = [
            MultiClassWorker.from_quality(f"w{i}", q, 3, cost=1.0)
            for i, q in enumerate([0.8, 0.7, 0.9, 0.6])
        ]
        a = select_multiclass_jury(
            workers, 2.0, rng=np.random.default_rng(4), epsilon=1e-4
        )
        b = select_multiclass_jury(
            workers, 2.0, rng=np.random.default_rng(4), epsilon=1e-4
        )
        assert a.indices == b.indices

    def test_sampled_frontier(self, figure1_pool):
        a = sampled_frontier(
            figure1_pool, [5, 15], rng=np.random.default_rng(2)
        )
        b = sampled_frontier(
            figure1_pool, [5, 15], rng=np.random.default_rng(2)
        )
        assert a.points == b.points


class TestSimulationDeterminism:
    def test_pool_generation(self):
        a = generate_pool(rng=np.random.default_rng(11))
        b = generate_pool(rng=np.random.default_rng(11))
        assert a == b

    def test_amt_campaign(self):
        config = AMTConfig(
            num_workers=16, num_tasks=40, questions_per_hit=10,
            assignments_per_hit=8,
        )
        a = AMTSimulator(config, np.random.default_rng(1)).run()
        b = AMTSimulator(config, np.random.default_rng(1)).run()
        assert a.latent_qualities == b.latent_qualities
        assert a.vote_order == b.vote_order


class TestExperimentDeterminism:
    def test_fig6a(self):
        a = run_fig6a(mus=(0.7,), reps=2, seed=3, epsilon=1e-3)
        b = run_fig6a(mus=(0.7,), reps=2, seed=3, epsilon=1e-3)
        assert a.series == b.series

    def test_fig8a(self):
        a = run_fig8a(mus=(0.6,), reps=3, seed=3)
        b = run_fig8a(mus=(0.6,), reps=3, seed=3)
        assert a.series == b.series

    def test_table3(self):
        a = run_table3(budgets=(0.3,), reps=3, seed=3)
        b = run_table3(budgets=(0.3,), reps=3, seed=3)
        assert a.counts == b.counts

    def test_seed_none_varies(self):
        """Seedless runs must actually vary (no hidden global seed)."""
        draws = {
            tuple(run_fig8a(mus=(0.6,), reps=2, seed=None).series[1].values)
            for _ in range(3)
        }
        assert len(draws) > 1
