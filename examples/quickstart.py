"""Quickstart: the paper's Figure-1 walkthrough, end to end.

Builds the seven-worker candidate pool from the paper's running
example, prints the budget–quality table, picks the provider's
"sweet spot" budget, selects the jury, and aggregates a concrete set
of votes with Bayesian Voting.

Run:  python examples/quickstart.py
"""

from repro import OptimalJurySelectionSystem, Worker, WorkerPool


def main() -> None:
    # The candidate workers of Figure 1: (id, quality, cost).
    pool = WorkerPool(
        [
            Worker("A", 0.77, 9),
            Worker("B", 0.70, 5),
            Worker("C", 0.80, 6),
            Worker("D", 0.65, 7),
            Worker("E", 0.60, 5),
            Worker("F", 0.60, 2),
            Worker("G", 0.75, 3),
        ]
    )

    system = OptimalJurySelectionSystem(pool, seed=42)

    print("Task: 'Is Bill Gates now the CEO of Microsoft?'")
    print()
    table = system.budget_quality_table([5, 10, 15, 20])
    print(table.render())
    print()

    # The provider's heuristic from the paper: stop raising the budget
    # once the remaining quality gain is below ~2.5%.
    sweet_spot = table.best_value_row(min_gain=0.025)
    print(
        f"Sweet spot: budget {sweet_spot.budget:g} buys jury "
        f"{{{', '.join(sweet_spot.worker_ids)}}} at JQ "
        f"{sweet_spot.jq:.2%} for only {sweet_spot.required:g} units."
    )
    print()

    # Select under that budget and aggregate some votes.
    result = system.select_jury(sweet_spot.budget)
    jury = result.jury
    print(f"Selected jury: {jury.worker_ids} (cost {jury.cost:g})")

    votes = [1] * len(jury)  # everyone votes "yes"
    verdict = system.decide(jury, votes)
    print(
        f"All jurors vote YES -> answer={'YES' if verdict.answer else 'NO'} "
        f"with confidence {verdict.confidence:.2%}"
    )

    votes = [0] + [1] * (len(jury) - 1)  # one dissenter
    verdict = system.decide(jury, votes)
    print(
        f"One dissenter     -> answer={'YES' if verdict.answer else 'NO'} "
        f"with confidence {verdict.confidence:.2%}"
    )


if __name__ == "__main__":
    main()
