"""Serving a task stream through the campaign engine.

The one-shot library answers "which jury for this task?".  The engine
(`repro.engine`) answers the production question: 300 tasks arrive over
time, share one 60-worker pool, one budget, and finite worker
attention (nobody sits on more than `capacity` juries at once).  The
demo shows the three things the serving layer adds:

1. **Capacity-aware scheduling** — batches are admitted against live
   worker load; the best worker cannot be oversubscribed.
2. **Early stopping with refunds** — each funded task runs an online
   Bayesian session; confident tasks stop early and return their
   unspent reservation to the campaign pot.
3. **Quality drift** — worker estimates start at a cold 0.65 prior and
   are re-fit from streamed votes every 100 completions (one-coin EM),
   pulling selection toward the truly good workers.

A second act scales past the exact-frontier pool cap: the same traffic
shape against a 64-worker pool, served by **4 shards** under a
top-level budget allocator (`repro.engine.sharding`) — per-shard
schedulers and JQ caches, quality-mass-proportional budget grants,
least-loaded task routing, and idle-worker rebalancing.

Run:  python examples/engine_campaign.py
"""

import numpy as np

from repro.engine import (
    CampaignEngine,
    EngineConfig,
    EngineTask,
    ShardedCampaignEngine,
    ShardingConfig,
)
from repro.simulation import SyntheticPoolConfig, generate_pool


def main() -> None:
    rng = np.random.default_rng(2015)
    pool = generate_pool(SyntheticPoolConfig(num_workers=60), rng)
    num_tasks = 300
    budget = 150.0

    config = EngineConfig(
        budget=budget,
        capacity=5,
        batch_size=25,
        confidence_target=0.92,
        reestimate_every=100,
        seed=2015,
    )
    # Cold start: the provider only knows "workers are decent-ish".
    engine = CampaignEngine(pool, config, initial_quality=0.65)

    truths = rng.integers(0, 2, size=num_tasks)
    engine.submit(
        EngineTask(f"task-{i:04d}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )

    print(f"Serving {num_tasks} tasks from a {len(pool)}-worker pool "
          f"under budget {budget:g}...\n")
    metrics = engine.run()
    print(metrics.render(budget=budget))

    print("\nBusiest workers (seats are scarce — capacity caps load):")
    busiest = sorted(
        engine.registry.states, key=lambda s: -s.votes_cast
    )[:5]
    for state in busiest:
        acc = state.observed_accuracy
        print(
            f"  {state.worker.worker_id:>4}: {state.votes_cast:3d} votes, "
            f"peak load {state.peak_load}/{state.capacity}, "
            f"earned {state.spend:.3f}, "
            f"q_true {state.true_quality:.2f} -> "
            f"q_est {state.worker.quality:.2f}"
            + (f" (observed {acc:.2f})" if acc is not None else "")
        )

    print(
        f"\nQuality drift: mean |q_est - q_true| = "
        f"{engine.registry.estimation_error():.4f} "
        f"(started at cold prior 0.65)"
    )

    sharded_act(rng)


def sharded_act(rng: np.random.Generator) -> None:
    """64 workers is far past the exact-frontier cap — serve the pool
    as 4 shards under one budget allocator."""
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=64, quality_ceiling=0.95), rng
    )
    num_tasks = 400
    budget = 140.0
    config = EngineConfig(
        budget=budget,
        capacity=5,
        batch_size=50,
        confidence_target=0.92,
        seed=2015,
    )
    engine = ShardedCampaignEngine(
        pool,
        config,
        ShardingConfig(4, policy="least-loaded"),
    )
    truths = rng.integers(0, 2, size=num_tasks)
    engine.submit(
        EngineTask(f"shard-task-{i:04d}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )

    print(f"\n{'=' * 60}")
    print(f"Sharded serving: {num_tasks} tasks, {len(pool)} workers "
          f"across 4 shards, budget {budget:g}...\n")
    metrics = engine.run()
    print(metrics.render(budget=budget))


if __name__ == "__main__":
    main()
