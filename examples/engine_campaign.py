"""Serving a task stream through the `Campaign` facade.

The one-shot library answers "which jury for this task?".  The serving
layer (`repro.engine`) answers the production question: 300 tasks
arrive over time, share one 60-worker pool, one budget, and finite
worker attention (nobody sits on more than `capacity` juries at once).
The demo walks the Campaign lifecycle:

1. **Open + run** — `Campaign.open(pool, CampaignConfig(...))` with
   capacity-aware scheduling, early stopping with refunds, and quality
   drift (estimates start at a cold 0.65 prior and are re-fit from
   streamed votes every 100 completions).
2. **Sharded scale-out by config** — the same facade with
   `num_shards=4`: shard count is a config field, not a class choice.
3. **Checkpoint / resume** — the campaign is paused mid-run,
   checkpointed into a SQLite state backend, reopened as if by another
   process, and finished — with the metrics fingerprint byte-identical
   to an uninterrupted run.

Run:  python examples/engine_campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.engine import (
    Campaign,
    CampaignConfig,
    EngineTask,
    SQLiteBackend,
)
from repro.simulation import SyntheticPoolConfig, generate_pool


def main() -> None:
    rng = np.random.default_rng(2015)
    pool = generate_pool(SyntheticPoolConfig(num_workers=60), rng)
    num_tasks = 300
    budget = 150.0

    config = CampaignConfig(
        budget=budget,
        capacity=5,
        batch_size=25,
        confidence_target=0.92,
        reestimate_every=100,
        seed=2015,
    )
    # Cold start: the provider only knows "workers are decent-ish".
    campaign = Campaign.open(pool, config, initial_quality=0.65)

    truths = rng.integers(0, 2, size=num_tasks)
    campaign.submit(
        EngineTask(f"task-{i:04d}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )

    print(f"Serving {num_tasks} tasks from a {len(pool)}-worker pool "
          f"under budget {budget:g}...\n")
    campaign.run()
    print(campaign.render())

    print("\nBusiest workers (seats are scarce — capacity caps load):")
    busiest = sorted(
        campaign.registry.states, key=lambda s: -s.votes_cast
    )[:5]
    for state in busiest:
        acc = state.observed_accuracy
        print(
            f"  {state.worker.worker_id:>4}: {state.votes_cast:3d} votes, "
            f"peak load {state.peak_load}/{state.capacity}, "
            f"earned {state.spend:.3f}, "
            f"q_true {state.true_quality:.2f} -> "
            f"q_est {state.worker.quality:.2f}"
            + (f" (observed {acc:.2f})" if acc is not None else "")
        )

    print(
        f"\nQuality drift: mean |q_est - q_true| = "
        f"{campaign.registry.estimation_error():.4f} "
        f"(started at cold prior 0.65)"
    )

    sharded_act(rng)
    resume_act()


def sharded_act(rng: np.random.Generator) -> None:
    """64 workers is far past the exact-frontier cap — serve the pool
    as 4 shards by flipping one config field."""
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=64, quality_ceiling=0.95), rng
    )
    num_tasks = 400
    budget = 140.0
    config = CampaignConfig(
        budget=budget,
        capacity=5,
        batch_size=50,
        confidence_target=0.92,
        seed=2015,
        num_shards=4,
        routing_policy="least-loaded",
    )
    campaign = Campaign.open(pool, config)
    truths = rng.integers(0, 2, size=num_tasks)
    campaign.submit(
        EngineTask(f"shard-task-{i:04d}", ground_truth=int(t))
        for i, t in enumerate(truths)
    )

    print(f"\n{'=' * 60}")
    print(f"Sharded serving: {num_tasks} tasks, {len(pool)} workers "
          f"across 4 shards, budget {budget:g}...\n")
    campaign.run()
    print(campaign.render())


def resume_act() -> None:
    """Pause mid-run, checkpoint to SQLite, resume, and prove the
    resumed campaign is byte-identical to an uninterrupted one."""
    def build(backend=None):
        rng = np.random.default_rng(7)
        pool = generate_pool(
            SyntheticPoolConfig(num_workers=32, quality_ceiling=0.95), rng
        )
        config = CampaignConfig(
            budget=60.0, capacity=4, confidence_target=0.94, seed=7,
            num_shards=2,
        )
        campaign = Campaign.open(pool, config, backend=backend)
        truths = rng.integers(0, 2, size=200)
        campaign.submit(
            EngineTask(f"t{i}", ground_truth=int(t))
            for i, t in enumerate(truths)
        )
        return campaign

    print(f"\n{'=' * 60}")
    print("Checkpoint/resume: pause at 80 of 200 tasks, persist to "
          "SQLite, resume 'in another process'...\n")

    reference = build().run().fingerprint()

    state_path = Path(tempfile.mkdtemp()) / "campaign.db"
    interrupted = build(backend=SQLiteBackend(state_path))
    interrupted.run(until=80)
    interrupted.checkpoint()
    print(f"paused at {interrupted.metrics.completed} completed, "
          f"checkpointed to {state_path.name}")
    interrupted.close()  # the 'process' exits here

    resumed = Campaign.resume(SQLiteBackend(state_path))
    metrics = resumed.run()
    print(f"resumed and finished: {metrics.completed} completed")
    match = metrics.fingerprint() == reference
    print(f"fingerprint matches uninterrupted run: {match}")
    assert match


if __name__ == "__main__":
    main()
