"""Strategy showdown: why Bayesian Voting is the optimal strategy.

Compares the exact Jury Quality of every strategy in the library's
registry on the same juries (Theorem 1 says BV must top every row),
then demonstrates the two structural results that make the system
practical:

* Theorem 3 — a prior is just one more (pseudo-)worker;
* the Section 3.3 flip — a 0.3-quality worker is as useful as a
  0.7-quality one under BV, and actively harmful under MV.

Run:  python examples/strategy_showdown.py
"""

import numpy as np

from repro.quality import exact_jq, exact_jq_bv, fold_prior
from repro.voting import all_strategies


def showdown(qualities, alpha=0.5) -> None:
    rows = []
    for strategy in all_strategies():
        jq = exact_jq(qualities, strategy, alpha)
        rows.append((strategy.name, jq))
    rows.sort(key=lambda r: -r[1])
    best = rows[0][1]
    print(f"  jury qualities: {np.round(qualities, 3).tolist()}, alpha={alpha}")
    for name, jq in rows:
        marker = "  <- optimal" if abs(jq - best) < 1e-12 else ""
        print(f"    {name:<12} JQ = {jq:.4f}{marker}")
    print()


def main() -> None:
    rng = np.random.default_rng(7)

    print("1) Every implemented strategy on the paper's Example-2 jury:")
    showdown(np.array([0.9, 0.6, 0.6]))

    print("2) A random mixed-quality jury:")
    showdown(rng.uniform(0.45, 0.95, size=7))

    print("3) Theorem 3: the prior is a pseudo-worker.")
    qualities = np.array([0.8, 0.7, 0.65])
    alpha = 0.7
    direct = exact_jq_bv(qualities, alpha)
    folded = exact_jq_bv(fold_prior(qualities, alpha), 0.5)
    print(f"   JQ(J, BV, alpha=0.7)             = {direct:.6f}")
    print(f"   JQ(J + worker(q=0.7), BV, 0.5)   = {folded:.6f}")
    print()

    print("4) The quality flip: q=0.3 is as informative as q=0.7 for BV,")
    print("   but poisons MV:")
    from repro.quality import exact_jq_mv

    honest = np.array([0.7, 0.7, 0.7])
    contrarian = np.array([0.7, 0.7, 0.3])
    print(f"   BV: {exact_jq_bv(honest):.4f} (3 x 0.7)  vs  "
          f"{exact_jq_bv(contrarian):.4f} (2 x 0.7 + one 0.3)")
    print(f"   MV: {exact_jq_mv(honest):.4f} (3 x 0.7)  vs  "
          f"{exact_jq_mv(contrarian):.4f} (2 x 0.7 + one 0.3)")


if __name__ == "__main__":
    main()
