"""Adaptive campaigning: budget allocation + early stopping.

Two production-grade extensions layered on the paper's machinery:

1. **Portfolio allocation** (`repro.portfolio`): one budget, many
   questions, each with its own candidate pool — spend where the
   marginal Jury Quality per dollar is highest.
2. **Online stopping** (`repro.online`): within each funded question,
   consult jurors one at a time and stop as soon as the Bayesian
   posterior clears a confidence bar, banking the unspent budget.

Run:  python examples/adaptive_campaign.py
"""

import numpy as np

from repro.core import Worker, WorkerPool
from repro.online import run_online
from repro.portfolio import plan_campaign


def make_question_pools(rng, num_questions=6):
    """Heterogeneous questions: some have strong cheap crowds, some
    only weak expensive ones."""
    pools = {}
    for i in range(num_questions):
        strength = rng.uniform(0.55, 0.85)
        cost_scale = rng.uniform(0.5, 2.0)
        pools[f"q{i}"] = WorkerPool(
            Worker(
                f"q{i}-w{j}",
                float(np.clip(rng.normal(strength, 0.08), 0.5, 0.95)),
                float(rng.uniform(0.3, 1.2) * cost_scale),
            )
            for j in range(8)
        )
    return pools


def main() -> None:
    rng = np.random.default_rng(21)
    pools = make_question_pools(rng)
    budget = 10.0

    # ------------------------------------------------------------------
    # 1) Allocate the campaign budget across questions.
    # ------------------------------------------------------------------
    plan = plan_campaign(pools, budget, rng=rng)
    print("Campaign plan (greedy marginal-JQ allocation):")
    print(plan.render())
    print()

    # ------------------------------------------------------------------
    # 2) Execute each funded question with early stopping.
    # ------------------------------------------------------------------
    print("Execution with online stopping (confidence target 95%):")
    planned_total = 0.0
    actual_total = 0.0
    correct = 0
    answered = 0
    for allocation in plan.allocations:
        if allocation.point is None:
            continue
        pool = pools[allocation.task_id]
        jury = pool.subset(allocation.point.worker_ids)
        truth = int(rng.random() < 0.5)

        # Consult the planned jurors best-first; stop when confident.
        ordered = sorted(jury, key=lambda w: -w.quality)
        outcome = run_online(
            ordered,
            lambda w: truth if rng.random() < w.quality else 1 - truth,
            confidence_target=0.95,
            budget=allocation.cost,
        )
        planned_total += allocation.cost
        actual_total += outcome.cost
        answered += 1
        correct += int(outcome.answer == truth)
        print(
            f"  {allocation.task_id}: planned {allocation.cost:5.2f}, "
            f"spent {outcome.cost:5.2f} on {outcome.votes_used} votes, "
            f"confidence {outcome.confidence:.2%}, "
            f"{'correct' if outcome.answer == truth else 'WRONG'}"
        )

    print()
    saved = planned_total - actual_total
    print(
        f"Planned spend {planned_total:.2f}, actual spend "
        f"{actual_total:.2f} -> early stopping saved "
        f"{saved:.2f} ({saved / planned_total:.0%})"
    )
    print(f"Accuracy on funded questions: {correct}/{answered}")


if __name__ == "__main__":
    main()
