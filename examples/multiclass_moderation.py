"""Multiclass jury selection: 3-way content moderation (Section 7).

A moderation queue labels posts as {0: benign, 1: borderline,
2: violating}.  Workers are *not* symmetric: a typical annotator
rarely confuses benign with violating but often confuses borderline
with its neighbours — exactly the structure a confusion matrix
captures and a scalar quality cannot.

The pipeline:

1. simulate annotators with structured confusion matrices and have
   them label a training batch with known truths;
2. recover each annotator's confusion matrix with Dawid-Skene EM;
3. select a jury under a budget with the multiclass annealer;
4. aggregate fresh votes with multiclass Bayesian Voting.

Run:  python examples/multiclass_moderation.py
"""

import numpy as np

from repro.estimation import AnswerMatrix, dawid_skene
from repro.multiclass import (
    ConfusionMatrix,
    MultiClassBayesianVoting,
    MultiClassWorker,
    exact_jq_multiclass,
    select_multiclass_jury,
)

LABELS = ("benign", "borderline", "violating")


def make_annotator_truth(rng: np.random.Generator) -> np.ndarray:
    """A structured random confusion matrix: strong diagonal, most
    confusion between adjacent classes."""
    skill = rng.uniform(0.6, 0.92)
    adjacent = (1.0 - skill) * rng.uniform(0.7, 0.95)
    far = 1.0 - skill - adjacent
    return np.array(
        [
            [skill, adjacent, far],
            [adjacent / 2 + far / 2, skill, adjacent / 2 + far / 2],
            [far, adjacent, skill],
        ]
    )


def main() -> None:
    rng = np.random.default_rng(11)
    num_annotators = 12
    num_training_posts = 300

    # --- 1) ground-truth annotators label a training batch ------------
    true_matrices = [make_annotator_truth(rng) for _ in range(num_annotators)]
    truths = rng.integers(0, 3, size=num_training_posts)
    answers = AnswerMatrix(num_labels=3)
    for a, matrix in enumerate(true_matrices):
        for p, truth in enumerate(truths):
            vote = rng.choice(3, p=matrix[truth])
            answers.record(f"annotator-{a:02d}", f"post-{p:03d}", int(vote))

    # --- 2) recover confusion matrices with Dawid-Skene ---------------
    result = dawid_skene(answers)
    recovered_truths = result.map_truths()
    training_accuracy = np.mean(
        [recovered_truths[f"post-{p:03d}"] == truths[p]
         for p in range(num_training_posts)]
    )
    print(f"Dawid-Skene converged={result.converged} after "
          f"{result.iterations} iterations; "
          f"training-label accuracy {training_accuracy:.2%}")

    workers = []
    for a in range(num_annotators):
        confusion = result.confusions[f"annotator-{a:02d}"]
        cost = float(rng.uniform(0.5, 3.0))
        workers.append(MultiClassWorker(f"annotator-{a:02d}", confusion, cost))
        err = np.abs(
            confusion.matrix - true_matrices[a]
        ).max()
        if a < 3:
            print(f"  annotator-{a:02d}: max |C_est - C_true| = {err:.3f}, "
                  f"cost {cost:.2f}")
    print()

    # --- 3) select a moderation jury under a budget --------------------
    budget = 6.0
    selection = select_multiclass_jury(
        workers, budget, rng=rng, epsilon=1e-6
    )
    print(f"Budget {budget:g}: selected {selection.worker_ids}")
    print(f"  predicted multiclass JQ = {selection.jq:.2%}, "
          f"cost = {selection.cost:.2f}")
    print()

    # --- 4) aggregate fresh votes on a new post ------------------------
    bv = MultiClassBayesianVoting()
    truth = 1  # a borderline post
    jury = list(selection.workers)
    jury_true = [true_matrices[int(w.worker_id.split("-")[1])] for w in jury]
    votes = [int(rng.choice(3, p=m[truth])) for m in jury_true]
    decided = bv.decide(votes, jury)
    posterior = bv.posterior(votes, jury)
    print(f"Fresh post (truth: {LABELS[truth]}), votes: "
          f"{[LABELS[v] for v in votes]}")
    print(f"  BV verdict: {LABELS[decided]}  posterior="
          f"{np.round(posterior, 3).tolist()}")

    # Sanity: the jury's exact JQ vs a single best annotator.
    solo = max(workers, key=lambda w: w.confusion.diagonal_quality)
    print()
    print(f"Jury JQ {exact_jq_multiclass(jury):.2%} vs best solo annotator "
          f"{exact_jq_multiclass([solo]):.2%} — the jury wins.")


if __name__ == "__main__":
    main()
