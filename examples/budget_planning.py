"""Budget planning over a realistic marketplace pool.

A task provider faces a 60-worker marketplace (Gaussian qualities and
folded-Gaussian costs, the Section-6.1.1 generator) and wants to know:
*how much is quality worth?*  This example sweeps budgets, prints the
budget-quality frontier, compares the annealer against cheap greedy
baselines, and shows the marginal value of each extra unit of budget.

Run:  python examples/budget_planning.py
"""

import numpy as np

from repro.selection import (
    AnnealingSelector,
    GreedyQualitySelector,
    GreedyRatioSelector,
    JQObjective,
    budget_quality_table,
)
from repro.simulation import SyntheticPoolConfig, generate_pool


def main() -> None:
    rng = np.random.default_rng(99)
    pool = generate_pool(
        SyntheticPoolConfig(num_workers=60, quality_mean=0.68, cost_sd=0.25),
        rng,
    )
    print(f"Marketplace: {len(pool)} workers, "
          f"mean quality {pool.qualities.mean():.3f}, "
          f"total cost {pool.total_cost:.2f}")
    print()

    budgets = [0.1, 0.2, 0.4, 0.8, 1.6]
    table = budget_quality_table(
        pool, budgets, AnnealingSelector(JQObjective()), rng=rng
    )
    print(table.render())
    print()

    # Marginal value of budget: how much JQ does each doubling buy?
    print("Marginal analysis:")
    previous = None
    for row in table.rows:
        if previous is not None:
            gain = row.jq - previous.jq
            spend = row.budget - previous.budget
            print(f"  {previous.budget:g} -> {row.budget:g}: "
                  f"+{gain:.2%} JQ for +{spend:g} budget "
                  f"({gain / spend:.2%} per unit)")
        previous = row
    print()

    # How much does the annealer beat the greedy heuristics by?
    print("Annealer vs greedy baselines (JQ at each budget):")
    greedy_q = GreedyQualitySelector(JQObjective())
    greedy_r = GreedyRatioSelector(JQObjective())
    header = f"{'B':>6} | {'anneal':>8} | {'greedy-quality':>14} | {'greedy-ratio':>12}"
    print(header)
    print("-" * len(header))
    for budget, row in zip(budgets, table.rows):
        gq = greedy_q.select(pool, budget).jq
        gr = greedy_r.select(pool, budget).jq
        print(f"{budget:>6g} | {row.jq:>8.4f} | {gq:>14.4f} | {gr:>12.4f}")
    print()
    print("No solver dominates: simulated annealing is the paper's "
          "general-purpose engine, but when the pool happens to contain "
          "a near-perfect affordable worker, greedy-by-quality finds her "
          "immediately while SA must stumble into the right swap. "
          "Table 3 of the paper quantifies exactly this gap (< 3%).")


if __name__ == "__main__":
    main()
