"""A full crowdsourcing campaign: sentiment analysis on simulated AMT.

Reproduces the paper's real-data pipeline (Section 6.2) end to end:

1. simulate the AMT campaign (600 sentiment tasks, 128 workers,
   20 votes per task — calibrated to the paper's published stats);
2. estimate worker qualities empirically from the collected answers;
3. for a sample of questions, solve JSP over the 20 workers who
   answered each question, under a fixed budget;
4. aggregate the selected jurors' *actual* votes with Bayesian Voting
   and compare realized accuracy against the predicted JQ.

Run:  python examples/sentiment_campaign.py
"""

import numpy as np

from repro.quality import estimate_jq
from repro.selection import AnnealingSelector, JQObjective
from repro.simulation import AMTSimulator
from repro.voting import BayesianVoting


def main() -> None:
    rng = np.random.default_rng(2015)
    print("Simulating the AMT campaign (this mirrors Section 6.2.1)...")
    campaign = AMTSimulator(rng=rng).run()

    stats = campaign.participation_summary()
    print(
        f"  {stats['num_workers']:.0f} workers, "
        f"{stats['mean_answers_per_worker']:.2f} answers each on average; "
        f"{stats['workers_answering_everything']:.0f} answered everything, "
        f"{stats['workers_with_single_hit']:.0f} answered a single HIT."
    )
    print(
        f"  mean estimated quality {stats['mean_quality']:.2f}, "
        f"{stats['workers_above_080']:.0f} workers above 0.8."
    )
    print()

    qualities = campaign.estimated_qualities()
    truth = campaign.ground_truth()
    strategy = BayesianVoting()
    budget = 0.5

    sample = rng.choice(sorted(campaign.tasks), size=30, replace=False)
    correct = 0
    predicted = []
    for task_id in sample:
        pool = campaign.candidate_pool(task_id, qualities, rng=rng)
        selector = AnnealingSelector(JQObjective(), epsilon=1e-6)
        result = selector.select(pool, budget, rng=rng)
        jury = result.jury
        predicted.append(result.jq)

        # Look up the actual votes the selected jurors gave.
        votes_by_worker = dict(campaign.vote_order[task_id])
        votes = [votes_by_worker[w.worker_id] for w in jury]
        answer = strategy.decide(votes, jury, 0.5)
        correct += int(answer == truth[task_id])

    accuracy = correct / len(sample)
    print(f"Budget {budget:g} per question, {len(sample)} questions:")
    print(f"  mean predicted JQ : {np.mean(predicted):.2%}")
    print(f"  realized accuracy : {accuracy:.2%}")
    print()
    print(
        "The two numbers should be close — that is the Figure 10(d) "
        "claim: JQ is a good prediction of Bayesian Voting's accuracy."
    )

    # Bonus: how quickly does quality saturate with more votes?
    print()
    print("Votes vs predicted JQ on one question (diminishing returns):")
    task_id = sample[0]
    order = campaign.vote_order[task_id]
    for z in (1, 3, 5, 10, 20):
        prefix_q = [qualities[w] for w, _ in order[:z] if w in qualities]
        print(f"  first {z:>2} votes -> JQ {estimate_jq(prefix_q):.2%}")


if __name__ == "__main__":
    main()
