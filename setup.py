"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which must build a wheel) fail.  This
shim enables ``pip install -e . --no-use-pep517 --no-build-isolation``,
which goes through ``setup.py develop`` and needs no wheel.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
