"""Answer matrices: the raw material of worker-quality estimation.

An :class:`AnswerMatrix` stores which worker answered which task with
which label, in a sparse (dict-of-dicts) layout: real crowdsourcing
campaigns are heavily incomplete (in the paper's AMT campaign, half the
workers answered a single 20-question HIT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.exceptions import InvalidVoteError


@dataclass(frozen=True)
class Answer:
    """One worker's label for one task."""

    worker_id: str
    task_id: str
    label: int

    def __post_init__(self) -> None:
        if self.label < 0:
            raise InvalidVoteError(f"label {self.label} must be >= 0")


class AnswerMatrix:
    """A sparse worker x task answer store.

    Duplicate (worker, task) pairs are rejected: one vote per worker
    per task, as in the paper's model.
    """

    def __init__(self, num_labels: int = 2, answers: Iterable[Answer] = ()) -> None:
        if num_labels < 2:
            raise ValueError("num_labels must be >= 2")
        self.num_labels = num_labels
        self._by_worker: dict[str, dict[str, int]] = {}
        self._by_task: dict[str, dict[str, int]] = {}
        for answer in answers:
            self.add(answer)

    def add(self, answer: Answer) -> None:
        if answer.label >= self.num_labels:
            raise InvalidVoteError(
                f"label {answer.label} outside 0..{self.num_labels - 1}"
            )
        worker_answers = self._by_worker.setdefault(answer.worker_id, {})
        if answer.task_id in worker_answers:
            raise ValueError(
                f"worker {answer.worker_id!r} already answered task "
                f"{answer.task_id!r}"
            )
        worker_answers[answer.task_id] = answer.label
        self._by_task.setdefault(answer.task_id, {})[
            answer.worker_id
        ] = answer.label

    def record(self, worker_id: str, task_id: str, label: int) -> None:
        """Convenience wrapper around :meth:`add`."""
        self.add(Answer(worker_id, task_id, label))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(self._by_worker)

    @property
    def task_ids(self) -> tuple[str, ...]:
        return tuple(self._by_task)

    @property
    def num_answers(self) -> int:
        return sum(len(a) for a in self._by_worker.values())

    def answers_by(self, worker_id: str) -> dict[str, int]:
        """task_id -> label for one worker (copy)."""
        return dict(self._by_worker.get(worker_id, {}))

    def answers_for(self, task_id: str) -> dict[str, int]:
        """worker_id -> label for one task (copy)."""
        return dict(self._by_task.get(task_id, {}))

    def __iter__(self) -> Iterator[Answer]:
        for worker_id, tasks in self._by_worker.items():
            for task_id, label in tasks.items():
                yield Answer(worker_id, task_id, label)

    def __len__(self) -> int:
        return self.num_answers

    def participation_counts(self) -> dict[str, int]:
        """worker_id -> number of tasks answered."""
        return {w: len(tasks) for w, tasks in self._by_worker.items()}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def vote_rows(self) -> list[tuple[str, str, int, int, int]]:
        """Flatten to ``(worker_id, task_id, label, wpos, tpos)`` rows.

        ``wpos``/``tpos`` record each vote's position in the by-worker
        and by-task insertion orders.  Downstream estimators iterate
        both views, and float accumulation is order-sensitive at the
        last ulp — a checkpoint/restore round trip must preserve the
        exact iteration orders, not just the contents.
        """
        counter = 0
        tpos = {}
        for task_id, workers in self._by_task.items():
            for worker_id in workers:
                tpos[(worker_id, task_id)] = counter
                counter += 1
        rows = []
        wpos = 0
        for worker_id, tasks in self._by_worker.items():
            for task_id, label in tasks.items():
                rows.append(
                    (worker_id, task_id, label, wpos, tpos[(worker_id, task_id)])
                )
                wpos += 1
        return rows

    @classmethod
    def from_vote_rows(cls, rows, num_labels: int = 2) -> "AnswerMatrix":
        """Rebuild a matrix with both views in their original orders."""
        matrix = cls(num_labels=num_labels)
        for worker_id, task_id, label, _wpos, _tpos in sorted(
            rows, key=lambda r: r[3]
        ):
            matrix._by_worker.setdefault(worker_id, {})[task_id] = int(label)
        for worker_id, task_id, label, _wpos, _tpos in sorted(
            rows, key=lambda r: r[4]
        ):
            matrix._by_task.setdefault(task_id, {})[worker_id] = int(label)
        return matrix
