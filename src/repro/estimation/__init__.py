"""Worker-quality estimation substrate (paper refs [1, 18, 25, 37]).

The paper assumes qualities are "known in advance", derived from
answering history; this package provides the derivations:

* :func:`empirical_qualities` — accuracy against gold questions (what
  Section 6.2.1 does on the AMT data).
* :func:`one_coin_em` — joint truth/quality EM for the scalar model.
* :func:`dawid_skene` — confusion-matrix EM for multi-choice answers.
"""

from .answers import Answer, AnswerMatrix
from .dawid_skene import DawidSkeneResult, dawid_skene
from .empirical import empirical_qualities, empirical_quality
from .one_coin import OneCoinResult, one_coin_em

__all__ = [
    "Answer",
    "AnswerMatrix",
    "DawidSkeneResult",
    "OneCoinResult",
    "dawid_skene",
    "empirical_qualities",
    "empirical_quality",
    "one_coin_em",
]
