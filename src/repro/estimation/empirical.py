"""Empirical quality estimation from labeled history (gold questions).

The paper's real-data experiment (Section 6.2.1) computes each worker's
quality as "the proportion of correctly answered questions by the
worker in all her answered questions" against known ground truth —
the gold-question approach of CDAS [25].  This module implements that
estimator, with optional Laplace smoothing for thin histories.
"""

from __future__ import annotations

from typing import Mapping

from ..core.exceptions import EstimationError
from .answers import AnswerMatrix


def empirical_quality(
    answers: AnswerMatrix,
    ground_truth: Mapping[str, int],
    worker_id: str,
    smoothing: float = 0.0,
) -> float:
    """One worker's empirical accuracy against gold labels.

    Parameters
    ----------
    answers:
        The campaign's answer matrix.
    ground_truth:
        task_id -> true label, for at least one task the worker
        answered.
    worker_id:
        The worker to score.
    smoothing:
        Laplace pseudo-count ``s``: the estimate becomes
        ``(correct + s) / (answered + 2 s)``, pulling thin histories
        toward 0.5.  The paper uses ``s = 0``.
    """
    history = answers.answers_by(worker_id)
    graded = {
        task: label
        for task, label in history.items()
        if task in ground_truth
    }
    if not graded:
        raise EstimationError(
            f"worker {worker_id!r} answered no task with known ground truth"
        )
    correct = sum(
        1 for task, label in graded.items() if label == ground_truth[task]
    )
    return (correct + smoothing) / (len(graded) + 2.0 * smoothing)


def empirical_qualities(
    answers: AnswerMatrix,
    ground_truth: Mapping[str, int],
    smoothing: float = 0.0,
) -> dict[str, float]:
    """Empirical quality of every worker with gradable history."""
    qualities: dict[str, float] = {}
    for worker_id in answers.worker_ids:
        try:
            qualities[worker_id] = empirical_quality(
                answers, ground_truth, worker_id, smoothing
            )
        except EstimationError:
            continue
    return qualities
