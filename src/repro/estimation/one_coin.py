"""One-coin EM: jointly estimate binary truths and scalar qualities.

When no gold questions exist, worker quality and task truth must be
estimated together.  The *one-coin* model (each worker is correct with
a single probability ``q_i`` regardless of the true label) admits the
classic EM scheme the paper cites for CDAS-style systems:

* E-step: posterior over each task's truth from current qualities
  (exactly the Bayesian-Voting posterior);
* M-step: each worker's quality becomes her expected fraction of
  agreements with the posterior truths.

Qualities are clamped away from {0, 1} to keep the E-step's
log-likelihoods finite and EM from locking in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import EstimationError
from .answers import AnswerMatrix

_CLAMP = 1e-6


@dataclass(frozen=True)
class OneCoinResult:
    """EM output: qualities, truth posteriors, and diagnostics."""

    qualities: dict[str, float]
    truth_posteriors: dict[str, float]  # task_id -> Pr(t = 1 | answers)
    iterations: int
    converged: bool

    def map_truths(self) -> dict[str, int]:
        """Maximum-a-posteriori truth per task (ties to 0)."""
        return {
            task: 1 if p > 0.5 else 0
            for task, p in self.truth_posteriors.items()
        }


def one_coin_em(
    answers: AnswerMatrix,
    prior_one: float = 0.5,
    initial_quality: float = 0.7,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> OneCoinResult:
    """Run one-coin EM on a binary answer matrix.

    Parameters
    ----------
    answers:
        Binary campaign answers (``num_labels`` must be 2).
    prior_one:
        ``Pr(t = 1)`` prior shared by all tasks.
    initial_quality:
        Starting quality for every worker (0.7 mirrors the synthetic
        default; anything in (0.5, 1) breaks the label-switching
        symmetry toward "workers are mostly right").
    max_iterations / tolerance:
        Stop when the largest quality change falls below ``tolerance``
        or after ``max_iterations``.
    """
    if answers.num_labels != 2:
        raise EstimationError("one-coin EM handles binary answers only")
    if answers.num_answers == 0:
        raise EstimationError("empty answer matrix")
    if not 0.0 < prior_one < 1.0:
        raise ValueError("prior_one must lie strictly inside (0, 1)")

    workers = answers.worker_ids
    tasks = answers.task_ids
    quality = {w: float(initial_quality) for w in workers}
    posterior = {t: prior_one for t in tasks}

    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        # E-step: task posteriors under current qualities.
        for task in tasks:
            log_one = np.log(prior_one)
            log_zero = np.log(1.0 - prior_one)
            for worker, label in answers.answers_for(task).items():
                q = quality[worker]
                if label == 1:
                    log_one += np.log(q)
                    log_zero += np.log(1.0 - q)
                else:
                    log_one += np.log(1.0 - q)
                    log_zero += np.log(q)
            m = max(log_one, log_zero)
            p1 = np.exp(log_one - m)
            p0 = np.exp(log_zero - m)
            posterior[task] = float(p1 / (p0 + p1))

        # M-step: expected agreement per worker.
        max_change = 0.0
        for worker in workers:
            history = answers.answers_by(worker)
            agreement = 0.0
            for task, label in history.items():
                p1 = posterior[task]
                agreement += p1 if label == 1 else (1.0 - p1)
            new_q = float(np.clip(agreement / len(history), _CLAMP, 1 - _CLAMP))
            max_change = max(max_change, abs(new_q - quality[worker]))
            quality[worker] = new_q

        if max_change < tolerance:
            converged = True
            break

    return OneCoinResult(
        qualities=dict(quality),
        truth_posteriors=dict(posterior),
        iterations=iterations,
        converged=converged,
    )
