"""Dawid–Skene EM: confusion-matrix estimation (paper ref [1]).

The classic 1979 algorithm jointly estimates per-worker confusion
matrices and per-task label posteriors for multi-choice answers:

* E-step: ``Pr(t_task = j | answers)`` proportional to
  ``class_prior[j] * prod_workers C_w[j, label]``;
* M-step: ``C_w[j, k]`` becomes the posterior-weighted fraction of
  worker ``w``'s votes for ``k`` on tasks believed to be ``j``, and the
  class prior becomes the mean posterior.

Laplace smoothing keeps matrices strictly positive, which the bucketed
multiclass JQ estimator requires anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import EstimationError
from ..multiclass.confusion import ConfusionMatrix
from .answers import AnswerMatrix


@dataclass(frozen=True)
class DawidSkeneResult:
    """EM output: confusion matrices, class prior, task posteriors."""

    confusions: dict[str, ConfusionMatrix]
    class_prior: np.ndarray
    truth_posteriors: dict[str, np.ndarray]
    iterations: int
    converged: bool

    def map_truths(self) -> dict[str, int]:
        """MAP truth per task (ties to the smallest label)."""
        return {
            task: int(np.argmax(post))
            for task, post in self.truth_posteriors.items()
        }


def dawid_skene(
    answers: AnswerMatrix,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    smoothing: float = 0.01,
) -> DawidSkeneResult:
    """Run Dawid–Skene EM on a (possibly sparse) answer matrix.

    Initialization follows the original paper: task posteriors start at
    the per-task vote shares (a majority-vote soft labeling).
    """
    if answers.num_answers == 0:
        raise EstimationError("empty answer matrix")
    if smoothing <= 0.0:
        raise ValueError("smoothing must be positive (matrices must stay "
                         "strictly positive)")

    num_labels = answers.num_labels
    workers = answers.worker_ids
    tasks = answers.task_ids

    # Soft majority-vote initialization of the posteriors.
    posteriors: dict[str, np.ndarray] = {}
    for task in tasks:
        counts = np.zeros(num_labels)
        for label in answers.answers_for(task).values():
            counts[label] += 1.0
        posteriors[task] = counts / counts.sum()

    confusions: dict[str, np.ndarray] = {}
    class_prior = np.full(num_labels, 1.0 / num_labels)

    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        # M-step: confusion matrices and class prior from posteriors.
        for worker in workers:
            matrix = np.full((num_labels, num_labels), smoothing)
            for task, label in answers.answers_by(worker).items():
                matrix[:, label] += posteriors[task]
            confusions[worker] = matrix / matrix.sum(axis=1, keepdims=True)
        class_prior = np.mean([posteriors[t] for t in tasks], axis=0)
        class_prior = np.clip(class_prior, 1e-9, None)
        class_prior = class_prior / class_prior.sum()

        # E-step: refresh posteriors.
        max_change = 0.0
        for task in tasks:
            log_post = np.log(class_prior)
            for worker, label in answers.answers_for(task).items():
                log_post = log_post + np.log(confusions[worker][:, label])
            shifted = np.exp(log_post - log_post.max())
            new_post = shifted / shifted.sum()
            max_change = max(
                max_change, float(np.abs(new_post - posteriors[task]).max())
            )
            posteriors[task] = new_post

        if max_change < tolerance:
            converged = True
            break

    return DawidSkeneResult(
        confusions={
            worker: ConfusionMatrix(matrix)
            for worker, matrix in confusions.items()
        },
        class_prior=class_prior,
        truth_posteriors=dict(posteriors),
        iterations=iterations,
        converged=converged,
    )
