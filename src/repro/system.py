"""The Optimal Jury Selection System (OPTJS) facade — Figure 1.

One object wires the whole pipeline together for a task provider:

1. register the candidate worker pool (qualities and costs known in
   advance, Section 2.1);
2. generate a budget–quality table to choose a budget;
3. select the optimal jury for the chosen budget (simulated annealing
   under the Bayesian-Voting objective);
4. after the selected jurors vote, aggregate with Bayesian Voting —
   the Theorem-1 optimal strategy — and report the posterior.

Example
-------
>>> from repro import Worker, WorkerPool, OptimalJurySelectionSystem
>>> pool = WorkerPool([Worker("A", 0.77, 9), Worker("B", 0.7, 5)])
>>> system = OptimalJurySelectionSystem(pool, seed=7)
>>> result = system.select_jury(budget=14)
>>> verdict = system.decide(result.jury, votes=[1, 1])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .core.jury import Jury
from .core.task import UNINFORMATIVE_PRIOR, validate_prior
from .core.worker import WorkerPool
from .selection.annealing import AnnealingSelector
from .selection.base import JQObjective, SelectionResult
from .selection.budget_table import BudgetQualityTable, budget_quality_table
from .selection.exhaustive import ExhaustiveSelector
from .selection.special_cases import (
    select_all_if_unconstrained,
    select_top_k_uniform_cost,
)
from .voting.bayesian import BayesianVoting


@dataclass(frozen=True)
class Verdict:
    """The aggregated answer for one task.

    Attributes
    ----------
    answer:
        The estimated true answer (0 or 1) under Bayesian Voting.
    posterior_zero:
        ``Pr(t = 0 | V)`` — the provider-facing confidence.
    votes:
        The votes that produced the verdict.
    """

    answer: int
    posterior_zero: float
    votes: tuple[int, ...]

    @property
    def confidence(self) -> float:
        """Posterior probability of the returned answer."""
        return self.posterior_zero if self.answer == 0 else 1.0 - self.posterior_zero


class OptimalJurySelectionSystem:
    """OPTJS: jury selection and aggregation under Bayesian Voting.

    Parameters
    ----------
    pool:
        Candidate workers with known qualities and costs.
    alpha:
        The provider's prior ``Pr(t = 0)`` for the task (Section 4.5);
        folded into both selection and aggregation.
    num_buckets:
        Bucket resolution for large-jury JQ estimation.
    seed:
        Seed for the stochastic annealer; fixed seeds give reproducible
        selections.
    exact_pool_cutoff:
        Pools at or below this size are solved exactly by enumeration
        instead of annealing (free optimality for small problems).
    """

    def __init__(
        self,
        pool: WorkerPool,
        alpha: float = UNINFORMATIVE_PRIOR,
        num_buckets: int = 50,
        seed: int | None = None,
        exact_pool_cutoff: int = 12,
    ) -> None:
        self.pool = pool
        self.alpha = validate_prior(alpha)
        self.num_buckets = num_buckets
        self._rng = np.random.default_rng(seed)
        self._strategy = BayesianVoting()
        self._objective = JQObjective(
            self._strategy, alpha=self.alpha, num_buckets=num_buckets
        )
        self._annealer = AnnealingSelector(self._objective)
        self._exhaustive = ExhaustiveSelector(self._objective)
        self.exact_pool_cutoff = exact_pool_cutoff

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select_jury(self, budget: float) -> SelectionResult:
        """Solve JSP for one budget.

        Applies the Lemma-backed special cases first (whole pool when
        affordable; top-k under uniform costs), exhaustive search for
        small pools, and simulated annealing otherwise.
        """
        shortcut = select_all_if_unconstrained(self.pool, budget)
        if shortcut is None:
            shortcut = select_top_k_uniform_cost(self.pool, budget)
        if shortcut is not None:
            self._objective.reset_counter()
            jq = self._objective(shortcut)
            return SelectionResult(
                jury=shortcut,
                jq=jq,
                cost=shortcut.cost,
                budget=float(budget),
                evaluations=1,
                selector="special-case",
            )
        if len(self.pool) <= self.exact_pool_cutoff:
            return self._exhaustive.select(self.pool, budget, rng=self._rng)
        return self._annealer.select(self.pool, budget, rng=self._rng)

    def budget_quality_table(
        self, budgets: Sequence[float]
    ) -> BudgetQualityTable:
        """The Figure-1 table over the provider's candidate budgets."""
        selector = (
            self._exhaustive
            if len(self.pool) <= self.exact_pool_cutoff
            else self._annealer
        )
        return budget_quality_table(self.pool, budgets, selector, rng=self._rng)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def decide(self, jury: Jury, votes: Sequence[int]) -> Verdict:
        """Aggregate the jury's votes with Bayesian Voting."""
        answer = self._strategy.decide(votes, jury, self.alpha)
        posterior = self._strategy.posterior(votes, jury, self.alpha)[0]
        return Verdict(answer=answer, posterior_zero=posterior, votes=tuple(votes))

    def predicted_quality(self, jury: Jury) -> float:
        """The JQ the provider should expect from this jury (the
        quantity Figure 10(d) validates against realized accuracy)."""
        return self._objective(jury)
