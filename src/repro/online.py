"""Online (sequential) vote collection with a confidence stopping rule.

The paper selects a jury *before* any votes arrive.  Its related work
(CDAS [25], Section 8) points at the complementary online regime: ask
workers one at a time and *stop early* once the Bayesian posterior is
confident enough, saving budget on easy tasks.  This module implements
that regime on top of the library's BV machinery:

* :class:`OnlineDecisionSession` — feed votes one by one; after each
  vote the session updates the BV posterior, the realized cost and the
  stopping condition.
* :func:`run_online` — drive a session from a quality-ordered worker
  queue against a vote supplier (e.g. a simulated campaign's arrival
  order), with both a confidence target and a budget cap.

The stopping rule is exact, not heuristic: BV's posterior *is* the
probability that the current verdict is correct under the model, so
"stop when confidence >= tau" directly controls expected accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from .core.task import UNINFORMATIVE_PRIOR, validate_prior
from .core.worker import Worker
from .voting.bayesian import posterior_zero


@dataclass(frozen=True)
class OnlineOutcome:
    """Result of one online decision.

    Attributes
    ----------
    answer:
        The verdict (0/1) at stopping time.
    confidence:
        BV posterior probability of the verdict.
    votes_used:
        How many votes were consumed.
    cost:
        Total cost of the consulted workers.
    stopped_early:
        True when the confidence target fired before the queue (or the
        budget) ran out.
    history:
        Confidence trajectory after each vote, for diagnostics.
    """

    answer: int
    confidence: float
    votes_used: int
    cost: float
    stopped_early: bool
    history: tuple[float, ...]


class OnlineDecisionSession:
    """Incremental Bayesian aggregation for one decision task.

    Feed ``(worker, vote)`` pairs through :meth:`add_vote`; the session
    maintains the exact posterior (equivalent to rerunning BV on the
    full vote vector, but O(1) per vote in the log domain).
    """

    def __init__(
        self,
        alpha: float = UNINFORMATIVE_PRIOR,
        confidence_target: float = 0.95,
        budget: float = np.inf,
    ) -> None:
        if not 0.5 <= confidence_target <= 1.0:
            raise ValueError("confidence_target must lie in [0.5, 1]")
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.alpha = validate_prior(alpha)
        self.confidence_target = confidence_target
        self.budget = budget
        self._qualities: list[float] = []
        self._votes: list[int] = []
        self._cost = 0.0
        self._history: list[float] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        return self._cost

    @property
    def votes_used(self) -> int:
        return len(self._votes)

    @property
    def posterior_zero(self) -> float:
        """Current ``Pr(t = 0 | votes so far)``."""
        if not self._votes:
            return self.alpha
        return posterior_zero(self._votes, self._qualities, self.alpha)

    @property
    def answer(self) -> int:
        """The current BV verdict (ties to 0, Theorem 1)."""
        return 0 if self.posterior_zero >= 0.5 else 1

    @property
    def confidence(self) -> float:
        """Posterior probability of the current verdict."""
        p0 = self.posterior_zero
        return max(p0, 1.0 - p0)

    @property
    def should_stop(self) -> bool:
        """True when the confidence target has been met."""
        return self.confidence >= self.confidence_target

    def can_afford(self, worker: Worker) -> bool:
        return self._cost + worker.cost <= self.budget + 1e-12

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_vote(self, worker: Worker, vote: int) -> float:
        """Record a vote and return the new confidence.

        Raises ``ValueError`` on an unaffordable worker or an invalid
        vote — callers should check :attr:`can_afford` first.
        """
        if vote not in (0, 1):
            raise ValueError(f"vote must be 0 or 1, got {vote!r}")
        if not self.can_afford(worker):
            raise ValueError(
                f"worker {worker.worker_id!r} (cost {worker.cost:g}) "
                f"exceeds remaining budget {self.budget - self._cost:g}"
            )
        self._qualities.append(worker.quality)
        self._votes.append(int(vote))
        self._cost += worker.cost
        confidence = self.confidence
        self._history.append(confidence)
        return confidence

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything needed to resume the session mid-decision."""
        budget = self.budget
        return {
            "alpha": self.alpha,
            "confidence_target": self.confidence_target,
            "budget": None if np.isinf(budget) else budget,
            "qualities": list(self._qualities),
            "votes": list(self._votes),
            "cost": self._cost,
            "history": list(self._history),
        }

    @classmethod
    def from_state(cls, state) -> "OnlineDecisionSession":
        budget = state["budget"]
        session = cls(
            alpha=float(state["alpha"]),
            confidence_target=float(state["confidence_target"]),
            budget=np.inf if budget is None else float(budget),
        )
        session._qualities = [float(q) for q in state["qualities"]]
        session._votes = [int(v) for v in state["votes"]]
        session._cost = float(state["cost"])
        session._history = [float(c) for c in state["history"]]
        return session

    def outcome(self, stopped_early: bool = False) -> OnlineOutcome:
        """Freeze the session into an :class:`OnlineOutcome`."""
        return OnlineOutcome(
            answer=self.answer,
            confidence=self.confidence,
            votes_used=self.votes_used,
            cost=self._cost,
            stopped_early=stopped_early,
            history=tuple(self._history),
        )


VoteSupplier = Callable[[Worker], int]


def run_online(
    workers: Iterable[Worker],
    get_vote: VoteSupplier,
    alpha: float = UNINFORMATIVE_PRIOR,
    confidence_target: float = 0.95,
    budget: float = np.inf,
) -> OnlineOutcome:
    """Consult workers in order until confident, broke, or exhausted.

    Parameters
    ----------
    workers:
        The consultation order.  Sorting by descending quality is the
        natural policy (Lemma 2: better workers move the posterior
        further per dollar); any order works.
    get_vote:
        Callback producing the worker's vote (a live platform call, or
        a lookup into recorded data).
    alpha / confidence_target / budget:
        Session parameters; see :class:`OnlineDecisionSession`.
    """
    session = OnlineDecisionSession(alpha, confidence_target, budget)
    for worker in workers:
        if session.should_stop:
            return session.outcome(stopped_early=True)
        if not session.can_afford(worker):
            continue  # maybe a cheaper later worker still fits
        session.add_vote(worker, get_vote(worker))
    return session.outcome(stopped_early=session.should_stop)
