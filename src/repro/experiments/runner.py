"""Shared experiment plumbing: seeding and repetition.

The paper repeats each synthetic experiment 1,000 times and reports
averages.  The drivers here accept a ``reps`` parameter (benchmarks use
small defaults to keep wall-clock sane; EXPERIMENTS.md records runs at
higher reps) and derive *independent, reproducible* per-repetition RNGs
from one seed via numpy's ``SeedSequence.spawn``.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(s) for s in children]


def mean_over_reps(
    fn: Callable[[np.random.Generator], float],
    reps: int,
    seed: int | None = None,
) -> float:
    """Average ``fn(rng)`` over ``reps`` independent repetitions."""
    if reps < 1:
        raise ValueError("reps must be >= 1")
    rngs = spawn_rngs(seed, reps)
    return float(np.mean([fn(rng) for rng in rngs]))


def collect_over_reps(
    fn: Callable[[np.random.Generator], T],
    reps: int,
    seed: int | None = None,
) -> list[T]:
    """Gather ``fn(rng)`` across ``reps`` independent repetitions."""
    if reps < 1:
        raise ValueError("reps must be >= 1")
    return [fn(rng) for rng in spawn_rngs(seed, reps)]
