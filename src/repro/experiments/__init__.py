"""Experiment drivers: one function per paper table/figure.

Each ``run_*`` returns an :class:`ExperimentResult` (or
:class:`HistogramResult` / budget table) whose ``render()`` prints the
series the paper plots.  Benchmarks under ``benchmarks/`` call these
with scaled-down repetitions; EXPERIMENTS.md records reference runs.
"""

from .fig1 import (
    FIGURE1_BUDGETS,
    FIGURE1_EXPECTED_JQ,
    FIGURE1_WORKERS,
    figure1_pool,
    run_fig1,
)
from .fig6 import run_fig6a, run_fig6b, run_fig6c, run_fig6d
from .fig7 import run_fig7a, run_fig7b, run_table3
from .fig8 import run_fig8a, run_fig8b
from .fig9 import run_fig9a, run_fig9b, run_fig9c, run_fig9d
from .fig10 import (
    run_fig10a,
    run_fig10b,
    run_fig10c,
    run_fig10d,
    simulate_campaign,
)
from .reporting import ExperimentResult, HistogramResult, SweepSeries
from .runner import collect_over_reps, mean_over_reps, spawn_rngs

__all__ = [
    "ExperimentResult",
    "FIGURE1_BUDGETS",
    "FIGURE1_EXPECTED_JQ",
    "FIGURE1_WORKERS",
    "HistogramResult",
    "SweepSeries",
    "collect_over_reps",
    "figure1_pool",
    "mean_over_reps",
    "run_fig1",
    "run_fig6a",
    "run_fig6b",
    "run_fig6c",
    "run_fig6d",
    "run_fig7a",
    "run_fig7b",
    "run_fig8a",
    "run_fig8b",
    "run_fig9a",
    "run_fig9b",
    "run_fig9c",
    "run_fig9d",
    "run_fig10a",
    "run_fig10b",
    "run_fig10c",
    "run_fig10d",
    "run_table3",
    "simulate_campaign",
    "spawn_rngs",
]
