"""Result containers and ASCII rendering for the experiment drivers.

Every experiment returns an :class:`ExperimentResult`: a set of named
series over a shared x-axis, plus free-form notes.  ``render()``
produces the plain-text table the benchmarks print — the library's
stand-in for the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SweepSeries:
    """One named curve: y-values over the experiment's x-axis."""

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", tuple(float(v) for v in self.values)
        )


@dataclass(frozen=True)
class ExperimentResult:
    """A rendered-friendly experiment outcome.

    Attributes
    ----------
    experiment_id:
        Paper anchor, e.g. ``"fig6a"`` or ``"table3"``.
    title:
        Human-readable description.
    x_label / xs:
        The swept parameter and its values.
    series:
        One :class:`SweepSeries` per curve, all aligned with ``xs``.
    notes:
        Provenance: repetitions, seeds, scaled-down parameters.
    """

    experiment_id: str
    title: str
    x_label: str
    xs: tuple[float, ...]
    series: tuple[SweepSeries, ...]
    notes: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "xs", tuple(float(x) for x in self.xs))
        for s in self.series:
            if len(s.values) != len(self.xs):
                raise ValueError(
                    f"series {s.name!r} has {len(s.values)} values for "
                    f"{len(self.xs)} x points"
                )

    def series_by_name(self, name: str) -> SweepSeries:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)

    def render(self, precision: int = 4) -> str:
        """Plain-text table: x column plus one column per series."""
        headers = [self.x_label] + [s.name for s in self.series]
        rows = []
        for i, x in enumerate(self.xs):
            row = [_format_number(x, precision)]
            row.extend(
                _format_number(s.values[i], precision) for s in self.series
            )
            rows.append(row)
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows))
            for c in range(len(headers))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(
            " | ".join(h.rjust(w) for h, w in zip(headers, widths))
        )
        lines.append("-+-".join("-" * w for w in widths))
        for row in rows:
            lines.append(
                " | ".join(v.rjust(w) for v, w in zip(row, widths))
            )
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


def _format_number(value: float, precision: int) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{precision}f}"


@dataclass(frozen=True)
class HistogramResult:
    """A binned distribution (Table 3 and Figure 9(c) style)."""

    experiment_id: str
    title: str
    bin_labels: tuple[str, ...]
    counts: tuple[int, ...]
    notes: str = ""

    def __post_init__(self) -> None:
        if len(self.bin_labels) != len(self.counts):
            raise ValueError("bin_labels and counts must align")

    @property
    def total(self) -> int:
        return sum(self.counts)

    def render(self) -> str:
        width = max(len(label) for label in self.bin_labels)
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for label, count in zip(self.bin_labels, self.counts):
            share = count / self.total if self.total else 0.0
            bar = "#" * round(40 * share)
            lines.append(f"{label.rjust(width)} | {count:>7d} {bar}")
        lines.append(f"{'total'.rjust(width)} | {self.total:>7d}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)
