"""Figure 6: end-to-end system comparison, OPTJS versus MVJS.

Each sub-figure sweeps one generator/selection parameter over fresh
synthetic pools (Section 6.1.1) and reports the average delivered JQ of
the two systems: OPTJS selects and aggregates under Bayesian Voting,
MVJS under Majority Voting — each system is scored under its own
strategy, matching the end-to-end reading of "measuring the JQ on the
returned jury sets".

* 6(a): quality mean mu in [0.5, 1]
* 6(b): budget B in [0.1, 1]
* 6(c): pool size N in [10, 100]
* 6(d): cost standard deviation in [0.1, 1]

Defaults use fewer repetitions than the paper's 1,000 (benchmarks need
sane wall-clock); pass ``reps`` to scale up.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..selection.annealing import AnnealingSelector
from ..selection.base import JQObjective
from ..selection.mvjs import MVJSSelector
from ..simulation.synthetic import SyntheticPoolConfig, generate_pool
from .reporting import ExperimentResult, SweepSeries
from .runner import spawn_rngs

DEFAULT_MUS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
DEFAULT_BUDGETS = (0.1, 0.25, 0.5, 0.75, 1.0)
DEFAULT_POOL_SIZES = (10, 25, 50, 75, 100)
DEFAULT_COST_SDS = (0.1, 0.25, 0.5, 0.75, 1.0)


def _one_comparison(
    config: SyntheticPoolConfig,
    budget: float,
    rng: np.random.Generator,
    epsilon: float,
) -> tuple[float, float]:
    """(OPTJS JQ, MVJS JQ) on one freshly generated pool."""
    pool = generate_pool(config, rng)
    optjs = AnnealingSelector(JQObjective(), epsilon=epsilon)
    mvjs = MVJSSelector(epsilon=epsilon)
    opt_result = optjs.select(pool, budget, rng=rng)
    mv_result = mvjs.select(pool, budget, rng=rng)
    return opt_result.jq, mv_result.jq


def _sweep(
    experiment_id: str,
    title: str,
    x_label: str,
    xs: Sequence[float],
    make_config,
    make_budget,
    reps: int,
    seed: int | None,
    epsilon: float,
) -> ExperimentResult:
    opt_means = []
    mv_means = []
    for index, x in enumerate(xs):
        # Each x-point gets independent repetitions, deterministically
        # derived from (seed, point index).
        rngs = (
            spawn_rngs(None, reps)
            if seed is None
            else [
                np.random.default_rng(s)
                for s in np.random.SeedSequence((seed, index)).spawn(reps)
            ]
        )
        pairs = [
            _one_comparison(make_config(x), make_budget(x), rng, epsilon)
            for rng in rngs
        ]
        opt_means.append(float(np.mean([p[0] for p in pairs])))
        mv_means.append(float(np.mean([p[1] for p in pairs])))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        xs=tuple(float(x) for x in xs),
        series=(
            SweepSeries("OPTJS", tuple(opt_means)),
            SweepSeries("MVJS", tuple(mv_means)),
        ),
        notes=f"reps={reps}, seed={seed}, sa_epsilon={epsilon:g}",
    )


def run_fig6a(
    mus: Sequence[float] = DEFAULT_MUS,
    reps: int = 5,
    seed: int | None = 0,
    epsilon: float = 1e-8,
) -> ExperimentResult:
    """Vary the worker-quality mean (Figure 6(a))."""
    return _sweep(
        "fig6a",
        "OPTJS vs MVJS, varying quality mean",
        "mu",
        mus,
        lambda mu: SyntheticPoolConfig(quality_mean=float(mu)),
        lambda mu: 0.5,
        reps,
        seed,
        epsilon,
    )


def run_fig6b(
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    reps: int = 5,
    seed: int | None = 0,
    epsilon: float = 1e-8,
) -> ExperimentResult:
    """Vary the budget (Figure 6(b))."""
    return _sweep(
        "fig6b",
        "OPTJS vs MVJS, varying budget",
        "B",
        budgets,
        lambda b: SyntheticPoolConfig(),
        lambda b: float(b),
        reps,
        seed,
        epsilon,
    )


def run_fig6c(
    pool_sizes: Sequence[int] = DEFAULT_POOL_SIZES,
    reps: int = 5,
    seed: int | None = 0,
    epsilon: float = 1e-8,
) -> ExperimentResult:
    """Vary the candidate-pool size (Figure 6(c))."""
    return _sweep(
        "fig6c",
        "OPTJS vs MVJS, varying pool size",
        "N",
        pool_sizes,
        lambda n: SyntheticPoolConfig(num_workers=int(n)),
        lambda n: 0.5,
        reps,
        seed,
        epsilon,
    )


def run_fig6d(
    cost_sds: Sequence[float] = DEFAULT_COST_SDS,
    reps: int = 5,
    seed: int | None = 0,
    epsilon: float = 1e-8,
) -> ExperimentResult:
    """Vary the cost standard deviation (Figure 6(d))."""
    return _sweep(
        "fig6d",
        "OPTJS vs MVJS, varying cost std",
        "cost_sd",
        cost_sds,
        lambda sd: SyntheticPoolConfig(cost_sd=float(sd)),
        lambda sd: 0.5,
        reps,
        seed,
        epsilon,
    )
