"""Figure 10: the (simulated) real-data evaluation.

One AMT campaign (see :mod:`repro.simulation.amt` for the calibration
to the paper's published statistics) supplies per-question candidate
sets of the 20 workers who answered each question, with empirically
estimated qualities — exactly the Section-6.2.2 setup.

* 10(a): OPTJS vs MVJS average JQ, varying the budget.
* 10(b): same, varying the candidate-set size N (first N answerers).
* 10(c): same, varying the synthetic-cost standard deviation.
* 10(d): is JQ a good prediction?  Average *predicted* JQ of the first
  z answerers versus the *realized* accuracy of Bayesian Voting on
  their actual votes, as z grows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..quality.bucket import estimate_jq
from ..selection.annealing import AnnealingSelector
from ..selection.base import JQObjective
from ..selection.mvjs import MVJSSelector
from ..simulation.amt import AMTConfig, AMTSimulator, Campaign
from ..voting.bayesian import BayesianVoting
from .reporting import ExperimentResult, SweepSeries

DEFAULT_BUDGETS = (0.2, 0.4, 0.6, 0.8, 1.0)
DEFAULT_POOL_SIZES = (4, 8, 12, 16, 20)
DEFAULT_COST_SDS = (0.1, 0.25, 0.5, 0.75, 1.0)
DEFAULT_Z_VALUES = (3, 6, 9, 12, 15, 18, 20)


def simulate_campaign(seed: int | None = 0) -> Campaign:
    """One simulated AMT campaign with the paper's configuration."""
    return AMTSimulator(AMTConfig(), np.random.default_rng(seed)).run()


def _system_comparison(
    campaign: Campaign,
    budget: float,
    num_questions: int,
    seed: int | None,
    cost_sd: float = 0.2,
    pool_limit: int | None = None,
    epsilon: float = 1e-6,
) -> tuple[float, float]:
    """Average (OPTJS, MVJS) JQ over a sample of questions."""
    qualities = campaign.estimated_qualities()
    rng = np.random.default_rng(seed)
    task_ids = sorted(campaign.tasks)
    chosen = rng.choice(len(task_ids), size=min(num_questions, len(task_ids)),
                        replace=False)
    optjs_scores = []
    mvjs_scores = []
    for i in chosen:
        task_id = task_ids[int(i)]
        pool = campaign.candidate_pool(
            task_id, qualities, cost_sd=cost_sd, rng=rng, limit=pool_limit
        )
        if len(pool) == 0:
            continue
        optjs = AnnealingSelector(JQObjective(), epsilon=epsilon)
        mvjs = MVJSSelector(epsilon=epsilon)
        optjs_scores.append(optjs.select(pool, budget, rng=rng).jq)
        mvjs_scores.append(mvjs.select(pool, budget, rng=rng).jq)
    return float(np.mean(optjs_scores)), float(np.mean(mvjs_scores))


def run_fig10a(
    campaign: Campaign | None = None,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    num_questions: int = 40,
    seed: int | None = 0,
) -> ExperimentResult:
    """OPTJS vs MVJS on the campaign, varying the budget."""
    if campaign is None:
        campaign = simulate_campaign(seed)
    opt, mv = [], []
    for index, budget in enumerate(budgets):
        o, m = _system_comparison(
            campaign, float(budget), num_questions, (seed or 0) + index
        )
        opt.append(o)
        mv.append(m)
    return ExperimentResult(
        experiment_id="fig10a",
        title="Real-data (simulated AMT): OPTJS vs MVJS, varying budget",
        x_label="B",
        xs=tuple(float(b) for b in budgets),
        series=(SweepSeries("OPTJS", tuple(opt)), SweepSeries("MVJS", tuple(mv))),
        notes=f"questions/point={num_questions}, seed={seed}",
    )


def run_fig10b(
    campaign: Campaign | None = None,
    pool_sizes: Sequence[int] = DEFAULT_POOL_SIZES,
    budget: float = 0.5,
    num_questions: int = 40,
    seed: int | None = 0,
) -> ExperimentResult:
    """OPTJS vs MVJS, varying the per-question candidate-set size."""
    if campaign is None:
        campaign = simulate_campaign(seed)
    opt, mv = [], []
    for index, n in enumerate(pool_sizes):
        o, m = _system_comparison(
            campaign,
            budget,
            num_questions,
            (seed or 0) + index,
            pool_limit=int(n),
        )
        opt.append(o)
        mv.append(m)
    return ExperimentResult(
        experiment_id="fig10b",
        title="Real-data (simulated AMT): OPTJS vs MVJS, varying N",
        x_label="N",
        xs=tuple(float(n) for n in pool_sizes),
        series=(SweepSeries("OPTJS", tuple(opt)), SweepSeries("MVJS", tuple(mv))),
        notes=f"B={budget}, questions/point={num_questions}, seed={seed}",
    )


def run_fig10c(
    campaign: Campaign | None = None,
    cost_sds: Sequence[float] = DEFAULT_COST_SDS,
    budget: float = 0.5,
    num_questions: int = 40,
    seed: int | None = 0,
) -> ExperimentResult:
    """OPTJS vs MVJS, varying the synthetic-cost standard deviation."""
    if campaign is None:
        campaign = simulate_campaign(seed)
    opt, mv = [], []
    for index, sd in enumerate(cost_sds):
        o, m = _system_comparison(
            campaign,
            budget,
            num_questions,
            (seed or 0) + index,
            cost_sd=float(sd),
        )
        opt.append(o)
        mv.append(m)
    return ExperimentResult(
        experiment_id="fig10c",
        title="Real-data (simulated AMT): OPTJS vs MVJS, varying cost std",
        x_label="cost_sd",
        xs=tuple(float(s) for s in cost_sds),
        series=(SweepSeries("OPTJS", tuple(opt)), SweepSeries("MVJS", tuple(mv))),
        notes=f"B={budget}, questions/point={num_questions}, seed={seed}",
    )


def run_fig10d(
    campaign: Campaign | None = None,
    z_values: Sequence[int] = DEFAULT_Z_VALUES,
    num_questions: int = 200,
    seed: int | None = 0,
    num_buckets: int = 200,
) -> ExperimentResult:
    """Is JQ a good prediction of realized BV accuracy? (Figure 10(d))

    For each question and each prefix length z of its answer arrival
    order: the *predicted* JQ of the first z answerers (from their
    estimated qualities) versus the *realized* correctness of BV on
    their actual votes.  The paper finds the two curves "highly
    similar".
    """
    if campaign is None:
        campaign = simulate_campaign(seed)
    qualities = campaign.estimated_qualities()
    truth = campaign.ground_truth()
    strategy = BayesianVoting()
    rng = np.random.default_rng(seed)
    task_ids = sorted(campaign.tasks)
    chosen = rng.choice(
        len(task_ids), size=min(num_questions, len(task_ids)), replace=False
    )

    predicted = []
    realized = []
    for z in z_values:
        z = int(z)
        jq_values = []
        correct = []
        for i in chosen:
            task_id = task_ids[int(i)]
            prefix = campaign.vote_order[task_id][:z]
            quality_vec = [qualities[w] for w, _ in prefix if w in qualities]
            votes = [label for w, label in prefix if w in qualities]
            if not quality_vec:
                continue
            jq_values.append(
                estimate_jq(quality_vec, num_buckets=num_buckets)
            )
            decided = strategy.decide(votes, quality_vec, 0.5)
            correct.append(1.0 if decided == truth[task_id] else 0.0)
        predicted.append(float(np.mean(jq_values)))
        realized.append(float(np.mean(correct)))
    return ExperimentResult(
        experiment_id="fig10d",
        title="Predicted JQ vs realized BV accuracy, varying #votes z",
        x_label="z",
        xs=tuple(float(z) for z in z_values),
        series=(
            SweepSeries("Average JQ", tuple(predicted)),
            SweepSeries("Accuracy", tuple(realized)),
        ),
        notes=f"questions={num_questions}, seed={seed}",
    )
