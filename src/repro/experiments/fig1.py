"""Figure 1: the running example and its budget–quality table.

Seven named workers A-G with the paper's (quality, cost) pairs; the
expected table (from the paper's Figure 1) is::

    Budget  Optimal Jury     Quality  Required
    5       {F, G}           75%      5
    10      {C, G}           80%      9
    15      {B, C, G}        84.5%    14
    20     {A, C, F, G}      86.95%   20

(Budget 10 admits several 80% juries — any pair containing C — so the
selected ids may differ while the JQ matches.)
"""

from __future__ import annotations

import numpy as np

from ..core.worker import Worker, WorkerPool
from ..selection.base import JQObjective
from ..selection.budget_table import BudgetQualityTable, budget_quality_table
from ..selection.exhaustive import ExhaustiveSelector

#: The paper's worker roster: (id, quality, cost).
FIGURE1_WORKERS = (
    ("A", 0.77, 9.0),
    ("B", 0.70, 5.0),
    ("C", 0.80, 6.0),
    ("D", 0.65, 7.0),
    ("E", 0.60, 5.0),
    ("F", 0.60, 2.0),
    ("G", 0.75, 3.0),
)

#: The budgets of the Figure-1 table.
FIGURE1_BUDGETS = (5.0, 10.0, 15.0, 20.0)

#: The JQ column of the paper's table, for verification.
FIGURE1_EXPECTED_JQ = (0.75, 0.80, 0.845, 0.8695)


def figure1_pool() -> WorkerPool:
    """The seven-worker candidate pool of Figure 1."""
    return WorkerPool(Worker(w, q, c) for w, q, c in FIGURE1_WORKERS)


def run_fig1(seed: int | None = 0) -> BudgetQualityTable:
    """Regenerate the Figure-1 budget–quality table exactly (the pool
    is small enough for exhaustive search)."""
    selector = ExhaustiveSelector(JQObjective())
    return budget_quality_table(
        figure1_pool(),
        FIGURE1_BUDGETS,
        selector,
        rng=np.random.default_rng(seed),
    )
