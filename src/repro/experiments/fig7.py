"""Figure 7 and Table 3: quality and efficiency of the annealer.

* 7(a): at N = 11 (small enough for exhaustive ground truth), compare
  ``JQ(J*)`` with ``JQ(J-hat)`` returned by simulated annealing while
  the budget sweeps [0.05, 0.5].
* 7(b): annealer wall-clock versus pool size for several budgets
  (the paper sweeps N in [100, 500]; the default here is scaled down,
  pass ``pool_sizes`` to reproduce the full range).
* Table 3: the distribution of the optimality gap
  ``JQ(J*) - JQ(J-hat)`` (in percentage points) across all repetitions
  of the 7(a) sweep.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..selection.annealing import AnnealingSelector
from ..selection.base import JQObjective
from ..selection.exhaustive import ExhaustiveSelector
from ..simulation.synthetic import SyntheticPoolConfig, generate_pool
from .reporting import ExperimentResult, HistogramResult, SweepSeries
from .runner import spawn_rngs

DEFAULT_7A_BUDGETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5)
DEFAULT_7B_POOL_SIZES = (50, 100, 150, 200)
DEFAULT_7B_BUDGETS = (0.05, 0.5)

#: Table 3's bin edges, in percentage points of JQ difference.
TABLE3_EDGES = (0.0, 0.01, 0.1, 1.0, 3.0)
TABLE3_LABELS = (
    "[0, 0.01]",
    "(0.01, 0.1]",
    "(0.1, 1]",
    "(1, 3]",
    "(3, +inf)",
)


def _gap_samples(
    budgets: Sequence[float],
    reps: int,
    seed: int | None,
    pool_size: int,
    restarts: int,
    neighborhood: str = "sequential",
) -> tuple[list[float], list[float], list[float]]:
    """(budgets expanded, optimal JQs, annealed JQs) per repetition.

    ``restarts=3`` is the default for these experiments: the folded
    Gaussian costs used by our generator (see
    :func:`repro.simulation.synthetic.generate_costs`) create tighter
    swap landscapes than the paper's, and multi-start annealing
    restores the Table-3 gap concentration.

    ``neighborhood`` selects the annealing chain:  ``"sequential"``
    (the paper's Algorithm 3) or ``"batched"`` (the full-neighborhood
    sweep of :func:`repro.selection.annealing.anneal_subset_batched`)
    — the knob the batched-selector error evaluation sweeps.
    """
    xs: list[float] = []
    optimal: list[float] = []
    annealed: list[float] = []
    objective = JQObjective()
    for index, budget in enumerate(budgets):
        rngs = (
            spawn_rngs(None, reps)
            if seed is None
            else [
                np.random.default_rng(s)
                for s in np.random.SeedSequence((seed, index)).spawn(reps)
            ]
        )
        for rng in rngs:
            pool = generate_pool(
                SyntheticPoolConfig(num_workers=pool_size), rng
            )
            exact = ExhaustiveSelector(objective).select(pool, budget)
            sa = AnnealingSelector(
                objective, restarts=restarts, neighborhood=neighborhood
            ).select(pool, budget, rng=rng)
            xs.append(float(budget))
            optimal.append(exact.jq)
            annealed.append(sa.jq)
    return xs, optimal, annealed


def run_fig7a(
    budgets: Sequence[float] = DEFAULT_7A_BUDGETS,
    reps: int = 5,
    seed: int | None = 0,
    pool_size: int = 11,
    restarts: int = 3,
) -> ExperimentResult:
    """SA jury quality versus the exhaustive optimum (Figure 7(a))."""
    xs, optimal, annealed = _gap_samples(
        budgets, reps, seed, pool_size, restarts
    )
    opt_means = []
    sa_means = []
    for budget in budgets:
        mask = [i for i, x in enumerate(xs) if x == float(budget)]
        opt_means.append(float(np.mean([optimal[i] for i in mask])))
        sa_means.append(float(np.mean([annealed[i] for i in mask])))
    return ExperimentResult(
        experiment_id="fig7a",
        title="JQ of optimal jury J* vs annealed jury J-hat",
        x_label="B",
        xs=tuple(float(b) for b in budgets),
        series=(
            SweepSeries("JQ(J*)", tuple(opt_means)),
            SweepSeries("JQ(J-hat)", tuple(sa_means)),
        ),
        notes=f"N={pool_size}, reps={reps}, seed={seed}",
    )


def run_table3(
    budgets: Sequence[float] = DEFAULT_7A_BUDGETS,
    reps: int = 20,
    seed: int | None = 0,
    pool_size: int = 11,
    restarts: int = 3,
    neighborhood: str = "sequential",
) -> HistogramResult:
    """Distribution of the SA optimality gap (Table 3).  Pass
    ``neighborhood="batched"`` to score the batched-kernel chain on the
    same benchmark (the ROADMAP's selector-default evaluation)."""
    _, optimal, annealed = _gap_samples(
        budgets, reps, seed, pool_size, restarts, neighborhood
    )
    gaps_pct = [
        max(o - a, 0.0) * 100.0 for o, a in zip(optimal, annealed)
    ]
    counts = [0] * len(TABLE3_LABELS)
    for gap in gaps_pct:
        if gap <= TABLE3_EDGES[1]:
            counts[0] += 1
        elif gap <= TABLE3_EDGES[2]:
            counts[1] += 1
        elif gap <= TABLE3_EDGES[3]:
            counts[2] += 1
        elif gap <= TABLE3_EDGES[4]:
            counts[3] += 1
        else:
            counts[4] += 1
    return HistogramResult(
        experiment_id="table3",
        title="SA optimality gap JQ(J*) - JQ(J-hat), percentage points",
        bin_labels=TABLE3_LABELS,
        counts=tuple(counts),
        notes=(
            f"N={pool_size}, budgets={tuple(budgets)}, reps={reps} each, "
            f"{neighborhood} chain"
        ),
    )


def run_fig7b(
    pool_sizes: Sequence[int] = DEFAULT_7B_POOL_SIZES,
    budgets: Sequence[float] = DEFAULT_7B_BUDGETS,
    seed: int | None = 0,
    epsilon: float = 1e-8,
) -> ExperimentResult:
    """Annealer wall-clock versus pool size (Figure 7(b)); one run per
    point (timing, not quality)."""
    series = []
    for budget in budgets:
        times = []
        for index, n in enumerate(pool_sizes):
            rng = np.random.default_rng(
                np.random.SeedSequence((seed or 0, index)).entropy
            )
            pool = generate_pool(SyntheticPoolConfig(num_workers=int(n)), rng)
            selector = AnnealingSelector(JQObjective(), epsilon=epsilon)
            start = time.perf_counter()
            selector.select(pool, float(budget), rng=rng)
            times.append(time.perf_counter() - start)
        series.append(SweepSeries(f"B={budget:g} (s)", tuple(times)))
    return ExperimentResult(
        experiment_id="fig7b",
        title="Annealer wall-clock vs pool size",
        x_label="N",
        xs=tuple(float(n) for n in pool_sizes),
        series=tuple(series),
        notes=f"seed={seed}, sa_epsilon={epsilon:g}",
    )
