"""Figure 8: JQ of the four strategies (MV, BV, RBV, RMV).

* 8(a): fixed jury size n = 11, quality mean mu sweeps [0.5, 1].
* 8(b): fixed mu = 0.7, jury size sweeps [1, 11].

Every JQ is computed *exactly*: the Poisson-binomial oracle for MV, the
closed form for BV, enumeration for RMV, and the constant 0.5 for RBV
(footnote 4).  Expected shape: BV dominates everywhere (Theorem 1), is
strikingly robust at mu = 0.5 (it exploits the below-0.5 tail via the
quality flip), RMV tracks the mean quality, and RBV pins at 50%.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..quality.exact import exact_jq, exact_jq_bv
from ..quality.majority import exact_jq_mv
from ..simulation.synthetic import generate_jury_qualities
from ..voting.randomized import RandomizedMajorityVoting
from .reporting import ExperimentResult, SweepSeries
from .runner import spawn_rngs

DEFAULT_MUS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
DEFAULT_SIZES = (1, 3, 5, 7, 9, 11)

_STRATEGY_NAMES = ("MV", "BV", "RBV", "RMV")


def _strategy_jqs(qualities: np.ndarray) -> dict[str, float]:
    """Exact JQ of the four Figure-8 strategies on one jury."""
    return {
        "MV": exact_jq_mv(qualities),
        "BV": exact_jq_bv(qualities),
        "RBV": 0.5,
        # RMV's JQ admits a closed form (mean quality), but we compute
        # it by enumeration so the generic randomized path is exercised.
        "RMV": exact_jq(qualities, RandomizedMajorityVoting()),
    }


def _mean_jqs(
    jury_size: int,
    mu: float,
    variance: float,
    reps: int,
    seed: int | None,
    index: int,
) -> dict[str, float]:
    rngs = (
        spawn_rngs(None, reps)
        if seed is None
        else [
            np.random.default_rng(s)
            for s in np.random.SeedSequence((seed, index)).spawn(reps)
        ]
    )
    sums = {name: 0.0 for name in _STRATEGY_NAMES}
    for rng in rngs:
        qualities = generate_jury_qualities(jury_size, mu, variance, rng)
        for name, jq in _strategy_jqs(qualities).items():
            sums[name] += jq
    return {name: total / reps for name, total in sums.items()}


def run_fig8a(
    mus: Sequence[float] = DEFAULT_MUS,
    jury_size: int = 11,
    variance: float = 0.05,
    reps: int = 20,
    seed: int | None = 0,
) -> ExperimentResult:
    """JQ per strategy, varying the quality mean (Figure 8(a))."""
    per_strategy: dict[str, list[float]] = {n: [] for n in _STRATEGY_NAMES}
    for index, mu in enumerate(mus):
        means = _mean_jqs(jury_size, float(mu), variance, reps, seed, index)
        for name in _STRATEGY_NAMES:
            per_strategy[name].append(means[name])
    return ExperimentResult(
        experiment_id="fig8a",
        title="JQ of MV/BV/RBV/RMV, varying quality mean",
        x_label="mu",
        xs=tuple(float(m) for m in mus),
        series=tuple(
            SweepSeries(name, tuple(per_strategy[name]))
            for name in _STRATEGY_NAMES
        ),
        notes=f"n={jury_size}, variance={variance}, reps={reps}, seed={seed}",
    )


def run_fig8b(
    sizes: Sequence[int] = DEFAULT_SIZES,
    mu: float = 0.7,
    variance: float = 0.05,
    reps: int = 20,
    seed: int | None = 0,
) -> ExperimentResult:
    """JQ per strategy, varying the jury size (Figure 8(b))."""
    per_strategy: dict[str, list[float]] = {n: [] for n in _STRATEGY_NAMES}
    for index, size in enumerate(sizes):
        means = _mean_jqs(int(size), mu, variance, reps, seed, index)
        for name in _STRATEGY_NAMES:
            per_strategy[name].append(means[name])
    return ExperimentResult(
        experiment_id="fig8b",
        title="JQ of MV/BV/RBV/RMV, varying jury size",
        x_label="n",
        xs=tuple(float(s) for s in sizes),
        series=tuple(
            SweepSeries(name, tuple(per_strategy[name]))
            for name in _STRATEGY_NAMES
        ),
        notes=f"mu={mu}, variance={variance}, reps={reps}, seed={seed}",
    )
