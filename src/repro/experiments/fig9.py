"""Figure 9: behaviour of the bucket JQ estimator (Algorithm 1).

* 9(a): JQ(BV) versus quality mean for several quality variances
  (higher variance helps at mu = 0.5 — more workers far from the
  coin-flip regime, on either side).
* 9(b): mean approximation error versus numBuckets.
* 9(c): histogram of errors at the default numBuckets = 50.
* 9(d): estimator wall-clock with and without Algorithm-2 pruning as
  the jury grows (map implementation, the one pruning applies to),
  plus the vectorized dense implementation as an extra series.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..quality.bucket import estimate_jq, estimate_jq_detailed
from ..quality.exact import exact_jq_bv
from ..simulation.synthetic import generate_jury_qualities
from .reporting import ExperimentResult, HistogramResult, SweepSeries
from .runner import spawn_rngs

DEFAULT_MUS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
DEFAULT_VARIANCES = (0.01, 0.03, 0.05, 0.10)
DEFAULT_BUCKET_COUNTS = (10, 25, 50, 100, 200)
DEFAULT_9D_SIZES = (50, 100, 150, 200)

_ERROR_BIN_EDGES = (0.0, 2e-5, 4e-5, 6e-5, 8e-5, 1e-4)


def _per_point_rngs(seed: int | None, index: int, reps: int):
    if seed is None:
        return spawn_rngs(None, reps)
    return [
        np.random.default_rng(s)
        for s in np.random.SeedSequence((seed, index)).spawn(reps)
    ]


def run_fig9a(
    mus: Sequence[float] = DEFAULT_MUS,
    variances: Sequence[float] = DEFAULT_VARIANCES,
    jury_size: int = 11,
    reps: int = 20,
    seed: int | None = 0,
) -> ExperimentResult:
    """JQ(J, BV, 0.5) versus mu for several quality variances."""
    columns: dict[float, list[float]] = {float(v): [] for v in variances}
    for index, mu in enumerate(mus):
        rngs = _per_point_rngs(seed, index, reps)
        for variance in variances:
            values = []
            for rng in rngs:
                qualities = generate_jury_qualities(
                    jury_size, float(mu), float(variance), rng
                )
                values.append(exact_jq_bv(qualities))
            columns[float(variance)].append(float(np.mean(values)))
    return ExperimentResult(
        experiment_id="fig9a",
        title="JQ(BV) vs quality mean, per quality variance",
        x_label="mu",
        xs=tuple(float(m) for m in mus),
        series=tuple(
            SweepSeries(f"var={v:g}", tuple(columns[float(v)]))
            for v in variances
        ),
        notes=f"n={jury_size}, reps={reps}, seed={seed}",
    )


def _approximation_errors(
    num_buckets: int,
    jury_size: int,
    reps: int,
    seed: int | None,
    index: int,
) -> list[float]:
    """Signed errors JQ - JQ-hat on random juries (exact minus bucket)."""
    errors = []
    for rng in _per_point_rngs(seed, index, reps):
        qualities = generate_jury_qualities(jury_size, 0.7, 0.05, rng)
        exact = exact_jq_bv(qualities)
        approx = estimate_jq(
            qualities, num_buckets=num_buckets, high_quality_shortcut=False
        )
        errors.append(exact - approx)
    return errors


def run_fig9b(
    bucket_counts: Sequence[int] = DEFAULT_BUCKET_COUNTS,
    jury_size: int = 11,
    reps: int = 50,
    seed: int | None = 0,
) -> ExperimentResult:
    """Mean |error| of the estimator versus numBuckets (Figure 9(b))."""
    means = []
    for index, num_buckets in enumerate(bucket_counts):
        errors = _approximation_errors(
            int(num_buckets), jury_size, reps, seed, index
        )
        means.append(float(np.mean(np.abs(errors))))
    return ExperimentResult(
        experiment_id="fig9b",
        title="Bucket-estimator approximation error vs numBuckets",
        x_label="numBuckets",
        xs=tuple(float(b) for b in bucket_counts),
        series=(SweepSeries("mean |JQ - JQhat|", tuple(means)),),
        notes=f"n={jury_size}, reps={reps}, seed={seed}",
    )


def run_fig9c(
    jury_size: int = 11,
    num_buckets: int = 50,
    reps: int = 200,
    seed: int | None = 0,
) -> HistogramResult:
    """Histogram of approximation errors at numBuckets = 50."""
    errors = np.abs(
        _approximation_errors(num_buckets, jury_size, reps, seed, 0)
    )
    edges = np.array(_ERROR_BIN_EDGES)
    counts = np.histogram(errors, bins=np.append(edges, np.inf))[0]
    labels = [
        f"[{lo:.0e}, {hi:.0e})" for lo, hi in zip(edges[:-1], edges[1:])
    ] + [f">= {edges[-1]:.0e}"]
    return HistogramResult(
        experiment_id="fig9c",
        title=f"|JQ - JQhat| at numBuckets={num_buckets}",
        bin_labels=tuple(labels),
        counts=tuple(int(c) for c in counts),
        notes=f"n={jury_size}, reps={reps}, seed={seed}",
    )


def run_fig9d(
    sizes: Sequence[int] = DEFAULT_9D_SIZES,
    num_buckets: int = 50,
    seed: int | None = 0,
    include_dense: bool = True,
) -> ExperimentResult:
    """Estimator wall-clock with/without pruning versus jury size.

    The paper sweeps n in [100, 500]; defaults here are scaled down for
    benchmark wall-clock — pass ``sizes=(100, 200, 300, 400, 500)`` to
    reproduce the full range.
    """
    rng = np.random.default_rng(seed)
    with_pruning = []
    without_pruning = []
    dense_times = []
    for n in sizes:
        # Clip qualities into [0.05, 0.95]: a large Gaussian jury almost
        # surely contains a worker beyond 0.99 on one side or the other
        # (a q ~ 0 worker canonicalizes to 1 - q ~ 1), which would trip
        # the Section-4.4 shortcut and measure nothing.  This experiment
        # times the full dynamic program.
        qualities = generate_jury_qualities(int(n), 0.7, 0.05, rng)
        qualities = np.clip(qualities, 0.05, 0.95)
        start = time.perf_counter()
        pruned = estimate_jq_detailed(
            qualities, num_buckets=num_buckets, pruning=True
        )
        with_pruning.append(time.perf_counter() - start)
        start = time.perf_counter()
        unpruned = estimate_jq_detailed(
            qualities, num_buckets=num_buckets, pruning=False
        )
        without_pruning.append(time.perf_counter() - start)
        if abs(pruned.jq - unpruned.jq) > 1e-9:
            raise AssertionError(
                "pruning changed the estimate: "
                f"{pruned.jq} vs {unpruned.jq}"
            )
        if include_dense:
            start = time.perf_counter()
            estimate_jq(qualities, num_buckets=num_buckets)
            dense_times.append(time.perf_counter() - start)
    series = [
        SweepSeries("with pruning (s)", tuple(with_pruning)),
        SweepSeries("without pruning (s)", tuple(without_pruning)),
    ]
    if include_dense:
        series.append(SweepSeries("dense impl (s)", tuple(dense_times)))
    return ExperimentResult(
        experiment_id="fig9d",
        title="Bucket-estimator runtime, pruning ablation",
        x_label="n",
        xs=tuple(float(s) for s in sizes),
        series=tuple(series),
        notes=f"numBuckets={num_buckets}, seed={seed}",
    )
