"""Approximation error bounds for the bucket estimator (Section 4.4).

The paper proves the additive guarantee

    estimate <= JQ   and   JQ - estimate < e^{n * delta / 4} - 1,

where ``n`` is the (prior-folded) jury size and ``delta`` the bucket
width in the log-odds domain.  With ``num_buckets = d * n`` and
``upper = max phi(q_i) < phi(0.99) < 5`` this becomes
``e^{5 / (4 d)} - 1``, which is below 1% for ``d >= 200``.

These helpers compute the bound for a concrete jury and invert it to a
bucket count achieving a target error.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR, validate_prior
from .bucket import log_odds
from .canonical import as_qualities, canonicalize_qualities
from .prior import fold_prior


def _folded_phis(
    jury_or_qualities: Jury | Sequence[float], alpha: float
) -> np.ndarray:
    qualities = canonicalize_qualities(
        fold_prior(as_qualities(jury_or_qualities), validate_prior(alpha))
    )
    return np.array([log_odds(q) for q in qualities])


def bucket_error_bound(
    jury_or_qualities: Jury | Sequence[float],
    num_buckets: int,
    alpha: float = UNINFORMATIVE_PRIOR,
) -> float:
    """The proven additive bound ``e^{n * delta / 4} - 1`` for this jury.

    Returns 0 when the jury carries no information (all phi = 0) or
    infinity when some worker has quality 1 (the estimator shortcuts
    those cases to the exact answer anyway).
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    phis = _folded_phis(jury_or_qualities, alpha)
    upper = float(phis.max())
    if upper <= 0.0:
        return 0.0
    if math.isinf(upper):
        return math.inf
    n = phis.size
    delta = upper / num_buckets
    return math.exp(n * delta / 4.0) - 1.0


def buckets_for_error(
    jury_or_qualities: Jury | Sequence[float],
    target_error: float,
    alpha: float = UNINFORMATIVE_PRIOR,
) -> int:
    """Smallest bucket count whose proven bound meets ``target_error``.

    Inverts the bound: ``delta < 4 ln(1 + eps) / n`` requires
    ``num_buckets > upper * n / (4 ln(1 + eps))``.
    """
    if target_error <= 0.0:
        raise ValueError("target_error must be positive")
    phis = _folded_phis(jury_or_qualities, alpha)
    upper = float(phis.max())
    if upper <= 0.0:
        return 1
    if math.isinf(upper):
        raise ValueError(
            "a quality-1 worker has unbounded log-odds; the estimator "
            "shortcuts this case exactly, no bucket count applies"
        )
    n = phis.size
    needed = upper * n / (4.0 * math.log1p(target_error))
    return max(1, math.ceil(needed))


def paper_default_bound(d: int = 200) -> float:
    """The paper's headline bound ``e^{5/(4d)} - 1`` (``< 0.627%`` at
    d = 200), assuming ``upper < phi(0.99) < 5``."""
    if d < 1:
        raise ValueError("d must be >= 1")
    return math.exp(5.0 / (4.0 * d)) - 1.0
