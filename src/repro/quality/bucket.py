"""Bucket-based approximate JQ for Bayesian Voting (Algorithms 1 and 2).

Computing ``JQ(J, BV, alpha)`` exactly is NP-hard (Theorem 2).  The
paper's estimator works in the log-odds domain: with
``phi(q) = ln(q / (1 - q)) >= 0`` the BV verdict on a voting ``V`` is
the sign of

    R(V) = sum_i (1 - 2 v_i) * phi(q_i),

and JQ is the probability mass of votings with ``R > 0`` plus half the
mass at ``R = 0`` (Figure 3).  Tracking the exact distribution of ``R``
needs exponentially many keys, so each ``phi(q_i)`` is snapped to the
nearest of ``numBuckets`` equally spaced buckets; keys become bounded
integers, giving an ``O(numBuckets * n^2)`` dynamic program with an
additive error below ``e^{n*delta/4} - 1`` (Section 4.4).

Pruning (Algorithm 2): after sorting workers by descending bucket
index, a key whose sign can no longer change — ``|key|`` exceeds the
sum of all remaining bucket indices — is settled immediately: positive
keys contribute their whole future probability mass (the completions'
vote probabilities sum to 1), negative keys contribute nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR, validate_prior
from .canonical import as_qualities, canonicalize_qualities
from .prior import fold_prior

#: Default bucket count, the paper's experimental default (Section 6.1.1).
DEFAULT_NUM_BUCKETS = 50

#: Quality above which the shortcut "return the best worker's quality"
#: applies (Section 4.4 keeps the error below 1% this way).
HIGH_QUALITY_CUTOFF = 0.99


def log_odds(quality: float) -> float:
    """``phi(q) = ln(q / (1 - q))``; infinite at q = 1."""
    if quality >= 1.0:
        return math.inf
    if quality <= 0.0:
        return -math.inf
    return math.log(quality / (1.0 - quality))


def bucket_indices(phis: np.ndarray, num_buckets: int) -> tuple[np.ndarray, float]:
    """Snap each phi to its nearest bucket (GetBucketArray).

    Returns ``(b, delta)`` where ``b[i] = ceil(phi_i / delta - 1/2)`` is
    the integer bucket index and ``delta = upper / num_buckets`` is the
    bucket size.  Requires ``max(phis) > 0``.
    """
    upper = float(phis.max())
    if upper <= 0.0:
        raise ValueError("bucket_indices requires at least one phi > 0")
    delta = upper / num_buckets
    b = np.ceil(phis / delta - 0.5).astype(np.int64)
    return b, delta


@dataclass(frozen=True)
class BucketJQResult:
    """Outcome of the bucket estimator, with instrumentation.

    Attributes
    ----------
    jq:
        The estimated Jury Quality.
    num_buckets:
        Bucket count actually used.
    delta:
        Bucket width in the log-odds domain (0 when a shortcut fired).
    expansions:
        Number of (key, prob) pairs expanded across all iterations —
        the work the pruning rule is trying to avoid.
    pruned:
        Number of (key, prob) pairs settled early by Algorithm 2.
    max_keys:
        Largest intermediate map size.
    shortcut:
        Name of the shortcut that fired ("perfect-worker",
        "high-quality", "uninformative"), or "" when the full dynamic
        program ran.
    """

    jq: float
    num_buckets: int
    delta: float
    expansions: int
    pruned: int
    max_keys: int
    shortcut: str = ""


def estimate_jq_detailed(
    jury_or_qualities: Jury | Sequence[float],
    alpha: float = UNINFORMATIVE_PRIOR,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    pruning: bool = True,
    high_quality_shortcut: bool = True,
) -> BucketJQResult:
    """Algorithm 1 (EstimateJQ) with instrumentation.

    Parameters
    ----------
    jury_or_qualities:
        Jury or raw quality vector.
    alpha:
        Task prior; folded in as a pseudo-worker per Theorem 3.
    num_buckets:
        Resolution of the log-odds discretization.  The paper's error
        analysis uses ``num_buckets = d * n`` with d >= 200 for the <1%
        bound; the experimental default of 50 is already accurate in
        practice (Figure 9(b)).
    pruning:
        Enable Algorithm 2.  Disabling it is exposed for the Figure 9(d)
        ablation; results are identical either way.
    high_quality_shortcut:
        Enable the Section-4.4 shortcut returning the best worker's
        quality when it exceeds 0.99.  Disable when validating against
        exact enumeration at fine bucket resolution.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    raw = as_qualities(jury_or_qualities)
    if raw.size == 0:
        raise ValueError("cannot compute JQ for an empty jury")
    a = validate_prior(alpha)
    qualities = canonicalize_qualities(fold_prior(raw, a))

    best = float(qualities.max())
    if best >= 1.0:
        # An infallible worker decides alone: JQ = 1 exactly.
        return BucketJQResult(1.0, num_buckets, 0.0, 0, 0, 0, "perfect-worker")
    if high_quality_shortcut and best > HIGH_QUALITY_CUTOFF:
        # JQ in (best, 1]; returning `best` keeps the additive error
        # below 1 - 0.99 = 1% (Section 4.4).
        return BucketJQResult(best, num_buckets, 0.0, 0, 0, 0, "high-quality")

    phis = np.array([log_odds(q) for q in qualities])
    if phis.max() <= 0.0:
        # Every worker is a fair coin: both labels equally likely.
        return BucketJQResult(0.5, num_buckets, 0.0, 0, 0, 0, "uninformative")

    b, delta = bucket_indices(phis, num_buckets)

    # Sort by descending bucket index (equivalently descending quality)
    # so the suffix sums shrink fast and pruning settles keys early.
    order = np.argsort(-b, kind="stable")
    b = b[order]
    sorted_q = qualities[order]

    # aggregate[i] = b[i] + b[i+1] + ... + b[n-1]  (AggregateBucket).
    aggregate = np.cumsum(b[::-1])[::-1]

    jq = 0.0
    expansions = 0
    pruned = 0
    max_keys = 1
    current: dict[int, float] = {0: 1.0}
    for i, q in enumerate(sorted_q):
        remaining = int(aggregate[i])
        bucket = int(b[i])
        nxt: dict[int, float] = {}
        for key, prob in current.items():
            if pruning:
                if key > 0 and key - remaining > 0:
                    # Sign is locked positive: all completions of this
                    # prefix are BV-correct, and their probabilities sum
                    # to `prob`.
                    jq += prob
                    pruned += 1
                    continue
                if key < 0 and key + remaining < 0:
                    # Sign locked negative: contributes nothing.
                    pruned += 1
                    continue
            expansions += 1
            up = key + bucket  # vote v_i = 0, probability q
            down = key - bucket  # vote v_i = 1, probability 1 - q
            nxt[up] = nxt.get(up, 0.0) + prob * q
            nxt[down] = nxt.get(down, 0.0) + prob * (1.0 - q)
        current = nxt
        if len(current) > max_keys:
            max_keys = len(current)

    for key, prob in current.items():
        if key > 0:
            jq += prob
        elif key == 0:
            jq += 0.5 * prob

    jq = min(max(jq, 0.0), 1.0)
    return BucketJQResult(jq, num_buckets, delta, expansions, pruned, max_keys)


def _estimate_dense(
    qualities: np.ndarray, num_buckets: int
) -> float:
    """Vectorized Algorithm 1 over a dense key axis.

    The integer keys live in ``[-sum(b), +sum(b)]``, so the (key ->
    prob) map can be a dense array indexed by ``key + sum(b)``; each
    worker's update is two shifted slice-adds.  Mathematically
    identical to the map-based dynamic program (same buckets, same
    final summation), just O(n * sum(b)) array arithmetic instead of
    dict churn — the benchmarks in ``bench_ablation_pruning`` quantify
    the gap.  Expects canonicalized qualities strictly below 1 with at
    least one above 0.5.
    """
    phis = np.array([log_odds(q) for q in qualities])
    b, _ = bucket_indices(phis, num_buckets)
    span = int(b.sum())
    probs = np.zeros(2 * span + 1)
    probs[span] = 1.0  # key 0
    for bucket, q in zip(b, qualities):
        shifted = np.zeros_like(probs)
        bucket = int(bucket)
        if bucket == 0:
            continue  # key unchanged; q * p + (1-q) * p = p
        # vote 0 (probability q) moves keys up by `bucket`:
        shifted[bucket:] += probs[: probs.size - bucket] * q
        # vote 1 (probability 1 - q) moves keys down:
        shifted[: probs.size - bucket] += probs[bucket:] * (1.0 - q)
        probs = shifted
    jq = float(probs[span + 1 :].sum() + 0.5 * probs[span])
    return min(max(jq, 0.0), 1.0)


def estimate_jq(
    jury_or_qualities: Jury | Sequence[float],
    alpha: float = UNINFORMATIVE_PRIOR,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    pruning: bool = True,
    high_quality_shortcut: bool = True,
    implementation: str = "dense",
) -> float:
    """Algorithm 1 (EstimateJQ): approximate ``JQ(J, BV, alpha)``.

    ``implementation`` selects ``"dense"`` (vectorized, default) or
    ``"map"`` (the paper-literal dict dynamic program with Algorithm-2
    pruning; see :func:`estimate_jq_detailed`).  Both produce the same
    discretization, hence the same estimate up to float summation
    order.
    """
    if implementation not in ("dense", "map"):
        raise ValueError(f"unknown implementation {implementation!r}")
    if implementation == "map":
        return estimate_jq_detailed(
            jury_or_qualities,
            alpha=alpha,
            num_buckets=num_buckets,
            pruning=pruning,
            high_quality_shortcut=high_quality_shortcut,
        ).jq

    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    raw = as_qualities(jury_or_qualities)
    if raw.size == 0:
        raise ValueError("cannot compute JQ for an empty jury")
    qualities = canonicalize_qualities(fold_prior(raw, validate_prior(alpha)))
    best = float(qualities.max())
    if best >= 1.0:
        return 1.0
    if high_quality_shortcut and best > HIGH_QUALITY_CUTOFF:
        return best
    if best <= 0.5:
        return 0.5
    return _estimate_dense(qualities, num_buckets)
