"""Quality canonicalization: the q < 0.5 reinterpretation of Section 3.3.

A worker whose quality is below 0.5 is more often wrong than right, so
her vote is evidence for the *opposite* label.  Under Bayesian Voting
this is handled automatically by the likelihoods, and the paper notes
the equivalent reinterpretation: a worker with quality ``q < 0.5`` can
be replaced by a worker with quality ``1 - q`` whose votes are negated.

The Jury Quality of BV is invariant under this flip (the flip is a
relabeling of one vote variable, and JQ sums over all votings), which
lets the numeric JQ algorithms assume ``q >= 0.5`` throughout — the
standing assumption of Section 4.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.jury import Jury


def as_qualities(jury_or_qualities: Jury | Sequence[float]) -> np.ndarray:
    """Normalize an input that may be a Jury or a raw quality vector."""
    if isinstance(jury_or_qualities, Jury):
        return jury_or_qualities.qualities
    arr = np.asarray(jury_or_qualities, dtype=float)
    if arr.ndim != 1:
        raise ValueError("qualities must be a 1-D sequence")
    if np.any(np.isnan(arr)) or np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ValueError(f"qualities {jury_or_qualities!r} must lie in [0, 1]")
    return arr


def canonicalize_qualities(
    jury_or_qualities: Jury | Sequence[float],
) -> np.ndarray:
    """Map every quality to ``max(q, 1 - q)``.

    Valid for BV-based JQ computation only (see module docstring); the
    flip changes the behaviour of quality-blind strategies such as MV.
    """
    qualities = as_qualities(jury_or_qualities)
    return np.maximum(qualities, 1.0 - qualities)


def reinterpret_voting(
    votes: Sequence[int], qualities: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the Section-3.3 reinterpretation to a concrete voting.

    Returns ``(votes', qualities')`` where every worker with
    ``q < 0.5`` has her vote negated and quality replaced by ``1 - q``.
    BV's decision on the reinterpreted voting equals its decision on the
    original.
    """
    v = np.asarray(votes, dtype=int)
    q = as_qualities(qualities)
    if v.shape != q.shape:
        raise ValueError("votes and qualities must have equal length")
    unreliable = q < 0.5
    flipped_votes = np.where(unreliable, 1 - v, v)
    flipped_qualities = np.where(unreliable, 1.0 - q, q)
    return flipped_votes, flipped_qualities
