"""Batched JQ kernels: amortize the dynamic program across many juries.

Every layer above the JQ oracle — exact frontiers, exhaustive and
annealing selection, the engine scheduler — evaluates *sets* of
candidate juries, yet the scalar entry points in this package compute
one jury at a time: ``exact_frontier`` issues ``2^n - 1`` independent
exponential enumerations, and the annealer thousands of bucket DPs.
The kernels here share the work across the whole candidate set:

* :func:`estimate_jq_batch` — the dense log-odds DP of
  ``bucket._estimate_dense`` for B juries at once.  The per-jury key
  axes live side by side in one ``(B, W)`` array and each worker column
  is two shifted gather-multiply-adds over the whole batch, instead of
  B separate Python-level loops.
* :func:`exact_jq_bv_batch` — the closed-form exact BV JQ
  (``sum_V max(P0, P1)``) for B juries, grouped by size so each group
  is one vectorized ``(B, 2^k, k)`` enumeration.
* :func:`all_subsets_jq_bv` — exact/bucketed BV JQ for **all** ``2^n``
  subsets of a candidate pool via a shared-prefix subset-lattice DP:
  each subset's per-voting likelihood vector extends its parent's with
  one vectorized step (``n * 2^(n-1)`` slice extensions in total,
  against the ``2^n`` independent enumerations the scalar frontier
  performs) — the same share-the-partial-computation idea that orders
  evidence combination in Dempster-Shafer aggregation.
* :func:`all_subset_costs` — subset-sum costs for all ``2^n`` subsets
  in ``n`` vectorized doublings.

**Parity contract.**  Each kernel reproduces its scalar oracle
bit-for-bit, not merely within tolerance: the per-element arithmetic
(products in worker order, two shifted adds per bucket column, the
final slice summation) is arranged to match the scalar code's operation
order exactly.  The property tests pin this, and it is what lets the
engine swap kernels in and out (``jq_kernel="batch" | "scalar"``) with
byte-identical campaign fingerprints.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.exceptions import EnumerationLimitError
from ..core.task import validate_prior
from .bucket import (
    DEFAULT_NUM_BUCKETS,
    HIGH_QUALITY_CUTOFF,
    bucket_indices,
    log_odds,
)
from .canonical import as_qualities, canonicalize_qualities
from .exact import DEFAULT_MAX_EXACT_SIZE, vote_matrix
from .prior import fold_prior

#: Largest candidate pool :func:`all_subsets_jq_bv` will expand — the
#: lattice keeps one likelihood vector per subset at or below the exact
#: cutoff, ~``2 * 3^n`` doubles in total (≈75 MB at n = 14).
ALL_SUBSETS_MAX = 14

#: Soft bound on temporary array elements per vectorized sweep; batches
#: beyond it are processed in order-preserving chunks.
_CHUNK_ELEMENTS = 1 << 22


def subset_members(mask: int, n: int) -> list[int]:
    """Indices of the set bits of ``mask`` — the subset's members in
    ascending index order (the order :func:`repro.quality.exact.vote_matrix`
    and the lattice DP assume)."""
    return [i for i in range(n) if mask >> i & 1]


# ----------------------------------------------------------------------
# Batched bucket estimator (Algorithm 1, dense, B juries at once)
# ----------------------------------------------------------------------
def estimate_jq_batch(
    rows: Sequence[Sequence[float]],
    alpha: float = 0.5,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    high_quality_shortcut: bool = True,
) -> np.ndarray:
    """``estimate_jq`` (dense implementation) for a batch of juries.

    Parameters
    ----------
    rows:
        A sequence of quality vectors, one per jury; sizes may differ.
    alpha, num_buckets, high_quality_shortcut:
        As in :func:`repro.quality.bucket.estimate_jq`.

    Returns
    -------
    A float array with one JQ per row, bit-identical to calling the
    scalar estimator row by row.  The perfect-worker / high-quality /
    uninformative shortcuts are applied per row exactly as the scalar
    path applies them; only rows that reach the dynamic program join
    the shared sweep.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    a = validate_prior(alpha)
    out = np.empty(len(rows))
    dp_index: list[int] = []
    dp_rows: list[np.ndarray] = []
    for i, row in enumerate(rows):
        raw = as_qualities(row)
        if raw.size == 0:
            raise ValueError("cannot compute JQ for an empty jury")
        qualities = canonicalize_qualities(fold_prior(raw, a))
        best = float(qualities.max())
        if best >= 1.0:
            out[i] = 1.0  # perfect worker decides alone
        elif high_quality_shortcut and best > HIGH_QUALITY_CUTOFF:
            out[i] = best  # Section-4.4 <1%-error shortcut
        elif best <= 0.5:
            out[i] = 0.5  # every worker a fair coin
        else:
            dp_index.append(i)
            dp_rows.append(qualities)
    if dp_rows:
        out[dp_index] = _batch_dense(dp_rows, num_buckets)
    return out


def _batch_dense(rows: list[np.ndarray], num_buckets: int) -> np.ndarray:
    """The shared dense sweep over pre-canonicalized quality rows.

    Chunks the batch so temporaries stay bounded; chunking never changes
    a value (rows are independent and each row's arithmetic only touches
    its own key span).
    """
    out = np.empty(len(rows))
    start = 0
    while start < len(rows):
        stop = start
        widest = 0
        while stop < len(rows):
            # Conservative width bound: span <= jury size * num_buckets.
            width = 2 * rows[stop].size * num_buckets + 1
            if stop > start and (stop - start + 1) * max(widest, width) > (
                _CHUNK_ELEMENTS
            ):
                break
            widest = max(widest, width)
            stop += 1
        out[start:stop] = _batch_dense_chunk(rows[start:stop], num_buckets)
        start = stop
    return out


def _batch_dense_chunk(rows: list[np.ndarray], num_buckets: int) -> np.ndarray:
    b_count = len(rows)
    n_max = max(r.size for r in rows)
    # Per-row discretization, identical to the scalar path: each row
    # keeps its own delta (= max phi / num_buckets) and bucket vector.
    buckets = np.zeros((b_count, n_max), dtype=np.int64)
    quals = np.full((b_count, n_max), 0.5)
    spans = np.empty(b_count, dtype=np.int64)
    for i, row in enumerate(rows):
        phis = np.array([log_odds(q) for q in row])
        b, _ = bucket_indices(phis, num_buckets)
        buckets[i, : row.size] = b
        quals[i, : row.size] = row
        spans[i] = int(b.sum())
    center = int(spans.max())
    width = 2 * center + 1
    probs = np.zeros((b_count, width))
    probs[:, center] = 1.0
    cols = np.arange(width)
    for j in range(n_max):
        b_col = buckets[:, j]
        active = b_col > 0  # bucket 0 (and padding) leaves keys unchanged
        if not active.any():
            continue
        q_col = quals[:, j][:, None]
        shift = b_col[:, None]
        # vote 0 (probability q) moves keys up by the bucket index;
        # vote 1 (probability 1 - q) moves them down — the same two
        # shifted adds as the scalar sweep, batched over rows.
        up_idx = cols[None, :] - shift
        down_idx = cols[None, :] + shift
        up = np.where(
            up_idx >= 0,
            np.take_along_axis(probs, np.clip(up_idx, 0, width - 1), axis=1),
            0.0,
        ) * q_col
        down = np.where(
            down_idx < width,
            np.take_along_axis(
                probs, np.clip(down_idx, 0, width - 1), axis=1
            ),
            0.0,
        ) * (1.0 - q_col)
        probs = np.where(active[:, None], up + down, probs)
    out = np.empty(b_count)
    for i in range(b_count):
        # Sum exactly the row's own key span, so the reduction sees the
        # same operand sequence as the scalar path's final summation.
        span = int(spans[i])
        jq = float(
            probs[i, center + 1 : center + 1 + span].sum()
            + 0.5 * probs[i, center]
        )
        out[i] = min(max(jq, 0.0), 1.0)
    return out


# ----------------------------------------------------------------------
# Batched exact BV JQ (closed form, grouped by jury size)
# ----------------------------------------------------------------------
def exact_jq_bv_batch(
    rows: Sequence[Sequence[float]],
    alpha: float = 0.5,
    max_size: int = DEFAULT_MAX_EXACT_SIZE,
) -> np.ndarray:
    """``exact_jq_bv`` for a batch of juries, one vectorized enumeration
    per distinct jury size (chunked to bound temporaries)."""
    a = validate_prior(alpha)
    arrays = [as_qualities(row) for row in rows]
    out = np.empty(len(arrays))
    by_size: dict[int, list[int]] = {}
    for i, arr in enumerate(arrays):
        if arr.size == 0:
            raise ValueError("cannot compute JQ for an empty jury")
        if arr.size > max_size:
            raise EnumerationLimitError(
                f"exact JQ enumerates 2^{arr.size} votings; jury size "
                f"{arr.size} exceeds the limit {max_size}"
            )
        by_size.setdefault(arr.size, []).append(i)
    for k, indices in by_size.items():
        votes = vote_matrix(k)[None, :, :]
        chunk = max(1, _CHUNK_ELEMENTS // ((1 << k) * k))
        for lo in range(0, len(indices), chunk):
            batch = indices[lo : lo + chunk]
            quals = np.stack([arrays[i] for i in batch])[:, None, :]
            like0 = np.prod(np.where(votes == 0, quals, 1.0 - quals), axis=2)
            like1 = np.prod(np.where(votes == 1, quals, 1.0 - quals), axis=2)
            out[batch] = np.sum(
                np.maximum(a * like0, (1.0 - a) * like1), axis=1
            )
    return out


# ----------------------------------------------------------------------
# All-subsets lattice
# ----------------------------------------------------------------------
def all_subsets_jq_bv(
    qualities: Sequence[float],
    alpha: float = 0.5,
    exact_cutoff: int | None = None,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    max_size: int = ALL_SUBSETS_MAX,
) -> np.ndarray:
    """BV JQ of every subset of a candidate pool in one shared sweep.

    Returns an array of length ``2^n`` indexed by bitmask (bit ``i``
    set = worker ``i`` in the jury, the :func:`exact_frontier`
    enumeration order).  Entry 0 — the empty jury — scores the prior's
    mode, matching :class:`repro.selection.base.JQObjective`.

    ``exact_cutoff=None`` computes every subset exactly; with a cutoff,
    subsets above it are scored by the bucket estimator instead —
    exactly the size split :class:`~repro.selection.base.JQObjective`
    applies, so each entry is bit-identical to the scalar objective.

    The exact part runs on the subset lattice: a subset's per-voting
    likelihood vectors extend its parent's (the subset minus its
    highest-index member) with one vectorized step, so the shared
    prefixes are computed once instead of once per superset.
    """
    q = as_qualities(qualities)
    a = validate_prior(alpha)
    n = q.size
    if n > max_size:
        raise EnumerationLimitError(
            f"all-subsets JQ expands a 2^{n}-subset lattice; pool size "
            f"{n} exceeds the limit {max_size}"
        )
    out = np.empty(1 << n)
    out[0] = max(a, 1.0 - a)
    if n == 0:
        return out
    cutoff = min(n, n if exact_cutoff is None else int(exact_cutoff))

    # Group masks by popcount.  All subsets of size k share the voting-
    # vector length 2^k, so one lattice *level* is a dense matrix and
    # every extension/score at that level is a handful of whole-matrix
    # operations — the per-subset arithmetic (two likelihood extensions,
    # scale by the prior, max, row sum) is element-for-element the
    # per-mask recursion, just batched.
    levels: list[list[int]] = [[] for _ in range(cutoff + 1)]
    row_of = np.zeros(1 << n, dtype=np.int64)
    bucket_masks: list[int] = []
    for mask in range(1, 1 << n):
        k = mask.bit_count()
        if k > cutoff:
            bucket_masks.append(mask)
            continue
        row_of[mask] = len(levels[k])
        levels[k].append(mask)

    prev0 = np.ones((1, 1))  # level 0: the empty subset's unit vector
    prev1 = np.ones((1, 1))
    for k in range(1, cutoff + 1):
        masks = levels[k]
        highs = np.array([m.bit_length() - 1 for m in masks])
        parents = row_of[
            np.array(masks) ^ (np.int64(1) << np.array(highs))
        ]
        p0 = prev0[parents]
        p1 = prev1[parents]
        q_h = q[highs][:, None]
        q_bar = 1.0 - q_h
        # Child votings: parent's rows with the new member voting 0
        # (likelihood factor q under t=0) in the lower half, voting 1
        # (factor 1-q) in the upper half — vote_matrix row order.
        l0 = np.concatenate((p0 * q_h, p0 * q_bar), axis=1)
        l1 = np.concatenate((p1 * q_bar, p1 * q_h), axis=1)
        out[masks] = np.sum(np.maximum(a * l0, (1.0 - a) * l1), axis=1)
        prev0, prev1 = l0, l1

    if bucket_masks:
        rows = [q[subset_members(mask, n)] for mask in bucket_masks]
        out[bucket_masks] = estimate_jq_batch(
            rows, alpha=a, num_buckets=num_buckets
        )
    return out


def all_subset_costs(costs: Sequence[float]) -> np.ndarray:
    """Total cost of every subset, indexed by bitmask, in ``n``
    vectorized doublings.

    Each doubling appends "the previous subsets plus worker ``i``", so
    ``out[mask]`` accumulates the member costs in ascending index
    order.  Float association may therefore differ from
    ``costs[members].sum()`` by rounding (well under 1e-9 for sane
    costs); callers that must match the scalar summation bit-for-bit
    use it as a margin-guarded prescreen (the exhaustive selector's
    feasibility sweep) or keep the per-member summation (the frontier's
    Pareto candidates).
    """
    arr = np.asarray(costs, dtype=float)
    out = np.zeros(1)
    for c in arr:
        out = np.concatenate((out, out + c))
    return out
