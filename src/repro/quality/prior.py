"""Prior incorporation (Theorem 3): the prior is a pseudo-worker.

Theorem 3 states ``JQ(J, BV, alpha) = JQ(J', BV, 0.5)`` where ``J'``
adds one worker of quality ``alpha`` to ``J``.  Intuition: the prior
enters the Bayes posterior exactly like one more independent vote of
reliability ``alpha`` that always "votes 0" — equivalently a quality-
``alpha`` worker integrated over her vote.

Every JQ entry point in this package calls :func:`fold_prior` so that
``alpha = 0.5`` is not a special code path: a flat prior folds to a
quality-0.5 pseudo-worker, which is a JQ no-op, and we skip appending
it purely as an optimization.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import validate_prior
from ..core.worker import Worker
from .canonical import as_qualities

#: Identifier of the pseudo-worker added by Theorem 3.
PRIOR_WORKER_ID = "__prior__"


def pseudo_worker(alpha: float) -> Worker:
    """The Theorem-3 pseudo-worker: quality ``alpha``, cost 0."""
    return Worker(PRIOR_WORKER_ID, validate_prior(alpha), 0.0)


def fold_prior(
    jury_or_qualities: Jury | Sequence[float], alpha: float
) -> np.ndarray:
    """Return the quality vector of ``J' = J + pseudo_worker(alpha)``.

    For ``alpha = 0.5`` the pseudo-worker carries no information and is
    omitted, returning the original qualities unchanged.
    """
    qualities = as_qualities(jury_or_qualities)
    a = validate_prior(alpha)
    if a == 0.5:
        return qualities
    return np.append(qualities, a)


def fold_prior_jury(jury: Jury, alpha: float) -> Jury:
    """Jury-level variant of :func:`fold_prior`."""
    a = validate_prior(alpha)
    if a == 0.5:
        return jury
    return jury.with_worker(pseudo_worker(a))
