"""Exact Jury Quality by enumeration (Definition 3).

``JQ(J, S, alpha)`` is the probability that strategy ``S``'s result
equals the latent truth:

    JQ = alpha     * sum_V Pr(V | t=0) * E[1{S(V) = 0}]
       + (1-alpha) * sum_V Pr(V | t=1) * E[1{S(V) = 1}]

The generic implementation enumerates all ``2^n`` votings and queries
the strategy through :meth:`VotingStrategy.prob_zero`, so it works for
every deterministic and randomized strategy.  For Bayesian Voting a
vectorized fast path uses the closed form

    JQ(J, BV, alpha) = sum_V max(P0(V), P1(V)),

which follows from Theorem 1 (BV picks the larger joint probability on
every voting).

Both paths are exponential in the jury size; they exist as ground truth
for tests and small-N experiments.  The bucket algorithm in
:mod:`repro.quality.bucket` is the scalable estimator.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

import numpy as np

from ..core.exceptions import EnumerationLimitError
from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR, validate_prior
from ..voting.base import VotingStrategy
from ..voting.bayesian import BayesianVoting
from .canonical import as_qualities

#: Largest jury size the exact routines enumerate by default.
DEFAULT_MAX_EXACT_SIZE = 20


def _check_size(n: int, max_size: int) -> None:
    if n == 0:
        raise ValueError("cannot compute JQ for an empty jury")
    if n > max_size:
        raise EnumerationLimitError(
            f"exact JQ enumerates 2^{n} votings; jury size {n} exceeds the "
            f"limit {max_size} (raise max_size explicitly if intended)"
        )


def vote_matrix(n: int) -> np.ndarray:
    """All ``2^n`` binary votings as a ``(2^n, n)`` int matrix.

    Row ``r``'s vote for worker ``i`` is bit ``i`` of ``r``, so the
    enumeration order is stable and documented.
    """
    rows = np.arange(2**n, dtype=np.int64)
    return (rows[:, None] >> np.arange(n)) & 1


def joint_probabilities(
    qualities: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """``(P0, P1)`` over all votings in :func:`vote_matrix` order.

    ``P0[r] = alpha * Pr(V_r | t=0)`` and symmetrically for ``P1``.
    """
    votes = vote_matrix(qualities.size)
    like0 = np.prod(np.where(votes == 0, qualities, 1.0 - qualities), axis=1)
    like1 = np.prod(np.where(votes == 1, qualities, 1.0 - qualities), axis=1)
    return alpha * like0, (1.0 - alpha) * like1


def exact_jq(
    jury_or_qualities: Jury | Sequence[float],
    strategy: VotingStrategy,
    alpha: float = UNINFORMATIVE_PRIOR,
    max_size: int = DEFAULT_MAX_EXACT_SIZE,
) -> float:
    """Exact JQ of ``strategy`` on the jury, for any strategy.

    Parameters
    ----------
    jury_or_qualities:
        The jury (or its quality vector).
    strategy:
        Any :class:`VotingStrategy`; randomized strategies contribute
        their expected indicator.
    alpha:
        The task prior ``Pr(t = 0)``.
    max_size:
        Guard against accidental huge enumerations.
    """
    qualities = as_qualities(jury_or_qualities)
    a = validate_prior(alpha)
    n = qualities.size
    _check_size(n, max_size)

    if isinstance(strategy, BayesianVoting):
        return exact_jq_bv(qualities, a, max_size=max_size)

    p0, p1 = joint_probabilities(qualities, a)
    jq = 0.0
    for votes in product((0, 1), repeat=n):
        # product() emits votes most-significant-first relative to our
        # bit order, so recompute the row index from the bits.
        index = sum(v << i for i, v in enumerate(votes))
        h = strategy.prob_zero(votes, qualities, a)
        jq += p0[index] * h + p1[index] * (1.0 - h)
    return float(jq)


def exact_jq_bv(
    jury_or_qualities: Jury | Sequence[float],
    alpha: float = UNINFORMATIVE_PRIOR,
    max_size: int = DEFAULT_MAX_EXACT_SIZE,
) -> float:
    """Exact ``JQ(J, BV, alpha)`` via the vectorized closed form
    ``sum_V max(P0(V), P1(V))``."""
    qualities = as_qualities(jury_or_qualities)
    a = validate_prior(alpha)
    _check_size(qualities.size, max_size)
    p0, p1 = joint_probabilities(qualities, a)
    return float(np.sum(np.maximum(p0, p1)))


def strategy_accuracy_per_voting(
    jury_or_qualities: Jury | Sequence[float],
    strategy: VotingStrategy,
    alpha: float = UNINFORMATIVE_PRIOR,
    max_size: int = DEFAULT_MAX_EXACT_SIZE,
) -> list[dict]:
    """Per-voting breakdown used by Figure-2-style worked examples.

    Returns one record per voting with the joint probabilities, the
    strategy's zero-probability and its contribution to JQ.
    """
    qualities = as_qualities(jury_or_qualities)
    a = validate_prior(alpha)
    n = qualities.size
    _check_size(n, max_size)
    p0, p1 = joint_probabilities(qualities, a)
    records = []
    for votes in product((0, 1), repeat=n):
        index = sum(v << i for i, v in enumerate(votes))
        h = strategy.prob_zero(votes, qualities, a)
        records.append(
            {
                "votes": votes,
                "p0": float(p0[index]),
                "p1": float(p1[index]),
                "prob_zero": float(h),
                "contribution": float(p0[index] * h + p1[index] * (1.0 - h)),
            }
        )
    return records
