"""Jury Quality computation (Sections 3.2 and 4).

Entry points:

* :func:`jury_quality` — the facade most callers want; picks the right
  algorithm for the strategy and jury size.
* :func:`exact_jq` / :func:`exact_jq_bv` — exponential ground truth.
* :func:`exact_jq_mv` — polynomial Poisson-binomial oracle for MV.
* :func:`estimate_jq` — the paper's bucket approximation (Algorithm 1)
  with pruning (Algorithm 2).
* :func:`estimate_jq_batch` / :func:`exact_jq_bv_batch` /
  :func:`all_subsets_jq_bv` — batched kernels that amortize the DP
  across many juries (bit-identical to the scalar oracles).
* :func:`streamed_frontier_jq` — the subset lattice one popcount level
  at a time with on-the-fly Pareto filtering: frontier pools past
  ``ALL_SUBSETS_MAX``, memory bounded by the widest level.
* :func:`bucket_error_bound` / :func:`buckets_for_error` — the proven
  additive guarantees of Section 4.4.
"""

from __future__ import annotations

from typing import Sequence

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from ..voting.base import VotingStrategy
from ..voting.bayesian import BayesianVoting
from ..voting.majority import HalfVoting, MajorityVoting
from .batch import (
    ALL_SUBSETS_MAX,
    all_subset_costs,
    all_subsets_jq_bv,
    estimate_jq_batch,
    exact_jq_bv_batch,
    subset_members,
)
from .bounds import bucket_error_bound, buckets_for_error, paper_default_bound
from .bucket import (
    DEFAULT_NUM_BUCKETS,
    BucketJQResult,
    bucket_indices,
    estimate_jq,
    estimate_jq_detailed,
    log_odds,
)
from .canonical import as_qualities, canonicalize_qualities, reinterpret_voting
from .exact import (
    DEFAULT_MAX_EXACT_SIZE,
    exact_jq,
    exact_jq_bv,
    joint_probabilities,
    strategy_accuracy_per_voting,
    vote_matrix,
)
from .majority import (
    exact_jq_half,
    exact_jq_mv,
    majority_threshold,
    poisson_binomial_pmf,
)
from .prior import PRIOR_WORKER_ID, fold_prior, fold_prior_jury, pseudo_worker
from .stream import STREAM_MAX, StreamedFrontier, streamed_frontier_jq

#: Above this jury size the facade switches BV from exact enumeration to
#: the bucket estimator.
EXACT_BV_CUTOFF = 15


def jury_quality(
    jury_or_qualities: Jury | Sequence[float],
    strategy: VotingStrategy | None = None,
    alpha: float = UNINFORMATIVE_PRIOR,
    method: str = "auto",
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> float:
    """Compute ``JQ(J, S, alpha)`` choosing a suitable algorithm.

    Parameters
    ----------
    jury_or_qualities:
        The jury (or its quality vector).
    strategy:
        The voting strategy; defaults to Bayesian Voting, the optimal
        strategy of Theorem 1.
    alpha:
        The task prior ``Pr(t = 0)``.
    method:
        ``"auto"`` (default) picks: the Poisson-binomial oracle for
        MV/Half, exact enumeration for BV on small juries and the
        bucket estimator on large ones, and exact enumeration for every
        other strategy.  ``"exact"`` forces enumeration (or the MV
        oracle); ``"bucket"`` forces the estimator (BV only).
    num_buckets:
        Bucket resolution when the estimator is used.
    """
    if strategy is None:
        strategy = BayesianVoting()
    qualities = as_qualities(jury_or_qualities)

    if method not in ("auto", "exact", "bucket"):
        raise ValueError(f"unknown method {method!r}")

    if method == "bucket":
        if not isinstance(strategy, BayesianVoting):
            raise ValueError(
                "the bucket estimator is defined for Bayesian Voting only"
            )
        return estimate_jq(qualities, alpha=alpha, num_buckets=num_buckets)

    if isinstance(strategy, MajorityVoting):
        return exact_jq_mv(qualities, alpha)
    if isinstance(strategy, HalfVoting):
        return exact_jq_half(qualities, alpha)
    if isinstance(strategy, BayesianVoting):
        if method == "exact" or qualities.size <= EXACT_BV_CUTOFF:
            return exact_jq_bv(qualities, alpha)
        return estimate_jq(qualities, alpha=alpha, num_buckets=num_buckets)
    return exact_jq(qualities, strategy, alpha)


__all__ = [
    "ALL_SUBSETS_MAX",
    "BucketJQResult",
    "DEFAULT_MAX_EXACT_SIZE",
    "DEFAULT_NUM_BUCKETS",
    "EXACT_BV_CUTOFF",
    "PRIOR_WORKER_ID",
    "STREAM_MAX",
    "StreamedFrontier",
    "all_subset_costs",
    "all_subsets_jq_bv",
    "as_qualities",
    "bucket_error_bound",
    "bucket_indices",
    "buckets_for_error",
    "canonicalize_qualities",
    "estimate_jq",
    "estimate_jq_batch",
    "estimate_jq_detailed",
    "exact_jq",
    "exact_jq_bv",
    "exact_jq_bv_batch",
    "exact_jq_half",
    "exact_jq_mv",
    "fold_prior",
    "fold_prior_jury",
    "joint_probabilities",
    "jury_quality",
    "log_odds",
    "majority_threshold",
    "paper_default_bound",
    "poisson_binomial_pmf",
    "pseudo_worker",
    "reinterpret_voting",
    "strategy_accuracy_per_voting",
    "streamed_frontier_jq",
    "subset_members",
    "vote_matrix",
]
