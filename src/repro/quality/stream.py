"""Streamed subset-lattice frontier sweep: past ``ALL_SUBSETS_MAX``.

:func:`repro.quality.batch.all_subsets_jq_bv` materializes the full
``2^n`` JQ array (plus one likelihood vector per lattice node), which
is what pins it — and everything above it, up to the engine
scheduler's ``frontier_pool_size`` cap — at ``ALL_SUBSETS_MAX = 14``
workers.  This module processes the same lattice **one popcount level
at a time**: level ``k`` holds the ``C(n, k)`` subsets of size ``k``,
each generated from its parent (the subset minus its highest-index
member) by one vectorized bit-OR, scored through the batched JQ
kernels, folded into a running Pareto (cost, JQ) skyline, and then
*discarded* — only the skyline survivors and the current expansion
fringe stay resident.  Peak memory is ``O(max-level width)`` (a few
scalar arrays of ``C(n, n/2)`` entries) instead of ``O(2^n)``
likelihood vectors, which lifts the exact-frontier ceiling from 14 to
:data:`STREAM_MAX` workers.

Why the fringe is the *whole* level and not just the skyline: Pareto
dominance does not propagate down the lattice.  A dominated subset can
have undominated supersets (``{0.9, 0.9}`` is dominated by a cheaper
``{0.91}``, yet ``{0.9, 0.9, 0.9}`` beats ``{0.91, 0.9}``), so pruning
the expansion set would silently drop frontier points.  The streaming
win is memory, not work: every subset is still scored exactly once.

**Parity contract.**  The survivors, pushed through
:func:`repro.frontier._pareto_filter`, reproduce the scalar
full-enumeration frontier bit-for-bit — same points, same floats, same
tie-breaks:

* JQ values come from the same batched kernels the per-jury fallback
  used (each row's arithmetic is independent of batch composition), so
  they equal the scalar oracle exactly.
* Costs follow the frontier's parity rule: sizes below 8 extend the
  parent's cost with one IEEE add (numpy's sequential small-array
  sum), sizes 8+ keep the ``costs[members].sum()`` reduction.
* The per-level skyline keeps a candidate unless a dominator precedes
  it under the exact order ``(cost asc, jq desc, mask asc)`` —
  the order ``_pareto_filter``'s stable sort induces over the
  mask-ascending enumeration — so dropping it provably never changes
  the final filter's output, ties included.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Sequence

import numpy as np

from ..core.exceptions import EnumerationLimitError
from ..core.task import validate_prior
from .batch import estimate_jq_batch, exact_jq_bv_batch
from .bucket import DEFAULT_NUM_BUCKETS
from .canonical import as_qualities

#: Largest pool the streamed sweep accepts.  The binding constraint is
#: time (every one of the ``2^n - 1`` subsets is still scored once),
#: not memory — level widths stay a few scalar arrays of ``C(n, n/2)``
#: entries, ~65 MB at n = 24.
STREAM_MAX = 24

#: Masks per chunk when unpacking a level into member/quality matrices
#: (elements = masks * n); bounds the dense temporaries the same way
#: ``batch._CHUNK_ELEMENTS`` bounds the kernels'.
_LEVEL_CHUNK_ELEMENTS = 1 << 21


class StreamedFrontier(NamedTuple):
    """Pareto-undominated subsets of one candidate pool.

    Arrays are aligned and sorted by ascending bitmask — the scalar
    frontier's enumeration order, which is what makes feeding them to
    ``_pareto_filter`` reproduce its tie-breaks exactly.
    """

    masks: np.ndarray  #: int64 bitmasks (bit i set = worker i seated)
    costs: np.ndarray  #: subset costs, scalar-summation parity
    jqs: np.ndarray  #: subset JQ, bit-identical to the scalar oracle
    evaluations: int  #: juries scored (= 2^n - 1: streaming saves memory, not work)


def _default_batch_jq(
    alpha: float, exact_cutoff: int | None, num_buckets: int
) -> Callable[[np.ndarray], np.ndarray]:
    """The stock evaluator: the exact/bucket size split of
    ``JQObjective.batch_qualities`` (every level has uniform jury
    size, so the split is one branch per level)."""

    def batch_jq(rows: np.ndarray) -> np.ndarray:
        size = rows.shape[1]
        if exact_cutoff is None or size <= exact_cutoff:
            return exact_jq_bv_batch(rows, alpha)
        return estimate_jq_batch(rows, alpha=alpha, num_buckets=num_buckets)

    return batch_jq


def streamed_frontier_jq(
    qualities: Sequence[float],
    costs: Sequence[float],
    alpha: float = 0.5,
    exact_cutoff: int | None = None,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    batch_jq: Callable[[np.ndarray], np.ndarray] | None = None,
    max_size: int = STREAM_MAX,
) -> StreamedFrontier:
    """Pareto (cost, JQ) survivors over every nonempty subset of a pool.

    Parameters
    ----------
    qualities, costs:
        The candidate pool, aligned by worker index (= bit position).
    alpha, exact_cutoff, num_buckets:
        The stock BV evaluator's parameters (``exact_cutoff=None``
        scores every level exactly).  Ignored when ``batch_jq`` is
        given.
    batch_jq:
        Optional evaluator mapping a ``(B, k)`` quality matrix to ``B``
        JQ values — ``exact_frontier`` passes the objective's
        ``batch_qualities`` here so engine calls replay through the
        campaign ``JQCache`` and evaluation accounting matches the
        scalar path.
    max_size:
        Guard on the pool size (:data:`STREAM_MAX` by default).

    Returns
    -------
    A :class:`StreamedFrontier` whose (mask, cost, jq) triples, run
    through the standard Pareto filter, equal the scalar
    full-enumeration frontier exactly.
    """
    q = as_qualities(qualities)
    cost_arr = np.asarray(costs, dtype=float)
    if cost_arr.ndim != 1 or cost_arr.size != q.size:
        raise ValueError(
            f"costs must align with qualities: {cost_arr.shape} vs {q.size}"
        )
    n = q.size
    if n > max_size:
        raise EnumerationLimitError(
            f"streamed frontier scores 2^{n} subsets; pool size {n} "
            f"exceeds the limit {max_size}"
        )
    a = validate_prior(alpha)
    if batch_jq is None:
        batch_jq = _default_batch_jq(a, exact_cutoff, num_buckets)

    empty = np.empty(0)
    if n == 0:
        return StreamedFrontier(
            np.empty(0, dtype=np.int64), empty, empty, 0
        )

    bit_values = np.int64(1) << np.arange(n, dtype=np.int64)
    surv_masks = np.empty(0, dtype=np.int64)
    surv_costs = empty
    surv_jqs = empty
    evaluations = 0

    # Expansion fringe: the full previous level, mask-ascending, with
    # each mask's highest set bit and (below size 8) its DP cost.
    prev_masks = np.empty(0, dtype=np.int64)
    prev_highs = np.empty(0, dtype=np.int64)
    prev_costs = empty

    for k in range(1, n + 1):
        if k == 1:
            masks = bit_values.copy()
            highs = np.arange(n, dtype=np.int64)
            dp_costs = cost_arr.copy()
        else:
            # Children of parent p (highest bit h): p | bit(j) for every
            # j > h — each subset generated exactly once, from the
            # parent it loses its highest bit to.
            counts = n - 1 - prev_highs
            parent_idx = np.repeat(
                np.arange(prev_masks.size), counts
            )
            starts = np.concatenate(
                ([0], np.cumsum(counts)[:-1])
            ).astype(np.int64)
            new_bits = (
                prev_highs[parent_idx]
                + 1
                + (np.arange(parent_idx.size) - starts[parent_idx])
            )
            masks = prev_masks[parent_idx] | bit_values[new_bits]
            highs = new_bits
            # One IEEE add extends the parent's sequential sum — the
            # scalar cost parity rule below size 8 (only used there).
            dp_costs = prev_costs[parent_idx] + cost_arr[new_bits]
            order = np.argsort(masks)
            masks = masks[order]
            highs = highs[order]
            dp_costs = dp_costs[order]

        level_costs = np.empty(masks.size)
        level_jqs = np.empty(masks.size)
        chunk = max(1, _LEVEL_CHUNK_ELEMENTS // n)
        for lo in range(0, masks.size, chunk):
            sl = slice(lo, min(lo + chunk, masks.size))
            bits = (masks[sl, None] >> np.arange(n)) & 1
            members = np.nonzero(bits)[1].reshape(-1, k)
            if k < 8:
                level_costs[sl] = dp_costs[sl]
            else:
                # numpy's pairwise reduction per row — the same operand
                # sequence as the scalar ``costs[members].sum()``.
                level_costs[sl] = cost_arr[members].sum(axis=1)
            level_jqs[sl] = batch_jq(q[members])
            evaluations += members.shape[0]

        # Fold the level into the running skyline.  Order the combined
        # candidates by (cost asc, jq desc, mask asc) — exactly the
        # order the final Pareto filter's stable sort induces over the
        # mask-ascending enumeration — and keep an entry only when its
        # jq strictly exceeds every predecessor's: any dropped
        # candidate has a preceding dominator, so the final filter
        # (which keeps only strict jq improvements) would drop it too.
        comb_masks = np.concatenate((surv_masks, masks))
        comb_costs = np.concatenate((surv_costs, level_costs))
        comb_jqs = np.concatenate((surv_jqs, level_jqs))
        order = np.lexsort((comb_masks, -comb_jqs, comb_costs))
        sorted_jqs = comb_jqs[order]
        keep = np.empty(order.size, dtype=bool)
        keep[0] = True
        keep[1:] = sorted_jqs[1:] > np.maximum.accumulate(sorted_jqs)[:-1]
        kept = order[keep]
        surv_masks = comb_masks[kept]
        surv_costs = comb_costs[kept]
        surv_jqs = comb_jqs[kept]

        prev_masks, prev_highs, prev_costs = masks, highs, dp_costs

    final = np.argsort(surv_masks)
    return StreamedFrontier(
        surv_masks[final],
        surv_costs[final],
        surv_jqs[final],
        evaluations,
    )
