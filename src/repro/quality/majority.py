"""Polynomial-time JQ for Majority Voting — the Cao et al. [7] oracle.

Under MV the jury's verdict depends only on the *count* of zero-votes,
and conditioned on the truth those counts follow a Poisson-binomial
distribution of the worker qualities.  With ``Z0`` the number of
zero-votes given ``t = 0`` (success probabilities ``q_i``) and ``Z1``
the number of zero-votes given ``t = 1`` (success probabilities
``1 - q_i``):

    MV(V) = 0  iff  #zeros >= (n + 1) / 2

    JQ(J, MV, alpha) = alpha     * Pr(Z0 >= ceil((n+1)/2))
                     + (1-alpha) * Pr(Z1 <  ceil((n+1)/2))

The Poisson-binomial PMF is computed by the classic O(n^2) dynamic
program; an FFT-backed divide-and-conquer convolution kicks in for very
large juries, matching the O(n log^2 n) oracle the paper credits to
Cao et al.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR, validate_prior
from .canonical import as_qualities

#: Jury size above which the FFT divide-and-conquer PMF is used.
_FFT_THRESHOLD = 256


def poisson_binomial_pmf(probabilities: Sequence[float]) -> np.ndarray:
    """PMF of the number of successes among independent Bernoulli trials.

    Returns an array ``pmf`` of length ``n + 1`` with
    ``pmf[k] = Pr(#successes = k)``.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D sequence")
    if np.any(probs < 0.0) or np.any(probs > 1.0):
        raise ValueError("success probabilities must lie in [0, 1]")
    if probs.size >= _FFT_THRESHOLD:
        return _pmf_divide_and_conquer(probs)
    return _pmf_dynamic_program(probs)


def _pmf_dynamic_program(probs: np.ndarray) -> np.ndarray:
    """O(n^2) convolution DP; numerically robust for moderate n."""
    pmf = np.zeros(probs.size + 1)
    pmf[0] = 1.0
    for count, p in enumerate(probs, start=1):
        # Shift-and-add in place, highest index first so each trial is
        # applied exactly once.
        pmf[1 : count + 1] = pmf[1 : count + 1] * (1.0 - p) + pmf[:count] * p
        pmf[0] *= 1.0 - p
    return pmf


def _pmf_divide_and_conquer(probs: np.ndarray) -> np.ndarray:
    """O(n log^2 n) convolution tree using numpy's FFT convolve.

    Tiny negative values produced by FFT round-off are clipped and the
    PMF renormalized.
    """
    polys = [np.array([1.0 - p, p]) for p in probs]
    while len(polys) > 1:
        merged = []
        for i in range(0, len(polys) - 1, 2):
            merged.append(np.convolve(polys[i], polys[i + 1]))
        if len(polys) % 2 == 1:
            merged.append(polys[-1])
        polys = merged
    pmf = np.clip(polys[0], 0.0, None)
    total = pmf.sum()
    return pmf / total if total > 0 else pmf


def majority_threshold(n: int) -> int:
    """Smallest zero-vote count that makes MV return 0:
    ``ceil((n + 1) / 2)``."""
    return math.ceil((n + 1) / 2.0)


def exact_jq_mv(
    jury_or_qualities: Jury | Sequence[float],
    alpha: float = UNINFORMATIVE_PRIOR,
    tie_to_zero: bool = False,
) -> float:
    """Exact ``JQ(J, MV, alpha)`` in polynomial time.

    Parameters
    ----------
    jury_or_qualities:
        Jury or quality vector.  Note MV ignores qualities when voting,
        but JQ still depends on them through the vote distribution.
    alpha:
        Task prior ``Pr(t = 0)``.
    tie_to_zero:
        When True, even-jury ties resolve to 0 (the Half-Voting rule)
        instead of MV's tie-to-1.
    """
    qualities = as_qualities(jury_or_qualities)
    a = validate_prior(alpha)
    n = qualities.size
    if n == 0:
        raise ValueError("cannot compute JQ for an empty jury")
    threshold = majority_threshold(n)
    if tie_to_zero and n % 2 == 0:
        threshold = n // 2

    pmf_z0 = poisson_binomial_pmf(qualities)  # zeros when t = 0
    pmf_z1 = poisson_binomial_pmf(1.0 - qualities)  # zeros when t = 1
    prob_correct_t0 = float(pmf_z0[threshold:].sum())
    prob_correct_t1 = float(pmf_z1[:threshold].sum())
    return a * prob_correct_t0 + (1.0 - a) * prob_correct_t1


def exact_jq_half(
    jury_or_qualities: Jury | Sequence[float],
    alpha: float = UNINFORMATIVE_PRIOR,
) -> float:
    """Exact JQ for Half Voting (tie-to-zero variant of MV)."""
    return exact_jq_mv(jury_or_qualities, alpha, tie_to_zero=True)
