"""Jury model: a selected subset of workers and their voting record.

A *jury* (Section 2.1) is a set of ``n`` workers drawn from the
candidate pool ``W``.  The *jury cost* is the sum of its members' costs;
a jury is *feasible* for budget ``B`` when its cost does not exceed
``B``.  A :class:`Voting` couples a jury with one concrete vote vector
``V = (v_1, ..., v_n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .exceptions import BudgetError, EmptyJuryError, InvalidVoteError
from .worker import Worker, WorkerPool


class Jury:
    """An ordered collection of jurors.

    Order matters only for aligning vote vectors with workers; JQ and
    cost are order-invariant.  Juries are immutable: the expansion
    helpers return new juries.
    """

    __slots__ = ("_workers", "_qualities", "_costs")

    def __init__(self, workers: Iterable[Worker]) -> None:
        members = tuple(workers)
        seen: set[str] = set()
        for worker in members:
            if not isinstance(worker, Worker):
                raise TypeError(
                    f"expected Worker, got {type(worker).__name__}"
                )
            if worker.worker_id in seen:
                raise ValueError(
                    f"duplicate worker {worker.worker_id!r} in jury"
                )
            seen.add(worker.worker_id)
        self._workers: tuple[Worker, ...] = members
        self._qualities = np.array([w.quality for w in members], dtype=float)
        self._costs = np.array([w.cost for w in members], dtype=float)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers)

    def __getitem__(self, index: int) -> Worker:
        return self._workers[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Worker):
            return item in self._workers
        if isinstance(item, str):
            return any(w.worker_id == item for w in self._workers)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Jury):
            return NotImplemented
        return frozenset(self._workers) == frozenset(other._workers)

    def __hash__(self) -> int:
        return hash(frozenset(self._workers))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = ", ".join(w.worker_id for w in self._workers)
        return f"Jury([{ids}], cost={self.cost:.3g})"

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def workers(self) -> tuple[Worker, ...]:
        return self._workers

    @property
    def size(self) -> int:
        """The jury size ``n``."""
        return len(self._workers)

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(w.worker_id for w in self._workers)

    @property
    def qualities(self) -> np.ndarray:
        """Quality vector ``(q_1, ..., q_n)`` aligned with iteration
        order.  Returns a copy so callers cannot mutate jury state."""
        return self._qualities.copy()

    @property
    def costs(self) -> np.ndarray:
        """Cost vector aligned with iteration order (copy)."""
        return self._costs.copy()

    @property
    def cost(self) -> float:
        """The jury cost: sum of member costs."""
        return float(self._costs.sum())

    def is_feasible(self, budget: float) -> bool:
        """True when the jury cost does not exceed ``budget``."""
        return self.cost <= float(budget) + 1e-12

    def require_feasible(self, budget: float) -> None:
        """Raise :class:`BudgetError` when the jury exceeds ``budget``."""
        if not self.is_feasible(budget):
            raise BudgetError(
                f"jury cost {self.cost:.6g} exceeds budget {budget:.6g}"
            )

    def require_nonempty(self) -> None:
        """Raise :class:`EmptyJuryError` for the empty jury."""
        if not self._workers:
            raise EmptyJuryError("operation requires a non-empty jury")

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def with_worker(self, worker: Worker) -> "Jury":
        """A new jury with ``worker`` appended (Lemma 1 expansion)."""
        return Jury(self._workers + (worker,))

    def without_worker(self, worker_id: str) -> "Jury":
        """A new jury with the identified worker removed."""
        remaining = tuple(w for w in self._workers if w.worker_id != worker_id)
        if len(remaining) == len(self._workers):
            raise KeyError(f"worker {worker_id!r} not in jury")
        return Jury(remaining)

    def replace_worker(self, worker_id: str, replacement: Worker) -> "Jury":
        """A new jury with one member swapped (the SA neighborhood)."""
        return self.without_worker(worker_id).with_worker(replacement)

    def as_pool(self) -> WorkerPool:
        """View the jury as a :class:`WorkerPool`."""
        return WorkerPool(self._workers)

    @classmethod
    def from_pool(cls, pool: WorkerPool, indices: Sequence[int] | None = None) -> "Jury":
        """Build a jury from pool members, optionally by index."""
        if indices is None:
            return cls(pool.workers)
        return cls(pool[i] for i in indices)


@dataclass(frozen=True)
class Voting:
    """A jury together with one concrete vote vector.

    ``votes[i]`` is the label worker ``jury[i]`` voted for.  For binary
    tasks votes lie in {0, 1}; for multi-choice tasks in
    {0, ..., l-1} (``num_labels`` fixes the domain).
    """

    jury: Jury
    votes: tuple[int, ...]
    num_labels: int = 2

    def __post_init__(self) -> None:
        if len(self.votes) != len(self.jury):
            raise InvalidVoteError(
                f"{len(self.votes)} votes for {len(self.jury)} jurors"
            )
        for vote in self.votes:
            if not isinstance(vote, (int, np.integer)) or not (
                0 <= int(vote) < self.num_labels
            ):
                raise InvalidVoteError(
                    f"vote {vote!r} outside label domain "
                    f"0..{self.num_labels - 1}"
                )
        object.__setattr__(self, "votes", tuple(int(v) for v in self.votes))

    @property
    def size(self) -> int:
        return len(self.votes)

    def complement(self) -> "Voting":
        """The complement voting ``V-bar`` with every binary vote
        flipped (used by the A0/A1 symmetry argument of Section 4.2)."""
        if self.num_labels != 2:
            raise InvalidVoteError("complement is defined for binary votes")
        flipped = tuple(1 - v for v in self.votes)
        return Voting(self.jury, flipped, self.num_labels)

    def count(self, label: int) -> int:
        """Number of votes for ``label``."""
        return sum(1 for v in self.votes if v == label)

    def likelihood(self, truth: int) -> float:
        """``Pr(V | t = truth)`` under independent single-quality
        workers: each worker votes the truth with probability ``q_i``
        and (for binary tasks) the other label with ``1 - q_i``."""
        if self.num_labels != 2:
            raise InvalidVoteError(
                "single-quality likelihood is defined for binary votes; "
                "use repro.multiclass for confusion-matrix workers"
            )
        qualities = self.jury.qualities
        votes = np.array(self.votes)
        correct = votes == truth
        factors = np.where(correct, qualities, 1.0 - qualities)
        return float(np.prod(factors))
