"""Task model: decision-making tasks and their priors.

The paper's primary task type (Section 2.1) is the *decision-making
task*: a yes/no question with a latent ground truth ``t`` in {0, 1} where
1 means "yes" and 0 means "no".  The task provider may attach a prior
``alpha = Pr(t = 0)``; with no prior knowledge, ``alpha = 0.5``.

Section 7 generalizes to multiple-choice tasks with ``l`` labels
{0, ..., l-1} and a prior vector; :class:`MultiChoiceTask` models those.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .exceptions import InvalidPriorError

#: Labels of a decision-making task. 1 encodes "yes", 0 encodes "no".
YES = 1
NO = 0

#: Prior used when the task provider expresses no preference.
UNINFORMATIVE_PRIOR = 0.5


def validate_prior(alpha: float) -> float:
    """Validate a binary prior ``alpha = Pr(t = 0)`` and return it as a
    float.  Raises :class:`InvalidPriorError` outside [0, 1]."""
    a = float(alpha)
    if math.isnan(a) or a < 0.0 or a > 1.0:
        raise InvalidPriorError(f"prior alpha {alpha!r} must lie in [0, 1]")
    return a


def validate_prior_vector(alphas: Sequence[float]) -> np.ndarray:
    """Validate a categorical prior vector and return it as an array.

    The vector must have at least two entries, each in [0, 1], summing
    to 1 (within float tolerance).
    """
    vec = np.asarray(alphas, dtype=float)
    if vec.ndim != 1 or vec.size < 2:
        raise InvalidPriorError("prior vector must be 1-D with >= 2 entries")
    if np.any(np.isnan(vec)) or np.any(vec < 0.0) or np.any(vec > 1.0):
        raise InvalidPriorError(f"prior vector {alphas!r} has entries outside [0, 1]")
    total = float(vec.sum())
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
        raise InvalidPriorError(f"prior vector {alphas!r} sums to {total}, expected 1")
    return vec


@dataclass(frozen=True)
class DecisionTask:
    """A binary decision-making task.

    Parameters
    ----------
    task_id:
        Unique identifier.
    question:
        Human-readable question text (informational only).
    prior:
        ``alpha = Pr(t = 0)``, the task provider's belief that the
        answer is "no".  Defaults to the uninformative 0.5.
    ground_truth:
        Optional latent true answer, known only in simulations and for
        evaluation.  ``None`` when unknown (the normal production case).
    """

    task_id: str
    question: str = ""
    prior: float = UNINFORMATIVE_PRIOR
    ground_truth: int | None = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "prior", validate_prior(self.prior))
        if self.ground_truth is not None and self.ground_truth not in (0, 1):
            raise ValueError(
                f"task {self.task_id!r}: ground_truth must be 0, 1 or None"
            )

    @property
    def labels(self) -> tuple[int, ...]:
        """The label domain (0, 1)."""
        return (NO, YES)

    @property
    def num_labels(self) -> int:
        return 2

    @property
    def prior_vector(self) -> np.ndarray:
        """The prior as the vector (Pr(t=0), Pr(t=1))."""
        return np.array([self.prior, 1.0 - self.prior])

    def with_prior(self, alpha: float) -> "DecisionTask":
        """Copy of this task with a new prior."""
        return DecisionTask(self.task_id, self.question, alpha, self.ground_truth)


@dataclass(frozen=True)
class MultiChoiceTask:
    """A multiple-choice task with ``l >= 2`` labels (Section 7).

    Parameters
    ----------
    task_id:
        Unique identifier.
    num_labels:
        The number of choices ``l``; labels are ``0 .. l-1``.
    question:
        Human-readable question text.
    prior:
        Optional prior vector ``(alpha_0, ..., alpha_{l-1})`` summing to
        1.  Defaults to uniform.
    ground_truth:
        Optional latent true label for simulation/evaluation.
    """

    task_id: str
    num_labels: int
    question: str = ""
    prior: tuple[float, ...] | None = None
    ground_truth: int | None = None

    def __post_init__(self) -> None:
        if int(self.num_labels) < 2:
            raise ValueError("num_labels must be >= 2")
        object.__setattr__(self, "num_labels", int(self.num_labels))
        if self.prior is None:
            uniform = tuple([1.0 / self.num_labels] * self.num_labels)
            object.__setattr__(self, "prior", uniform)
        else:
            vec = validate_prior_vector(self.prior)
            if vec.size != self.num_labels:
                raise InvalidPriorError(
                    f"prior vector has {vec.size} entries, task has "
                    f"{self.num_labels} labels"
                )
            object.__setattr__(self, "prior", tuple(float(x) for x in vec))
        if self.ground_truth is not None:
            gt = int(self.ground_truth)
            if gt < 0 or gt >= self.num_labels:
                raise ValueError(
                    f"task {self.task_id!r}: ground_truth {gt} outside label "
                    f"domain 0..{self.num_labels - 1}"
                )
            object.__setattr__(self, "ground_truth", gt)

    @property
    def labels(self) -> tuple[int, ...]:
        """The label domain ``(0, ..., l-1)``."""
        return tuple(range(self.num_labels))

    @property
    def prior_vector(self) -> np.ndarray:
        return np.array(self.prior, dtype=float)

    def as_decision_task(self) -> DecisionTask:
        """Downcast an l=2 task to a :class:`DecisionTask`."""
        if self.num_labels != 2:
            raise ValueError("only 2-label tasks can become DecisionTask")
        return DecisionTask(
            self.task_id, self.question, self.prior[0], self.ground_truth
        )
