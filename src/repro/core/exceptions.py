"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Validation failures raise the more specific
subclasses below; plain ``ValueError``/``TypeError`` are reserved for
obviously-wrong Python usage (e.g. passing a string where a float is
expected) and are raised by the standard library itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidQualityError(ReproError, ValueError):
    """A worker quality is outside the closed interval [0, 1]."""


class InvalidCostError(ReproError, ValueError):
    """A worker cost is negative or not finite."""


class InvalidPriorError(ReproError, ValueError):
    """A task prior is outside [0, 1], or a prior vector does not sum to 1."""


class InvalidVoteError(ReproError, ValueError):
    """A vote is outside the task's label domain."""


class EmptyJuryError(ReproError, ValueError):
    """An operation that requires at least one juror received an empty jury."""


class BudgetError(ReproError, ValueError):
    """A budget is negative, or a jury exceeds the given budget."""


class EnumerationLimitError(ReproError, RuntimeError):
    """An exact (exponential) computation was requested for a jury too
    large to enumerate safely.

    Exact JQ computation enumerates ``l ** n`` votings; this error guards
    against accidentally requesting such an enumeration for large ``n``.
    Callers that really want a large enumeration can raise the limit
    explicitly via the ``max_enumeration`` parameter of the exact
    functions.
    """


class ConfusionMatrixError(ReproError, ValueError):
    """A confusion matrix is not square, not row-stochastic, or has
    entries outside [0, 1]."""


class EstimationError(ReproError, RuntimeError):
    """A quality-estimation routine could not produce an estimate
    (e.g. EM received an empty answer matrix)."""
