"""Worker model: a crowd worker with a quality and a cost.

The paper (Section 2.1) models each worker ``j_i`` by

* a quality ``q_i`` in [0, 1] — the probability that the worker's vote
  equals the task's latent true answer, and
* a cost ``c_i`` >= 0 — the monetary incentive required for one vote.

Workers are immutable value objects; a :class:`WorkerPool` is an ordered,
indexable collection of distinct workers with convenience accessors used
throughout the selection and quality subpackages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .exceptions import InvalidCostError, InvalidQualityError


@dataclass(frozen=True, order=True)
class Worker:
    """An immutable crowd worker.

    Parameters
    ----------
    worker_id:
        A unique identifier (any string).  Two workers compare equal iff
        all three fields are equal; ordering is lexicographic on
        ``(worker_id, quality, cost)`` which gives deterministic sorts.
    quality:
        Probability in [0, 1] that the worker answers correctly.
    cost:
        Non-negative monetary cost of one vote.  Defaults to 0 (a
        volunteer worker).
    """

    worker_id: str
    quality: float = field(default=0.5)
    cost: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not isinstance(self.worker_id, str) or not self.worker_id:
            raise ValueError("worker_id must be a non-empty string")
        q = float(self.quality)
        c = float(self.cost)
        if math.isnan(q) or q < 0.0 or q > 1.0:
            raise InvalidQualityError(
                f"worker {self.worker_id!r}: quality {self.quality!r} "
                "must lie in [0, 1]"
            )
        if not math.isfinite(c) or c < 0.0:
            raise InvalidCostError(
                f"worker {self.worker_id!r}: cost {self.cost!r} "
                "must be finite and non-negative"
            )
        object.__setattr__(self, "quality", q)
        object.__setattr__(self, "cost", c)

    @property
    def is_reliable(self) -> bool:
        """True when quality >= 0.5 (the paper's standing assumption)."""
        return self.quality >= 0.5

    def flipped(self) -> "Worker":
        """Return the informationally equivalent worker with quality
        ``1 - q`` (Section 3.3): a worker who is wrong with probability
        ``q`` can be reinterpreted as one who is right with probability
        ``1 - q`` whose votes are negated.
        """
        return Worker(self.worker_id, 1.0 - self.quality, self.cost)

    def with_quality(self, quality: float) -> "Worker":
        """Return a copy of this worker with a different quality."""
        return Worker(self.worker_id, quality, self.cost)

    def with_cost(self, cost: float) -> "Worker":
        """Return a copy of this worker with a different cost."""
        return Worker(self.worker_id, self.quality, cost)


class WorkerPool:
    """An ordered collection of candidate workers (the set ``W``).

    The pool preserves insertion order, enforces unique worker ids, and
    exposes vectorized views of qualities and costs for the numeric
    algorithms.
    """

    def __init__(self, workers: Iterable[Worker] = ()) -> None:
        self._workers: list[Worker] = []
        self._by_id: dict[str, Worker] = {}
        for worker in workers:
            self.add(worker)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, worker: Worker) -> None:
        """Append a worker; rejects duplicate ids."""
        if not isinstance(worker, Worker):
            raise TypeError(f"expected Worker, got {type(worker).__name__}")
        if worker.worker_id in self._by_id:
            raise ValueError(f"duplicate worker id {worker.worker_id!r}")
        self._workers.append(worker)
        self._by_id[worker.worker_id] = worker

    def remove(self, worker_id: str) -> Worker:
        """Remove and return the worker with the given id."""
        worker = self._by_id.pop(worker_id)
        self._workers.remove(worker)
        return worker

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers)

    def __getitem__(self, index: int) -> Worker:
        return self._workers[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Worker):
            return self._by_id.get(item.worker_id) == item
        if isinstance(item, str):
            return item in self._by_id
        return False

    def get(self, worker_id: str) -> Worker:
        """Return the worker with the given id (KeyError if absent)."""
        return self._by_id[worker_id]

    @property
    def workers(self) -> tuple[Worker, ...]:
        """The workers, in insertion order."""
        return tuple(self._workers)

    @property
    def qualities(self) -> np.ndarray:
        """Vector of worker qualities, in insertion order."""
        return np.array([w.quality for w in self._workers], dtype=float)

    @property
    def costs(self) -> np.ndarray:
        """Vector of worker costs, in insertion order."""
        return np.array([w.cost for w in self._workers], dtype=float)

    @property
    def total_cost(self) -> float:
        """Sum of all workers' costs."""
        return float(sum(w.cost for w in self._workers))

    # ------------------------------------------------------------------
    # Derived pools
    # ------------------------------------------------------------------
    def sorted_by_quality(self, descending: bool = True) -> "WorkerPool":
        """A new pool sorted by quality (ties broken by id for
        determinism)."""
        key = lambda w: (w.quality, w.worker_id)  # noqa: E731
        return WorkerPool(sorted(self._workers, key=key, reverse=descending))

    def sorted_by_cost(self, descending: bool = False) -> "WorkerPool":
        """A new pool sorted by cost (ties broken by id)."""
        key = lambda w: (w.cost, w.worker_id)  # noqa: E731
        return WorkerPool(sorted(self._workers, key=key, reverse=descending))

    def affordable(self, budget: float) -> "WorkerPool":
        """Workers whose individual cost does not exceed ``budget``."""
        return WorkerPool(w for w in self._workers if w.cost <= budget)

    def reliable(self) -> "WorkerPool":
        """Workers with quality >= 0.5."""
        return WorkerPool(w for w in self._workers if w.is_reliable)

    def subset(self, worker_ids: Sequence[str]) -> "WorkerPool":
        """The sub-pool containing exactly the given ids, in the given
        order."""
        return WorkerPool(self._by_id[i] for i in worker_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool(n={len(self)}, total_cost={self.total_cost:.3g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkerPool):
            return NotImplemented
        return self._workers == other._workers

    def __hash__(self) -> int:
        return hash(tuple(self._workers))
