"""Core data model: workers, juries, tasks, priors and exceptions.

These types are shared by every other subpackage.  See Section 2 of the
paper for the formal model.
"""

from .exceptions import (
    BudgetError,
    ConfusionMatrixError,
    EmptyJuryError,
    EnumerationLimitError,
    EstimationError,
    InvalidCostError,
    InvalidPriorError,
    InvalidQualityError,
    InvalidVoteError,
    ReproError,
)
from .jury import Jury, Voting
from .task import (
    NO,
    UNINFORMATIVE_PRIOR,
    YES,
    DecisionTask,
    MultiChoiceTask,
    validate_prior,
    validate_prior_vector,
)
from .worker import Worker, WorkerPool

__all__ = [
    "BudgetError",
    "ConfusionMatrixError",
    "DecisionTask",
    "EmptyJuryError",
    "EnumerationLimitError",
    "EstimationError",
    "InvalidCostError",
    "InvalidPriorError",
    "InvalidQualityError",
    "InvalidVoteError",
    "Jury",
    "MultiChoiceTask",
    "NO",
    "ReproError",
    "UNINFORMATIVE_PRIOR",
    "Voting",
    "Worker",
    "WorkerPool",
    "YES",
    "validate_prior",
    "validate_prior_vector",
]
