"""Shared worker state for the campaign engine.

The paper assumes a static pool whose qualities are "known in advance".
A serving system cannot: workers are shared across thousands of
concurrent tasks, each worker can only sit on so many juries at once,
and the provider's quality estimates should *drift toward observed
accuracy* as votes stream in.  :class:`WorkerRegistry` is the single
source of truth for all of that:

* per-worker **capacity** (max concurrent jury seats) and live load;
* per-worker **spend** (what the campaign has paid them) and vote
  history, accumulated into an :class:`~repro.estimation.AnswerMatrix`;
* **quality re-estimation hooks** into :func:`repro.estimation.one_coin_em`
  and :func:`repro.estimation.dawid_skene`: periodically re-fit
  qualities from the streamed votes and blend them into the registry's
  working estimates.

The registry deliberately separates *true* quality (the simulator's
vote-generating parameter, unknown in production) from *estimated*
quality (what selection and aggregation use).  Production callers set
both to their best prior estimate; simulations can start the estimates
wrong and watch re-estimation pull them toward truth.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from ..core.exceptions import ReproError
from ..core.worker import Worker, WorkerPool
from ..estimation import AnswerMatrix, dawid_skene, one_coin_em
from ..quality.bucket import log_odds

#: Estimated qualities are clamped inside (0, 1) so Bayesian updates
#: never saturate and EM never locks in.
_QUALITY_CLAMP = 0.02

#: Lock stripes guarding seat assignment/release.  The registry is the
#: one shared write surface when shard admits run on a thread pool
#: (each shard seats only its own members, but the laws should not
#: depend on that partition staying perfect), so ``assign``/``release``
#: serialize per worker through a sharded lock map: worker id -> one of
#: this many locks.  Uncontended acquisition is ~100ns, so the
#: single-threaded path pays nothing measurable.
_LOCK_STRIPES = 16


class CapacityError(ReproError, RuntimeError):
    """A worker was assigned beyond their concurrent-task capacity."""


def informativeness_key(worker: Worker) -> tuple[float, str]:
    """Sort key ranking workers most-informative-first (the Lemma-2
    ordering on ``max(q, 1-q)``), with the id as deterministic
    tiebreak.  Shared by the scheduler's substitute ranking and the
    engine's vote ordering so the two can never drift apart."""
    return (-max(worker.quality, 1.0 - worker.quality), worker.worker_id)


def informativeness(worker: Worker) -> float:
    """Finite log-odds informativeness ``phi(max(q, 1-q))``.

    Perfect workers have infinite log-odds; they are clipped to a huge
    finite priority so rankings and mass sums stay well-defined.  Used
    by the scheduler's candidate ranking and the budget allocator's
    shard quality mass — one definition keeps routing, granting, and
    seating aligned."""
    phi = log_odds(max(worker.quality, 1.0 - worker.quality))
    if math.isinf(phi):
        return 1e6
    return float(phi)


def quality_mass(states: Iterable["WorkerState"], available_only: bool = True) -> float:
    """Total informativeness carried by a set of worker states.

    The budget allocator splits each round's entitlement across shards
    proportional to this mass; routing policies use it to keep shards'
    serving power balanced.  With ``available_only`` (the default) only
    workers holding at least one free jury seat count — saturated
    workers contribute no schedulable quality this round."""
    return float(
        sum(
            informativeness(s.worker)
            for s in states
            if not available_only or s.free_capacity > 0
        )
    )


@dataclass
class WorkerState:
    """Mutable serving state for one worker."""

    worker: Worker  # quality field = current *estimated* quality
    true_quality: float  # simulator's vote-generating quality
    capacity: int
    active_tasks: set[str] = field(default_factory=set)
    votes_cast: int = 0
    agreements: float = 0.0  # votes agreeing with the resolved verdict
    resolved_votes: int = 0
    spend: float = 0.0
    peak_load: int = 0

    @property
    def load(self) -> int:
        """Number of juries this worker currently sits on."""
        return len(self.active_tasks)

    @property
    def free_capacity(self) -> int:
        return self.capacity - self.load

    @property
    def observed_accuracy(self) -> float | None:
        """Fraction of resolved votes agreeing with the verdict."""
        if self.resolved_votes == 0:
            return None
        return self.agreements / self.resolved_votes


class WorkerRegistry:
    """The engine's persistent worker store.

    Parameters
    ----------
    pool:
        The candidate workers.  Their ``quality`` fields are taken as
        the *true* (vote-generating) qualities.
    capacity:
        Max concurrent jury seats per worker — either one int for all
        workers or a ``worker_id -> capacity`` mapping.
    initial_quality:
        Starting *estimated* quality: ``None`` (trust the pool), a
        single float applied to everyone (a cold-start prior), or a
        per-worker mapping.
    """

    def __init__(
        self,
        pool: WorkerPool,
        capacity: int | Mapping[str, int] = 4,
        initial_quality: float | Mapping[str, float] | None = None,
    ) -> None:
        if len(pool) == 0:
            raise ValueError("registry requires a non-empty pool")
        self._states: dict[str, WorkerState] = {}
        for worker in pool:
            cap = capacity if isinstance(capacity, int) else int(capacity[worker.worker_id])
            if cap < 1:
                raise ValueError(
                    f"worker {worker.worker_id!r}: capacity must be >= 1, got {cap}"
                )
            if initial_quality is None:
                estimate = worker.quality
            elif isinstance(initial_quality, Mapping):
                estimate = float(initial_quality.get(worker.worker_id, worker.quality))
            else:
                estimate = float(initial_quality)
            self._states[worker.worker_id] = WorkerState(
                worker=worker.with_quality(estimate),
                true_quality=worker.quality,
                capacity=cap,
            )
        self.answers = AnswerMatrix(num_labels=2)
        self.reestimations = 0
        self._locks = tuple(threading.Lock() for _ in range(_LOCK_STRIPES))
        self._lease = None

    def _seat_lock(self, worker_id: str) -> threading.Lock:
        """The stripe serializing this worker's seat mutations."""
        return self._locks[hash(worker_id) % len(self._locks)]

    def attach_lease_coordinator(self, coordinator) -> None:
        """Route every seat through a shared
        :class:`~repro.engine.procpool.LeaseCoordinator`: ``assign``
        acquires the cross-process lease before seating locally (a
        denial — another engine holds the worker's last shared seat —
        surfaces as :class:`CapacityError`, which the scheduler treats
        like local saturation), and ``release`` drops it.  Detach with
        ``None``."""
        self._lease = coordinator

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._states

    def state(self, worker_id: str) -> WorkerState:
        return self._states[worker_id]

    def worker(self, worker_id: str) -> Worker:
        """The worker with their *current estimated* quality."""
        return self._states[worker_id].worker

    def true_quality(self, worker_id: str) -> float:
        return self._states[worker_id].true_quality

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(self._states)

    @property
    def states(self) -> tuple[WorkerState, ...]:
        return tuple(self._states.values())

    @property
    def total_spend(self) -> float:
        return float(sum(s.spend for s in self._states.values()))

    @property
    def peak_load(self) -> int:
        """Highest concurrent load any worker ever reached."""
        return max(s.peak_load for s in self._states.values())

    @property
    def active_seats(self) -> int:
        """Jury seats currently occupied across all workers."""
        return sum(s.load for s in self._states.values())

    @property
    def total_capacity(self) -> int:
        """Jury seats that exist across all workers."""
        return sum(s.capacity for s in self._states.values())

    def available_pool(self, exclude: Iterable[str] = ()) -> WorkerPool:
        """Workers with at least one free jury seat, as a pool carrying
        current estimated qualities (insertion order preserved)."""
        excluded = set(exclude)
        return WorkerPool(
            s.worker
            for s in self._states.values()
            if s.free_capacity > 0 and s.worker.worker_id not in excluded
        )

    def free_capacity(self, worker_id: str) -> int:
        return self._states[worker_id].free_capacity

    # ------------------------------------------------------------------
    # Assignment lifecycle
    # ------------------------------------------------------------------
    def assign(self, worker_id: str, task_id: str) -> None:
        """Seat a worker on a task's jury; raises :class:`CapacityError`
        when they are already at capacity.  Safe to call from parallel
        shard-admit threads: the check-then-seat is atomic under the
        worker's lock stripe, so two admits can never overshoot a
        worker's capacity by racing the check."""
        state = self._states[worker_id]
        with self._seat_lock(worker_id):
            if task_id in state.active_tasks:
                raise ValueError(
                    f"worker {worker_id!r} already assigned to task {task_id!r}"
                )
            if state.free_capacity <= 0:
                raise CapacityError(
                    f"worker {worker_id!r} is at capacity "
                    f"({state.load}/{state.capacity})"
                )
            if self._lease is not None and not self._lease.acquire(
                worker_id, task_id, capacity=state.capacity
            ):
                raise CapacityError(
                    f"worker {worker_id!r} is at shared capacity "
                    f"(another engine holds the remaining seats)"
                )
            state.active_tasks.add(task_id)
            state.peak_load = max(state.peak_load, state.load)

    def release(self, worker_id: str, task_id: str) -> None:
        """Free the worker's seat on a task (idempotent)."""
        with self._seat_lock(worker_id):
            self._states[worker_id].active_tasks.discard(task_id)
            if self._lease is not None:
                self._lease.release(worker_id, task_id)

    def record_vote(self, worker_id: str, task_id: str, vote: int) -> None:
        """Record a landed vote: pay the worker, log the answer."""
        state = self._states[worker_id]
        state.votes_cast += 1
        state.spend += state.worker.cost
        self.answers.record(worker_id, task_id, int(vote))

    def resolve(self, task_id: str, verdict: int) -> None:
        """Credit agreement stats for every worker who voted on the task."""
        for worker_id, vote in self.answers.answers_for(task_id).items():
            state = self._states[worker_id]
            state.resolved_votes += 1
            if vote == verdict:
                state.agreements += 1.0

    # ------------------------------------------------------------------
    # Quality re-estimation
    # ------------------------------------------------------------------
    def reestimate(
        self,
        method: str = "one-coin",
        learning_rate: float = 0.3,
        min_votes: int = 3,
    ) -> dict[str, float]:
        """Re-fit worker qualities from the streamed votes and blend.

        Runs EM (:func:`one_coin_em` for ``"one-coin"``,
        :func:`dawid_skene` for ``"dawid-skene"``, whose confusion
        matrix is collapsed to the prior-weighted diagonal) over the
        accumulated answer matrix, then moves each worker's estimate

            q  <-  (1 - learning_rate) * q + learning_rate * q_hat

        clamped inside ``[0.02, 0.98]``.  Workers with fewer than
        ``min_votes`` recorded votes keep their current estimate (EM on
        two answers is noise, not signal).

        Returns the updated ``worker_id -> quality`` estimates for all
        workers whose estimate changed.
        """
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        if self.answers.num_answers == 0:
            return {}
        if method == "one-coin":
            fitted = one_coin_em(self.answers).qualities
        elif method == "dawid-skene":
            result = dawid_skene(self.answers)
            fitted = {
                worker_id: float(
                    np.dot(result.class_prior, np.diag(cm.matrix))
                )
                for worker_id, cm in result.confusions.items()
            }
        else:
            raise ValueError(
                f"unknown re-estimation method {method!r} "
                "(expected 'one-coin' or 'dawid-skene')"
            )
        counts = self.answers.participation_counts()
        updated: dict[str, float] = {}
        for worker_id, q_hat in fitted.items():
            if counts.get(worker_id, 0) < min_votes:
                continue
            state = self._states[worker_id]
            old = state.worker.quality
            blended = (1.0 - learning_rate) * old + learning_rate * float(q_hat)
            blended = float(
                np.clip(blended, _QUALITY_CLAMP, 1.0 - _QUALITY_CLAMP)
            )
            if blended != old:
                state.worker = state.worker.with_quality(blended)
                updated[worker_id] = blended
        self.reestimations += 1
        return updated

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def worker_rows(self) -> list[dict]:
        """Per-worker state as plain rows, in registry (= pool) order.

        Registry order drives every deterministic downstream ranking
        (candidate pools, shard partitioning), so rows carry an explicit
        ``position`` and restore re-inserts in that order.
        """
        return [
            {
                "position": i,
                "worker_id": state.worker.worker_id,
                "est_quality": state.worker.quality,
                "true_quality": state.true_quality,
                "cost": state.worker.cost,
                "capacity": state.capacity,
                "active_tasks": sorted(state.active_tasks),
                "votes_cast": state.votes_cast,
                "agreements": state.agreements,
                "resolved_votes": state.resolved_votes,
                "spend": state.spend,
                "peak_load": state.peak_load,
            }
            for i, state in enumerate(self._states.values())
        ]

    @classmethod
    def from_rows(cls, worker_rows, vote_rows, reestimations: int) -> "WorkerRegistry":
        """Rebuild a registry from :meth:`worker_rows` +
        :meth:`AnswerMatrix.vote_rows` output."""
        registry = cls.__new__(cls)
        registry._states = {}
        registry._locks = tuple(
            threading.Lock() for _ in range(_LOCK_STRIPES)
        )
        registry._lease = None
        for row in sorted(worker_rows, key=lambda r: r["position"]):
            worker = Worker(
                row["worker_id"],
                float(row["est_quality"]),
                float(row["cost"]),
            )
            registry._states[worker.worker_id] = WorkerState(
                worker=worker,
                true_quality=float(row["true_quality"]),
                capacity=int(row["capacity"]),
                active_tasks=set(row["active_tasks"]),
                votes_cast=int(row["votes_cast"]),
                agreements=float(row["agreements"]),
                resolved_votes=int(row["resolved_votes"]),
                spend=float(row["spend"]),
                peak_load=int(row["peak_load"]),
            )
        registry.answers = AnswerMatrix.from_vote_rows(vote_rows)
        registry.reestimations = int(reestimations)
        return registry

    def original_pool(self) -> WorkerPool:
        """The pool the registry was built from: true (vote-generating)
        qualities in registry order."""
        return WorkerPool(
            Worker(s.worker.worker_id, s.true_quality, s.worker.cost)
            for s in self._states.values()
        )

    def estimation_error(self) -> float:
        """Mean absolute gap between estimated and true qualities — the
        quantity re-estimation should shrink in simulations."""
        gaps = [
            abs(s.worker.quality - s.true_quality)
            for s in self._states.values()
        ]
        return float(np.mean(gaps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        active = sum(s.load for s in self._states.values())
        return (
            f"WorkerRegistry(n={len(self)}, active_seats={active}, "
            f"spend={self.total_spend:.3g})"
        )
