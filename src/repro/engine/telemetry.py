"""Telemetry hub: metrics registry, structured event trace, profiling spans.

The serving stack (engine, scheduler, shards, intake) reports into a
single :class:`Telemetry` hub.  The hub is deliberately *observational*:
it records wall-clock timings, counters, and a bounded event trace, but
never feeds anything back into the deterministic engine state — the
engine's RNG stream, event ordering, and :meth:`EngineMetrics.fingerprint`
are byte-identical whether telemetry is on or off.

Three export surfaces cover the usual consumers:

* :meth:`Telemetry.snapshot` — a JSON-serialisable dict (counters,
  gauges, histograms, windowed intake/throughput rates).
* :meth:`Telemetry.render_prometheus` — Prometheus text exposition.
* :meth:`Telemetry.chrome_trace` — Chrome trace-event JSON; load the
  file written by :meth:`write_trace` directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.

The default for every engine is :data:`NULL_TELEMETRY`, a
:class:`NullTelemetry` whose methods are no-ops, so instrumented hot
paths cost a couple of attribute lookups when observability is off.

Thread-safety: one mutex guards the metric maps and the ring buffers.
Producers (intake threads), the serving loop, and parallel shard
dispatch workers all report concurrently; every public method takes the
lock for a handful of dict operations only and never calls back out
while holding it, so the hub cannot participate in a lock cycle with
engine-side locks.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SpanRecord",
    "Telemetry",
    "TraceEvent",
]

#: Fixed histogram bucket upper bounds (seconds).  Spans in this engine
#: range from microsecond memo hits to multi-second re-estimation
#: passes, hence the exponential spread.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Ring-buffer capacities.  Bounded so a week-long campaign cannot grow
#: the hub without limit; the trace keeps the most recent events.
DEFAULT_TRACE_CAPACITY = 16384
DEFAULT_SPAN_CAPACITY = 8192

#: Windowed-rate series keep at most this many intervals per series.
MAX_RATE_WINDOWS = 512

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


_EMPTY_LABELS: tuple[tuple[str, str], ...] = ()


def _labels_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable key for a label set."""
    if not labels:  # the common hot-path case: unlabeled metric
        return _EMPTY_LABELS
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class TraceEvent:
    """One structured entry in the bounded event trace."""

    seq: int
    ts: float  # seconds since the hub's epoch (monotonic, resume-safe)
    kind: str
    span_id: int  # 0 when the event is not tied to a span
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "span_id": self.span_id,
            "fields": dict(self.fields),
        }


@dataclass(frozen=True)
class SpanRecord:
    """A completed profiling span."""

    span_id: int
    name: str
    start: float
    duration: float
    thread: int
    labels: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "thread": self.thread,
            "labels": dict(self.labels),
        }


class _Histogram:
    """Fixed-bucket latency histogram (non-cumulative internal counts)."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "buckets": [
                {"le": "+Inf" if le == float("inf") else le, "count": n}
                for le, n in self.cumulative()
            ],
            "sum": self.total,
            "count": self.count,
        }

    def state_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "_Histogram":
        hist = cls(tuple(state["bounds"]))
        hist.counts = [int(n) for n in state["counts"]]
        hist.total = float(state["sum"])
        hist.count = int(state["count"])
        return hist


class _NullSpan:
    """Context manager returned by :class:`NullTelemetry` span hooks."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Times a block; observes a histogram and (optionally) records a
    :class:`SpanRecord` for the Chrome trace."""

    __slots__ = ("_hub", "name", "labels", "span_id", "start", "_record")

    def __init__(
        self,
        hub: "Telemetry",
        name: str,
        labels: dict[str, Any],
        record: bool,
    ):
        self._hub = hub
        self.name = name
        self.labels = {str(k): str(v) for k, v in labels.items()}
        self._record = record
        self.span_id = hub._next_span_id() if record else 0
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.start = self._hub.now()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = self._hub.now() - self.start
        self._hub.observe(f"{self.name}_seconds", duration, **self.labels)
        if self._record:
            self._hub._finish_span(self, duration)
        return False


class NullTelemetry:
    """No-op telemetry with the same surface as :class:`Telemetry`.

    Instrumentation sites call straight through without ``if`` guards;
    each call is one attribute lookup plus an empty method body.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def mark(self, name: str, n: int = 1) -> None:
        pass

    def event(self, kind: str, span_id: int = 0, **fields: Any) -> None:
        pass

    def span(self, name: str, **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def timer(self, name: str, **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_collector(self, collector: Callable[[], Iterable]) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"enabled": False}

    def render_prometheus(self) -> str:
        return "# telemetry disabled\n"

    def chrome_trace(self) -> dict[str, Any]:
        return {"traceEvents": []}

    def write_trace(self, path: str) -> int:
        return 0

    def trace_events(self) -> list[TraceEvent]:
        return []

    def completed_spans(self) -> list[SpanRecord]:
        return []

    def state_dict(self) -> None:
        return None

    def load_state(self, state: Any) -> None:
        pass


#: Shared no-op hub; the default ``telemetry`` argument everywhere.
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Thread-safe metrics registry + bounded structured event trace."""

    enabled = True

    def __init__(
        self,
        interval: float = 1.0,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
    ):
        if interval <= 0:
            raise ValueError("metrics interval must be positive")
        self.interval = float(interval)
        self._mutex = threading.Lock()
        self._t0 = time.monotonic()
        self._elapsed_offset = 0.0  # carried across checkpoint/resume
        self._counters: dict[tuple[str, tuple], float] = {}
        self._gauges: dict[tuple[str, tuple], float] = {}
        self._histograms: dict[tuple[str, tuple], _Histogram] = {}
        # series name -> {window index -> count}; insertion-ordered so
        # trimming drops the oldest window first.
        self._rates: dict[str, dict[int, int]] = {}
        # Events are stored as bare (seq, ts, kind, span_id, fields)
        # tuples — the emit side runs once per vote, so it skips the
        # dataclass construction; readers materialize TraceEvent.
        self._events: deque[tuple] = deque(maxlen=trace_capacity)
        self._spans: deque[SpanRecord] = deque(maxlen=span_capacity)
        self._event_seq = itertools.count(1)
        self._span_seq = itertools.count(1)
        self._collectors: list[Callable[[], Iterable]] = []

    # ----------------------------------------------------------- clock

    def now(self) -> float:
        """Seconds since the hub's epoch.

        Monotonic within a process *and* across ``checkpoint()`` /
        ``resume()``: :meth:`load_state` folds the elapsed time of the
        previous incarnation into an offset, so restored timestamps keep
        increasing instead of restarting at zero.
        """
        return self._elapsed_offset + (time.monotonic() - self._t0)

    # --------------------------------------------------------- metrics

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = (name, _labels_key(labels))
        with self._mutex:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _labels_key(labels))
        with self._mutex:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _labels_key(labels))
        with self._mutex:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram()
            hist.observe(value)

    def mark(self, name: str, n: int = 1) -> None:
        """Count ``n`` occurrences into the current rate window."""
        window = int(self.now() / self.interval)
        with self._mutex:
            series = self._rates.get(name)
            if series is None:
                series = self._rates[name] = {}
            series[window] = series.get(window, 0) + n
            while len(series) > MAX_RATE_WINDOWS:
                series.pop(next(iter(series)))

    # ----------------------------------------------------- trace/spans

    def event(self, kind: str, span_id: int = 0, **fields: Any) -> None:
        entry = (next(self._event_seq), self.now(), kind, span_id, fields)
        with self._mutex:
            self._events.append(entry)

    def span(self, name: str, **labels: Any) -> _Span:
        """Timed block recorded as both a histogram sample and a
        Chrome-trace span."""
        return _Span(self, name, labels, record=True)

    def timer(self, name: str, **labels: Any) -> _Span:
        """Timed block recorded as a histogram sample only (no span
        record) — for sites too hot to trace individually."""
        return _Span(self, name, labels, record=False)

    def _next_span_id(self) -> int:
        return next(self._span_seq)

    def _finish_span(self, span: _Span, duration: float) -> None:
        record = SpanRecord(
            span_id=span.span_id,
            name=span.name,
            start=span.start,
            duration=duration,
            thread=threading.get_ident(),
            labels=span.labels,
        )
        with self._mutex:
            self._spans.append(record)

    def trace_events(self) -> list[TraceEvent]:
        with self._mutex:
            rows = list(self._events)
        return [TraceEvent(*row) for row in rows]

    def completed_spans(self) -> list[SpanRecord]:
        with self._mutex:
            return list(self._spans)

    # ------------------------------------------------------ collectors

    def add_collector(self, collector: Callable[[], Iterable]) -> None:
        """Register a pull-based gauge source.

        ``collector()`` is invoked only at snapshot/export time and must
        yield ``(name, labels_dict, value)`` triples — zero hot-path
        cost for stats the owner already maintains (cache hit rates,
        registry load, intake depth).
        """
        with self._mutex:
            self._collectors.append(collector)

    def _collected_gauges(self) -> dict[tuple[str, tuple], float]:
        gauges: dict[tuple[str, tuple], float] = {}
        with self._mutex:
            collectors = list(self._collectors)
        for collector in collectors:
            for name, labels, value in collector():
                gauges[(name, _labels_key(labels))] = value
        return gauges

    # --------------------------------------------------------- exports

    def rates(self) -> dict[str, list[dict[str, float]]]:
        """Windowed per-interval rates, oldest window first."""
        with self._mutex:
            series = {name: dict(windows) for name, windows in self._rates.items()}
        out: dict[str, list[dict[str, float]]] = {}
        for name, windows in series.items():
            out[name] = [
                {
                    "window": idx,
                    "start": idx * self.interval,
                    "count": count,
                    "rate": count / self.interval,
                }
                for idx, count in sorted(windows.items())
            ]
        return out

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable view of every metric surface."""
        collected = self._collected_gauges()
        with self._mutex:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {k: h.as_dict() for k, h in self._histograms.items()}
            n_events = len(self._events)
            n_spans = len(self._spans)
        gauges.update(collected)

        def rows(table: dict[tuple[str, tuple], Any]) -> list[dict[str, Any]]:
            return [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(table.items())
            ]

        return {
            "enabled": True,
            "elapsed": self.now(),
            "interval": self.interval,
            "counters": rows(counters),
            "gauges": rows(gauges),
            "histograms": [
                {"name": name, "labels": dict(labels), **payload}
                for (name, labels), payload in sorted(histograms.items())
            ],
            "rates": self.rates(),
            "trace": {"events": n_events, "spans": n_spans},
        }

    @staticmethod
    def _prom_name(name: str) -> str:
        return "repro_" + _METRIC_NAME_RE.sub("_", name)

    @staticmethod
    def _prom_escape(value: Any) -> str:
        """Escape a label value per the Prometheus text format (v0.0.4):
        backslash, double-quote, and line-feed are the three characters
        the spec requires escaping inside quoted label values.  Label
        values are otherwise free-form UTF-8 — producer thread names
        (arbitrary caller-chosen strings) flow through here, so a
        hostile name must never break the exposition."""
        return (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )

    @classmethod
    def _prom_labels(cls, labels: tuple, extra: str = "") -> str:
        parts = [
            f'{_METRIC_NAME_RE.sub("_", k)}="{cls._prom_escape(v)}"'
            for k, v in labels
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render_prometheus(self) -> str:
        """Prometheus text-format exposition (v0.0.4)."""
        collected = self._collected_gauges()
        with self._mutex:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: (hist.cumulative(), hist.total, hist.count)
                for key, hist in self._histograms.items()
            }
        gauges.update(collected)

        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), value in sorted(counters.items()):
            pname = self._prom_name(name) + "_total"
            type_line(pname, "counter")
            lines.append(f"{pname}{self._prom_labels(labels)} {value:g}")
        for (name, labels), value in sorted(gauges.items()):
            pname = self._prom_name(name)
            type_line(pname, "gauge")
            lines.append(f"{pname}{self._prom_labels(labels)} {value:g}")
        for (name, labels), (cumulative, total, count) in sorted(
            histograms.items()
        ):
            pname = self._prom_name(name)
            type_line(pname, "histogram")
            for le, running in cumulative:
                le_text = "+Inf" if le == float("inf") else f"{le:g}"
                le_label = 'le="' + le_text + '"'
                bucket_labels = self._prom_labels(labels, le_label)
                lines.append(f"{pname}_bucket{bucket_labels} {running}")
            lines.append(f"{pname}_sum{self._prom_labels(labels)} {total:g}")
            lines.append(f"{pname}_count{self._prom_labels(labels)} {count}")
        return "\n".join(lines) + "\n"

    def chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON (loadable in Perfetto).

        Spans become ``"X"`` (complete) events on their recording
        thread; structured trace entries become ``"i"`` (instant)
        events.  Timestamps are microseconds since the hub epoch.
        """
        with self._mutex:
            spans = list(self._spans)
            events = [TraceEvent(*row) for row in self._events]
        trace_events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro-engine"},
            }
        ]
        for span in spans:
            trace_events.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 1,
                    "tid": span.thread % 100000,
                    "id": span.span_id,
                    "args": dict(span.labels),
                }
            )
        for entry in events:
            args = {str(k): v for k, v in entry.fields.items()}
            if entry.span_id:
                args["span_id"] = entry.span_id
            trace_events.append(
                {
                    "name": entry.kind,
                    "cat": "event",
                    "ph": "i",
                    "ts": entry.ts * 1e6,
                    "pid": 1,
                    "tid": 0,
                    "s": "p",
                    "args": args,
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_trace(self, path: str) -> int:
        """Write the Chrome trace to ``path``; returns the event count.

        The write is atomic (tmp file + rename), so a reader — or a
        crash mid-write — never observes a truncated trace; serve-mode
        periodic flushes rewrite the same path safely.
        """
        trace = self.chrome_trace()
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(trace, handle)
                handle.write("\n")
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return len(trace["traceEvents"])

    # ----------------------------------------------------- persistence

    def state_dict(self) -> dict[str, Any]:
        """JSON-serialisable state for checkpoint/resume survival."""
        with self._mutex:
            return {
                "elapsed": self.now(),
                "interval": self.interval,
                "counters": [
                    [name, [list(pair) for pair in labels], value]
                    for (name, labels), value in self._counters.items()
                ],
                "gauges": [
                    [name, [list(pair) for pair in labels], value]
                    for (name, labels), value in self._gauges.items()
                ],
                "histograms": [
                    [name, [list(pair) for pair in labels], hist.state_dict()]
                    for (name, labels), hist in self._histograms.items()
                ],
                "rates": {
                    name: [[idx, count] for idx, count in windows.items()]
                    for name, windows in self._rates.items()
                },
                "events": [
                    TraceEvent(*row).as_dict() for row in self._events
                ],
                "spans": [record.as_dict() for record in self._spans],
                # Highest ids retained in the rings (ids restart above
                # them on resume; the itertools counters cannot be
                # inspected without consuming them, and concurrent
                # emitters may append slightly out of id order, hence
                # the max).
                "event_seq": max(
                    (row[0] for row in self._events), default=0
                ),
                "span_seq": max(
                    (record.span_id for record in self._spans), default=0
                ),
            }

    def load_state(self, state: dict[str, Any] | None) -> None:
        if not state:
            return
        with self._mutex:
            self._t0 = time.monotonic()
            self._elapsed_offset = float(state.get("elapsed", 0.0))
            self._counters = {
                (name, tuple(tuple(pair) for pair in labels)): value
                for name, labels, value in state.get("counters", [])
            }
            self._gauges = {
                (name, tuple(tuple(pair) for pair in labels)): value
                for name, labels, value in state.get("gauges", [])
            }
            self._histograms = {
                (name, tuple(tuple(pair) for pair in labels)): _Histogram.from_state(
                    payload
                )
                for name, labels, payload in state.get("histograms", [])
            }
            self._rates = {
                name: {int(idx): int(count) for idx, count in windows}
                for name, windows in state.get("rates", {}).items()
            }
            self._events.clear()
            for row in state.get("events", []):
                self._events.append(
                    (
                        int(row["seq"]),
                        float(row["ts"]),
                        str(row["kind"]),
                        int(row.get("span_id", 0)),
                        dict(row.get("fields", {})),
                    )
                )
            self._spans.clear()
            for row in state.get("spans", []):
                self._spans.append(
                    SpanRecord(
                        span_id=int(row["span_id"]),
                        name=str(row["name"]),
                        start=float(row["start"]),
                        duration=float(row["duration"]),
                        thread=int(row.get("thread", 0)),
                        labels=dict(row.get("labels", {})),
                    )
                )
            self._event_seq = itertools.count(int(state.get("event_seq", 0)) + 1)
            self._span_seq = itertools.count(int(state.get("span_seq", 0)) + 1)
