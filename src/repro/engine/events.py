"""Event model for the campaign engine.

The engine is a discrete-event system: everything that happens to the
shared worker/task state — a task arriving, a juror's vote landing, a
task finishing — is an :class:`Event` popped from one totally ordered
queue.  Ordering is ``(time, seq)`` where ``seq`` is the enqueue serial
number, so runs are deterministic even when many events share a
timestamp: same inputs + same seed => same pop order => same campaign.

Times are *logical* (dimensionless ticks), not wall-clock: the
simulators drive the clock, which is what makes load tests
reproducible.  The DB-nets line of work (Montali & Rivkin) couples a
persistent data layer to exactly this kind of event-driven process
model; here the "data layer" is the :class:`~repro.engine.state.WorkerRegistry`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..core.task import UNINFORMATIVE_PRIOR, validate_prior


@dataclass(frozen=True)
class EngineTask:
    """One decision task submitted to the engine.

    Parameters
    ----------
    task_id:
        Unique identifier within the campaign.
    prior:
        ``alpha = Pr(t = 0)`` for this task.
    ground_truth:
        Latent true answer, known only in simulations; ``None`` in
        production (the engine then scores accuracy only on tasks whose
        truth is known).
    """

    task_id: str
    prior: float = UNINFORMATIVE_PRIOR
    ground_truth: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.task_id, str) or not self.task_id:
            raise ValueError("task_id must be a non-empty string")
        object.__setattr__(self, "prior", validate_prior(self.prior))
        if self.ground_truth is not None and self.ground_truth not in (0, 1):
            raise ValueError(
                f"ground_truth must be 0, 1 or None, got {self.ground_truth!r}"
            )

    def state_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "prior": self.prior,
            "ground_truth": self.ground_truth,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "EngineTask":
        truth = state["ground_truth"]
        return cls(
            task_id=state["task_id"],
            prior=float(state["prior"]),
            ground_truth=None if truth is None else int(truth),
        )


@dataclass(frozen=True)
class Event:
    """Base event; subclasses carry the payload."""

    time: float


@dataclass(frozen=True)
class TaskArrival(Event):
    """A new task enters the campaign."""

    task: EngineTask


@dataclass(frozen=True)
class VoteArrival(Event):
    """One assigned juror's vote lands for one task."""

    task_id: str
    worker_id: str


@dataclass(frozen=True)
class TaskComplete(Event):
    """A task reached a verdict (normally, by early stop, or unfunded)."""

    task_id: str
    reason: str  # "all-votes" | "early-stop" | "unfunded"


def event_to_state(event: Event) -> dict:
    """Serialize one event to a plain-JSON dict."""
    if isinstance(event, TaskArrival):
        return {
            "kind": "task-arrival",
            "time": event.time,
            "task": event.task.state_dict(),
        }
    if isinstance(event, VoteArrival):
        return {
            "kind": "vote-arrival",
            "time": event.time,
            "task_id": event.task_id,
            "worker_id": event.worker_id,
        }
    if isinstance(event, TaskComplete):
        return {
            "kind": "task-complete",
            "time": event.time,
            "task_id": event.task_id,
            "reason": event.reason,
        }
    raise TypeError(f"unknown event {type(event).__name__}")


def event_from_state(state: Mapping) -> Event:
    """Inverse of :func:`event_to_state`."""
    kind = state["kind"]
    time = float(state["time"])
    if kind == "task-arrival":
        return TaskArrival(time, EngineTask.from_state(state["task"]))
    if kind == "vote-arrival":
        return VoteArrival(time, state["task_id"], state["worker_id"])
    if kind == "task-complete":
        return TaskComplete(time, state["task_id"], state["reason"])
    raise ValueError(f"unknown event kind {kind!r}")


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    event: Event = field(compare=False)


class EventQueue:
    """A deterministic priority queue of engine events.

    Pops in ``(time, enqueue-order)`` order.  ``pending`` counts per
    event type let the engine decide when an arrival batch is complete
    without peeking into the heap.
    """

    def __init__(self) -> None:
        self._heap: list[_QueueEntry] = []
        self._seq = 0
        self._pending: dict[type, int] = {}

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, _QueueEntry(event.time, self._seq, event))
        self._seq += 1
        self._pending[type(event)] = self._pending.get(type(event), 0) + 1

    def pop(self) -> Event:
        entry = heapq.heappop(self._heap)
        self._pending[type(entry.event)] -= 1
        return entry.event

    def peek(self) -> Event | None:
        """The event :meth:`pop` would return next, without removing it
        (``None`` on an empty queue) — lets the vote-fanout drain test
        whether the next event extends the current same-tick run."""
        return self._heap[0].event if self._heap else None

    def pending(self, event_type: type) -> int:
        """Number of queued events of exactly ``event_type``."""
        return self._pending.get(event_type, 0)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debugging aid
        return (entry.event for entry in sorted(self._heap))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Pending events (in pop order, with their enqueue serials) and
        the serial counter — everything replay identity needs."""
        return {
            "next_seq": self._seq,
            "entries": [
                [entry.time, entry.seq, event_to_state(entry.event)]
                for entry in sorted(self._heap)
            ],
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "EventQueue":
        """Rebuild a queue whose pops replay the captured order exactly
        (``(time, seq)`` keys are unique, so heap layout is
        irrelevant)."""
        queue = cls()
        for time, seq, event_state in state["entries"]:
            event = event_from_state(event_state)
            heapq.heappush(
                queue._heap, _QueueEntry(float(time), int(seq), event)
            )
            queue._pending[type(event)] = (
                queue._pending.get(type(event), 0) + 1
            )
        queue._seq = int(state["next_seq"])
        return queue
