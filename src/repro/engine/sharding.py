"""Sharded worker pools under a top-level budget allocator.

The exact cost-JQ frontier enumerates ``2^k`` juries, which caps any
one scheduler's candidate pool at ~12 workers — a hard ceiling the
single-scheduler engine inherits no matter how many workers register.
This module lifts that ceiling *structurally* instead of numerically:

* the global :class:`~repro.engine.state.WorkerRegistry` is partitioned
  into K **shards** (a stratified most-informative-first deal, so every
  shard starts with a comparable quality profile);
* each shard gets its own :class:`~repro.engine.scheduler.CampaignScheduler`
  and :class:`~repro.engine.cache.JQCache`, so every frontier is built
  over at most one shard's members and stays inside the exact cap;
* a top-level :class:`BudgetAllocator` paces the campaign budget
  globally and splits each scheduling round's entitlement across shards
  **proportional to shard quality mass**, re-absorbing unspent grants
  and early-stop refunds into the shared pot each round;
* a routing policy (``hash``, ``least-loaded``, ``quality-balanced``)
  assigns arriving tasks to shards, and **rebalancing** migrates idle
  workers from underloaded to overloaded shards when load skews.

The DB-nets line of work (Montali & Rivkin) treats state transitions of
a data-aware process as explicit, checkable invariants; the sharded
engine is built to the same discipline — every grant, reservation,
re-absorption, and refund flows through one allocator ledger whose
conservation laws are asserted by ``tests/engine/test_invariants.py``.

Worker *state* stays global: seats, spend, vote history, and EM quality
re-estimation still live in the one registry, so sharding changes who
*schedules* a worker, never what is known about them.

Usage::

    engine = ShardedCampaignEngine(pool, config, ShardingConfig(4))
    engine.submit(...)
    metrics = engine.run()   # identical surface to CampaignEngine

With ``ShardingConfig(1)`` the sharded engine reproduces the plain
:class:`~repro.engine.engine.CampaignEngine` byte-for-byte (same seed
=> same :meth:`~repro.engine.metrics.EngineMetrics.fingerprint`), which
the regression suite pins.
"""

from __future__ import annotations

import threading
import warnings
import zlib
from concurrent.futures import ThreadPoolExecutor, wait as _futures_wait
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.jury import Jury
from ..core.worker import WorkerPool
from .cache import CacheStats, JQCache
from .engine import CampaignEngine, EngineConfig
from .events import EngineTask
from .metrics import AllocatorSnapshot, ShardSnapshot
from .procpool import ProcPoolError, ShardProcessPool, ShardWorkState
from .scheduler import (
    Assignment,
    CampaignScheduler,
    SchedulerStats,
    pro_rata_round_budget,
)
from .state import (
    WorkerRegistry,
    WorkerState,
    informativeness_key,
    quality_mass,
)
from .telemetry import NULL_TELEMETRY

#: Routing policies understood by :class:`ShardingConfig`.
ROUTING_POLICIES = ("hash", "least-loaded", "quality-balanced")

#: Rebalancing never strips a shard below this many members — a shard
#: with one worker left cannot meaningfully seat juries, let alone
#: donate.
MIN_SHARD_MEMBERS = 2


@dataclass(frozen=True)
class ShardingConfig:
    """Tunables of the sharded serving layer.

    Parameters
    ----------
    num_shards:
        Number of shards (>= 1; at most the pool size).
    policy:
        Task-routing policy: ``"hash"`` (stable id hash — sticky and
        stateless), ``"least-loaded"`` (lowest seat-utilisation shard),
        or ``"quality-balanced"`` (highest available quality mass per
        in-flight task).
    rebalance_threshold:
        Migrate idle workers when the gap between the most- and
        least-utilised shard's seat ratio exceeds this (``1.0``
        effectively disables rebalancing — the gap never exceeds 1).
    rebalance_max_moves:
        Max workers migrated per scheduling round (0 disables).
    """

    num_shards: int
    policy: str = "hash"
    rebalance_threshold: float = 0.25
    rebalance_max_moves: int = 2

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.policy!r} "
                f"(expected one of {', '.join(ROUTING_POLICIES)})"
            )
        if not 0.0 < self.rebalance_threshold <= 1.0:
            raise ValueError("rebalance_threshold must lie in (0, 1]")
        if self.rebalance_max_moves < 0:
            raise ValueError("rebalance_max_moves must be >= 0")


class ShardRegistryView:
    """A shard's window onto the global :class:`WorkerRegistry`.

    Presents the registry surface the scheduler consumes —
    ``available_pool`` / ``states`` / ``worker`` / ``free_capacity`` /
    ``assign`` — restricted to the shard's member ids, so an unmodified
    :class:`CampaignScheduler` plugged into a view can only ever see or
    seat its own shard's workers.  Iteration follows the *global*
    registry order (filtered by membership), keeping every downstream
    ranking deterministic and making the one-shard view behave
    identically to the bare registry.

    Membership is mutable: rebalancing moves an idle worker between
    shards by removing the id here and adding it to the other view.
    The underlying worker state (seats, spend, votes) never moves — it
    lives in the global registry.
    """

    def __init__(self, registry: WorkerRegistry, member_ids: Iterable[str]) -> None:
        self._registry = registry
        self._members = set(member_ids)
        for worker_id in self._members:
            if worker_id not in registry:
                raise KeyError(f"unknown worker {worker_id!r}")
        # Member states change only on migration; states themselves are
        # mutated in place by the registry, so the filtered tuple stays
        # valid between membership changes.
        self._states_cache: tuple[WorkerState, ...] | None = None

    # -- membership ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._members

    @property
    def member_ids(self) -> tuple[str, ...]:
        """Member ids in global registry order."""
        return tuple(
            w for w in self._registry.worker_ids if w in self._members
        )

    def add_member(self, worker_id: str) -> None:
        if worker_id not in self._registry:
            raise KeyError(f"unknown worker {worker_id!r}")
        self._members.add(worker_id)
        self._states_cache = None

    def remove_member(self, worker_id: str) -> None:
        self._members.remove(worker_id)
        self._states_cache = None

    # -- the registry surface the scheduler consumes -------------------
    @property
    def states(self) -> tuple[WorkerState, ...]:
        if self._states_cache is None:
            self._states_cache = tuple(
                s
                for s in self._registry.states
                if s.worker.worker_id in self._members
            )
        return self._states_cache

    def available_pool(self, exclude: Iterable[str] = ()) -> WorkerPool:
        excluded = set(exclude)
        return WorkerPool(
            s.worker
            for s in self.states
            if s.free_capacity > 0 and s.worker.worker_id not in excluded
        )

    def worker(self, worker_id: str):
        return self._registry.worker(worker_id)

    def free_capacity(self, worker_id: str) -> int:
        if worker_id not in self._members:
            return 0  # not ours to seat
        return self._registry.free_capacity(worker_id)

    def assign(self, worker_id: str, task_id: str) -> None:
        if worker_id not in self._members:
            raise KeyError(
                f"worker {worker_id!r} is not a member of this shard"
            )
        self._registry.assign(worker_id, task_id)

    # -- shard-level aggregates ----------------------------------------
    @property
    def active_seats(self) -> int:
        return sum(s.load for s in self.states)

    @property
    def total_capacity(self) -> int:
        return sum(s.capacity for s in self.states)

    @property
    def load_ratio(self) -> float:
        """Occupied fraction of the shard's jury seats."""
        capacity = self.total_capacity
        if capacity == 0:
            return 1.0  # an empty shard is "full": route nothing here
        return self.active_seats / capacity

    def quality_mass(self, available_only: bool = True) -> float:
        return quality_mass(self.states, available_only=available_only)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardRegistryView({len(self)} members, "
            f"{self.active_seats}/{self.total_capacity} seats)"
        )


class BudgetAllocator:
    """Top-level budget ledger for a sharded campaign.

    Reproduces the single scheduler's pro-rata pacing at campaign scope
    — cumulative *entitlement* grows with each distinct task admitted,
    a round may grant at most the entitlement not yet (net) reserved —
    then splits each round's budget across shards proportional to their
    available quality mass.  Shards reserve out of their grant; whatever
    a grant leaves unreserved is **re-absorbed** immediately (it was
    never debited), and early-stop refunds flow back here rather than
    to any one shard, so the whole campaign — not the lucky shard —
    re-spends them.

    Conservation laws (asserted by the invariant harness):

    * ``granted == reserved_from_grants + reabsorbed`` per round and
      cumulatively;
    * ``reserved - refunded <= budget`` at every instant;
    * ``entitled <= budget`` always.

    Every ledger mutation (``open_round`` / ``split`` / ``settle`` /
    ``refund``) is atomic under one mutex, so shard admits running on a
    thread pool — or an early-stop refund racing a settling round —
    can never interleave half-applied ledger updates.
    """

    def __init__(self, budget: float, expected_tasks: int) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        if expected_tasks < 1:
            raise ValueError("expected_tasks must be >= 1")
        self.budget = float(budget)
        self.expected_tasks = expected_tasks
        self._mutex = threading.Lock()
        self._entitled = 0.0
        self._entitled_tasks: set[str] = set()
        self._reserved = 0.0
        self._refunded = 0.0
        self._granted = 0.0
        self._reabsorbed = 0.0
        self._rounds = 0

    # -- introspection -------------------------------------------------
    @property
    def entitled(self) -> float:
        return self._entitled

    @property
    def reserved(self) -> float:
        """Gross spend reserved so far (before refunds)."""
        return self._reserved

    @property
    def refunded(self) -> float:
        return self._refunded

    @property
    def granted(self) -> float:
        return self._granted

    @property
    def reabsorbed(self) -> float:
        return self._reabsorbed

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def remaining_budget(self) -> float:
        return self.budget - self._reserved + self._refunded

    # -- the per-round protocol ----------------------------------------
    def open_round(self, task_ids: Iterable[str]) -> float:
        """Start a scheduling round; returns the round's budget.

        Entitlement grows once per *distinct* task id — deferred tasks
        retried across rounds must not mint fresh shares.  The pacing
        arithmetic is :func:`~repro.engine.scheduler.pro_rata_round_budget`
        — the same function the single scheduler paces itself with,
        applied campaign-wide, which is what makes the pinned
        single-shard byte-identity structural.
        """
        with self._mutex:
            self._rounds += 1
            new_ids = set(task_ids) - self._entitled_tasks
            self._entitled_tasks |= new_ids
            self._entitled, round_budget = pro_rata_round_budget(
                self.budget,
                self.expected_tasks,
                self._entitled,
                len(new_ids),
                self._reserved,
                self._refunded,
            )
            return round_budget

    def split(
        self, round_budget: float, masses: Mapping[int, float]
    ) -> dict[int, float]:
        """Split a round's budget across shards proportional to mass.

        ``masses`` maps shard id -> available quality mass; only shards
        present get a grant.  All-zero masses (every listed shard fully
        saturated) fall back to an equal split — the tasks were already
        routed there, so starving them entirely would just defer the
        whole round.
        """
        if not masses:
            return {}
        round_budget = max(float(round_budget), 0.0)
        if len(masses) == 1:
            # Sole recipient takes the round exactly — no proportional
            # arithmetic, so a one-shard campaign's grants match the
            # single scheduler's pacing bit-for-bit.
            grants = {next(iter(masses)): round_budget}
            with self._mutex:
                self._granted += round_budget
            return grants
        total = float(sum(masses.values()))
        if total <= 0.0:
            grants = {k: round_budget / len(masses) for k in masses}
        else:
            grants = {
                k: round_budget * mass / total for k, mass in masses.items()
            }
        with self._mutex:
            self._granted += sum(grants.values())
        return grants

    def settle(self, granted: float, reserved: float) -> None:
        """Record one shard's round outcome: commit what it reserved,
        re-absorb the rest of its grant."""
        if reserved > granted + 1e-9:
            raise ValueError(
                f"shard reserved {reserved} beyond its grant {granted}"
            )
        with self._mutex:
            self._reserved += max(float(reserved), 0.0)
            self._reabsorbed += max(float(granted) - float(reserved), 0.0)

    def refund(self, amount: float) -> None:
        """Return unspent reservation (early-stopped task) to the pot."""
        if amount < -1e-9:
            raise ValueError(f"refund must be non-negative, got {amount}")
        with self._mutex:
            self._refunded += max(float(amount), 0.0)

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "entitled": self._entitled,
            "entitled_tasks": sorted(self._entitled_tasks),
            "reserved": self._reserved,
            "refunded": self._refunded,
            "granted": self._granted,
            "reabsorbed": self._reabsorbed,
            "rounds": self._rounds,
        }

    def load_state(self, state: Mapping) -> None:
        with self._mutex:
            self._entitled = float(state["entitled"])
            self._entitled_tasks = set(state["entitled_tasks"])
            self._reserved = float(state["reserved"])
            self._refunded = float(state["refunded"])
            self._granted = float(state["granted"])
            self._reabsorbed = float(state["reabsorbed"])
            self._rounds = int(state["rounds"])

    def snapshot(self) -> AllocatorSnapshot:
        return AllocatorSnapshot(
            budget=self.budget,
            entitled=self._entitled,
            granted=self._granted,
            reserved=self._reserved,
            refunded=self._refunded,
            reabsorbed=self._reabsorbed,
            rounds=self._rounds,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BudgetAllocator(budget={self.budget:g}, "
            f"reserved={self._reserved:.3g}, refunded={self._refunded:.3g})"
        )


@dataclass
class Shard:
    """One shard: a registry view, its scheduler, and its JQ cache."""

    shard_id: int
    view: ShardRegistryView
    cache: JQCache
    scheduler: CampaignScheduler
    migrations_in: int = 0
    migrations_out: int = 0
    granted: float = 0.0  # cumulative allocator grants to this shard

    def snapshot(self) -> ShardSnapshot:
        stats = self.scheduler.stats
        return ShardSnapshot(
            shard_id=self.shard_id,
            workers=len(self.view),
            admitted=stats.admitted,
            unfunded=stats.unfunded,
            deferred=stats.deferred,
            substitutions=stats.substitutions,
            reserved=self.scheduler.reserved,
            migrations_in=self.migrations_in,
            migrations_out=self.migrations_out,
            cache=self.cache.stats,
            seats=self.view.active_seats,
            capacity=self.view.total_capacity,
            granted=self.granted,
        )


def partition_members(
    registry: WorkerRegistry, num_shards: int
) -> list[list[str]]:
    """Stratified partition: rank workers most-informative-first and
    deal them round-robin, so every shard opens with a comparable
    quality profile (no shard is born a frontier desert)."""
    if not 1 <= num_shards <= len(registry):
        raise ValueError(
            f"num_shards must lie in [1, {len(registry)}] "
            f"(pool size), got {num_shards}"
        )
    ranked = sorted(
        registry.states, key=lambda s: informativeness_key(s.worker)
    )
    members: list[list[str]] = [[] for _ in range(num_shards)]
    for i, state in enumerate(ranked):
        members[i % num_shards].append(state.worker.worker_id)
    return members


class ShardedScheduler:
    """Routes task batches to shards under one budget allocator.

    Presents the same ``admit`` / ``refund`` / ``stats`` surface as
    :class:`CampaignScheduler`, so the engine event loop drives either
    interchangeably.  Per round it (1) opens the allocator's round,
    (2) routes each task to a shard, (3) grants each participating
    shard its quality-mass share of the round budget, (4) lets each
    shard's scheduler admit its sub-batch inside its grant, settling
    reservations and re-absorbing the unspent remainder, and (5)
    rebalances idle workers if shard load has skewed.

    With ``config.parallel_shards > 0`` step (4) dispatches the
    per-shard admits to a :class:`~concurrent.futures.ThreadPoolExecutor`
    instead of looping over them.  Admits are independent by
    construction — each shard's scheduler reads and seats only its own
    members, grants are computed before dispatch, and the registry's
    ``assign``/``release`` and the allocator's ledger are the only
    shared write surfaces (both lock-guarded) — and results are merged
    and settled in shard-id order, so the parallel path's decisions are
    byte-identical to the sequential path's (fingerprint-pinned).  The
    shard frontier builds run numpy kernels that release the GIL, which
    is where the wall-clock actually drops.

    With ``config.dispatch == "processes"`` step (4) instead ships each
    shard's round to a persistent
    :class:`~repro.engine.procpool.ShardProcessPool` worker *process*
    holding the shard's live scheduler and cache (see
    :mod:`repro.engine.procpool.worker` for the authority split), which
    parallelizes the pure-Python envelope walk itself — the part the
    GIL serializes under threads.  Between rounds the parent's per-shard
    replicas are stale; every read surface (``stats``, ``state_dict``,
    snapshots, cache merges) pulls worker state first, while telemetry
    *gauges* deliberately read the possibly-stale replicas (collectors
    may fire off the loop thread and must not touch the pipes).
    """

    def __init__(
        self,
        registry: WorkerRegistry,
        config: EngineConfig,
        sharding: ShardingConfig,
        expected_tasks: int,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        self.registry = registry
        self.sharding = sharding
        self.telemetry = telemetry
        self.allocator = BudgetAllocator(config.budget, expected_tasks)
        self._pool: ShardProcessPool | None = None
        # Worker-side scheduler/cache state is authoritative between
        # dispatch rounds; this flag marks the parent-side replicas
        # stale until the next pull_worker_state().
        self._dispatched_since_pull = False
        if config.dispatch == "processes" and sharding.num_shards > 1:
            self._pool = ShardProcessPool(
                sharding.num_shards,
                {
                    "budget": config.budget,
                    "expected_tasks": expected_tasks,
                    "frontier_pool_size": config.frontier_pool_size,
                    "jq_kernel": config.jq_kernel,
                    "alpha": config.alpha,
                    "num_buckets": config.num_buckets,
                    "quantization": config.quantization,
                    "cache_max_entries": config.cache_max_entries,
                },
                telemetry=telemetry,
            )
        self._executor: ThreadPoolExecutor | None = None
        # The process pool supersedes the thread pool: both parallelize
        # step (4), and rounds must go through exactly one of them.
        if (
            config.parallel_shards > 0
            and sharding.num_shards > 1
            and self._pool is None
        ):
            self._executor = ThreadPoolExecutor(
                max_workers=min(config.parallel_shards, sharding.num_shards),
                thread_name_prefix="repro-shard",
            )
        self.shards: list[Shard] = []
        for shard_id, member_ids in enumerate(
            partition_members(registry, sharding.num_shards)
        ):
            view = ShardRegistryView(registry, member_ids)
            cache = JQCache(
                alpha=config.alpha,
                num_buckets=config.num_buckets,
                quantization=config.quantization,
                max_entries=config.cache_max_entries,
            )
            scheduler = CampaignScheduler(
                view,
                cache,
                budget=config.budget,
                expected_tasks=expected_tasks,
                frontier_pool_size=config.frontier_pool_size,
                jq_kernel=config.jq_kernel,
                telemetry=telemetry,
                shard_id=shard_id,
            )
            self.shards.append(Shard(shard_id, view, cache, scheduler))
        self.migrations = 0
        telemetry.add_collector(self._telemetry_gauges)

    def _telemetry_gauges(self):
        """Per-shard pull gauges (collector: read at export time only)."""
        for shard in self.shards:
            labels = {"shard": shard.shard_id}
            yield from shard.cache.stats.telemetry_gauges(**labels)
            yield "shard.workers", labels, float(len(shard.view))
            yield "shard.active_seats", labels, float(shard.view.active_seats)
            yield "shard.capacity", labels, float(shard.view.total_capacity)
            yield "shard.granted", labels, shard.granted
            yield "shard.reserved", labels, shard.scheduler.reserved

    # ------------------------------------------------------------------
    # The CampaignScheduler surface
    # ------------------------------------------------------------------
    def admit(
        self, tasks: Sequence[EngineTask]
    ) -> tuple[list[Assignment], list[EngineTask]]:
        if not tasks:
            return [], []
        round_budget = self.allocator.open_round(t.task_id for t in tasks)
        routed = self.route(tasks)
        masses = {
            shard_id: self.shards[shard_id].view.quality_mass()
            for shard_id in routed
        }
        grants = self.allocator.split(round_budget, masses)
        order = sorted(routed)
        if self._pool is not None:
            assignments, deferred = self._admit_via_pool(
                order, routed, grants
            )
            self.rebalance()
            return assignments, deferred
        # Every grant opened this round must be settled exactly once —
        # on success against the shard's actual reservations, on error
        # against whatever the shard reserved before raising (a partial
        # admit may have seated juries already).  Otherwise the round's
        # budget is never reabsorbed and the conservation ledger
        # (granted == reserved + reabsorbed) is permanently short.
        reserved_before = {
            shard_id: self.shards[shard_id].scheduler.reserved
            for shard_id in order
        }
        settled: set[int] = set()
        try:
            if self._executor is not None and len(order) > 1:
                # Concurrent dispatch: every input (sub-batch, grant) is
                # fixed before the first future is submitted, each shard
                # scheduler touches only its own members, and the merge
                # below consumes results in shard-id order — so the
                # round's outcome is independent of thread interleaving.
                futures = [
                    self._executor.submit(
                        self.shards[shard_id].scheduler.admit,
                        routed[shard_id],
                        grants[shard_id],
                    )
                    for shard_id in order
                ]
                try:
                    results = [future.result() for future in futures]
                except BaseException:
                    # One shard failed: stop siblings that have not
                    # started, and wait out the ones already running so
                    # their reservations are final before the ledger is
                    # repaired below.
                    for future in futures:
                        future.cancel()
                    _futures_wait(futures)
                    raise
            else:
                results = [
                    self.shards[shard_id].scheduler.admit(
                        routed[shard_id], batch_budget=grants[shard_id]
                    )
                    for shard_id in order
                ]
            assignments: list[Assignment] = []
            deferred: list[EngineTask] = []
            with self.telemetry.span("dispatch_merge"):
                for shard_id, (admitted, shard_deferred) in zip(
                    order, results
                ):
                    reserved = sum(a.reserved_cost for a in admitted)
                    self.allocator.settle(grants[shard_id], reserved)
                    self.shards[shard_id].granted += grants[shard_id]
                    settled.add(shard_id)
                    assignments.extend(admitted)
                    deferred.extend(shard_deferred)
        except BaseException:
            for shard_id in order:
                if shard_id in settled:
                    continue
                grant = grants[shard_id]
                delta = (
                    self.shards[shard_id].scheduler.reserved
                    - reserved_before[shard_id]
                )
                # Clamp into [0, grant]: the shard cannot legitimately
                # reserve beyond its grant, but the error path must
                # repair the ledger, not assert about a broken shard.
                self.allocator.settle(grant, min(max(delta, 0.0), grant))
                self.shards[shard_id].granted += grant
                self.telemetry.event(
                    "admit-error-settle",
                    shard=shard_id,
                    grant=grant,
                    reserved=delta,
                )
            raise
        self.rebalance()
        return assignments, deferred

    def _admit_via_pool(
        self,
        order: list[int],
        routed: Mapping[int, list[EngineTask]],
        grants: Mapping[int, float],
    ) -> tuple[list[Assignment], list[EngineTask]]:
        """Dispatch one round to the shard worker processes.

        Each participating shard's membership rows (global registry
        order), routed sub-batch, and grant ship down the pipe as one
        :class:`ShardWorkState`; decisions come back as plain ids and
        are replayed through the real registry views in shard-id order
        — so the round's outcome is byte-identical to inline dispatch
        while the frontier walks run on separate interpreters.

        Every grant opened this round is settled exactly once on every
        path: per shard on success, and from the worker-reported
        reservation deltas (``ProcPoolError.partial_reserved`` for
        failed shards) when a worker errors or dies — the cross-process
        extension of the conservation law ``granted == reserved +
        reabsorbed``.  A failed round poisons the pool (worker state
        may be half-mutated); recover by resuming from the last
        checkpoint.
        """
        assert self._pool is not None
        work_states = []
        for shard_id in order:
            view = self.shards[shard_id].view
            work_states.append(
                ShardWorkState(
                    shard_id=shard_id,
                    member_rows=[
                        (
                            s.worker.worker_id,
                            s.worker.quality,
                            s.worker.cost,
                            s.capacity,
                            sorted(s.active_tasks),
                        )
                        for s in view.states
                    ],
                    task_states=[t.state_dict() for t in routed[shard_id]],
                    grant=grants[shard_id],
                )
            )
        self._dispatched_since_pull = True
        with self.telemetry.span("procpool_round", shards=len(order)):
            try:
                results = self._pool.admit_round(work_states)
            except ProcPoolError as exc:
                ok = {
                    r.shard_id: r for r in getattr(exc, "results", [])
                }
                partial = getattr(exc, "partial_reserved", {})
                for shard_id in order:
                    delta = (
                        ok[shard_id].reserved
                        if shard_id in ok
                        else partial.get(shard_id, 0.0)
                    )
                    self._settle_failed(shard_id, grants[shard_id], delta)
                self._pool.close()
                raise
            settled: set[int] = set()
            assignments: list[Assignment] = []
            deferred: list[EngineTask] = []
            try:
                for shard_id, result in zip(order, results):
                    task_by_id = {
                        t.task_id: t for t in routed[shard_id]
                    }
                    view = self.shards[shard_id].view
                    for (
                        task_id,
                        seated_ids,
                        predicted_jq,
                        reserved_cost,
                    ) in result.assignments:
                        for worker_id in seated_ids:
                            view.assign(worker_id, task_id)
                        assignments.append(
                            Assignment(
                                task_by_id[task_id],
                                Jury(
                                    self.registry.worker(w)
                                    for w in seated_ids
                                ),
                                predicted_jq,
                                reserved_cost,
                            )
                        )
                    deferred.extend(
                        task_by_id[t] for t in result.deferred
                    )
                    self.allocator.settle(grants[shard_id], result.reserved)
                    self.shards[shard_id].granted += grants[shard_id]
                    settled.add(shard_id)
                    self.telemetry.inc(
                        "scheduler.procpool_rounds",
                        shard=shard_id,
                        pid=self._pool.pids[shard_id],
                    )
            except BaseException:
                # Replay failure (e.g. a lease coordinator denied a
                # seat another engine raced us to): the ledger must
                # still balance, from the workers' reported deltas.
                for shard_id, result in zip(order, results):
                    if shard_id not in settled:
                        self._settle_failed(
                            shard_id, grants[shard_id], result.reserved
                        )
                self._pool.close()
                raise
        return assignments, deferred

    def _settle_failed(
        self, shard_id: int, grant: float, delta: float
    ) -> None:
        """Settle one failed shard's grant against a reported (possibly
        untrusted) reservation delta, clamped into [0, grant]."""
        self.allocator.settle(grant, min(max(delta, 0.0), grant))
        self.shards[shard_id].granted += grant
        self.telemetry.event(
            "admit-error-settle",
            shard=shard_id,
            grant=grant,
            reserved=delta,
        )

    # ------------------------------------------------------------------
    # Parent/worker state synchronisation (process dispatch only)
    # ------------------------------------------------------------------
    def pull_worker_state(self) -> None:
        """Sync the parent-side shard schedulers and caches from the
        worker processes (lazy: a no-op unless a round was dispatched
        since the last pull).  Called before any read of per-shard state
        — checkpoints, stats, snapshots — so observers see the
        authoritative worker-side ledgers and cache counters."""
        if (
            self._pool is None
            or not self._dispatched_since_pull
            or self._pool.broken
        ):
            return
        states = self._pool.pull(range(len(self.shards)))
        for shard in self.shards:
            scheduler_state, cache_state = states[shard.shard_id]
            shard.scheduler.load_state(scheduler_state)
            shard.cache.load_state(cache_state)
        self._dispatched_since_pull = False

    def push_worker_state(self) -> None:
        """Load the parent-side shard scheduler/cache state into the
        worker processes (checkpoint restore, cache import)."""
        if self._pool is None or self._pool.broken:
            return
        for shard in self.shards:
            self._pool.push(
                shard.shard_id,
                shard.scheduler.state_dict(),
                shard.cache.state_dict(),
            )
        self._dispatched_since_pull = False

    def refund(self, amount: float) -> None:
        self.allocator.refund(amount)

    def close(self) -> None:
        """Release the dispatch pool (idempotent; no-op when
        sequential).  Called when the campaign finishes or closes; the
        final pull keeps post-finish checkpoints byte-faithful."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            try:
                self.pull_worker_state()
            finally:
                self._pool.close()

    @property
    def stats(self) -> SchedulerStats:
        self.pull_worker_state()
        merged = SchedulerStats()
        for shard in self.shards:
            stats = shard.scheduler.stats
            merged.batches += stats.batches
            merged.admitted += stats.admitted
            merged.unfunded += stats.unfunded
            merged.deferred += stats.deferred
            merged.substitutions += stats.substitutions
            merged.dropped_seats += stats.dropped_seats
        return merged

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(
        self, tasks: Sequence[EngineTask]
    ) -> dict[int, list[EngineTask]]:
        """Assign each task to a shard; returns shard id -> sub-batch
        (task order preserved within each shard)."""
        routed: dict[int, list[EngineTask]] = {}
        if self.sharding.policy == "hash":
            for task in tasks:
                shard_id = (
                    zlib.crc32(task.task_id.encode("utf-8"))
                    % len(self.shards)
                )
                routed.setdefault(shard_id, []).append(task)
            return routed

        # Load-aware policies spread *this* round too: a task routed
        # now will occupy seats before the next task is placed, so the
        # running per-shard count joins the live seat load.  Seats and
        # quality mass cannot change while routing (nothing is seated
        # yet), so the live aggregates are computed once per round.
        pending = [0] * len(self.shards)
        seats = [shard.view.active_seats for shard in self.shards]
        if self.sharding.policy == "least-loaded":
            capacity = [
                max(shard.view.total_capacity, 1) for shard in self.shards
            ]

            def score(shard: Shard) -> tuple:
                k = shard.shard_id
                return ((seats[k] + pending[k]) / capacity[k], k)

        else:  # quality-balanced
            mass = [shard.view.quality_mass() for shard in self.shards]

            def score(shard: Shard) -> tuple:
                k = shard.shard_id
                # Highest mass per in-flight unit wins; negate for min().
                return (-mass[k] / (1.0 + seats[k] + pending[k]), k)

        for task in tasks:
            best = min(self.shards, key=score)
            pending[best.shard_id] += 1
            routed.setdefault(best.shard_id, []).append(task)
        return routed

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def rebalance(self) -> int:
        """Migrate idle workers from the least- to the most-utilised
        shard when seat-load skew exceeds the configured threshold.
        Returns the number of workers moved."""
        if len(self.shards) < 2 or self.sharding.rebalance_max_moves == 0:
            return 0
        by_ratio = sorted(
            self.shards, key=lambda s: (s.view.load_ratio, s.shard_id)
        )
        donor, needy = by_ratio[0], by_ratio[-1]
        skew = needy.view.load_ratio - donor.view.load_ratio
        if skew <= self.sharding.rebalance_threshold:
            return 0
        idle = sorted(
            (s for s in donor.view.states if s.load == 0),
            key=lambda s: informativeness_key(s.worker),
        )
        moved = 0
        for state in idle:
            if moved >= self.sharding.rebalance_max_moves:
                break
            if len(donor.view) <= MIN_SHARD_MEMBERS:
                break
            worker_id = state.worker.worker_id
            donor.view.remove_member(worker_id)
            needy.view.add_member(worker_id)
            donor.migrations_out += 1
            needy.migrations_in += 1
            moved += 1
        self.migrations += moved
        if moved:
            self.telemetry.inc("scheduler.rebalanced_workers", moved)
            self.telemetry.event(
                "rebalance",
                moved=moved,
                donor=donor.shard_id,
                needy=needy.shard_id,
            )
        return moved

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Allocator ledger, per-shard membership, migrations, and each
        shard scheduler's own state (the caches travel separately)."""
        self.pull_worker_state()
        return {
            "allocator": self.allocator.state_dict(),
            "migrations": self.migrations,
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "member_ids": list(shard.view.member_ids),
                    "migrations_in": shard.migrations_in,
                    "migrations_out": shard.migrations_out,
                    "granted": shard.granted,
                    "scheduler": shard.scheduler.state_dict(),
                }
                for shard in self.shards
            ],
        }

    def load_state(self, state: Mapping) -> None:
        """Restore onto a freshly constructed sharded scheduler (same
        registry, config, and shard count)."""
        self.allocator.load_state(state["allocator"])
        self.migrations = int(state["migrations"])
        if len(state["shards"]) != len(self.shards):
            raise ValueError(
                f"checkpoint has {len(state['shards'])} shards; "
                f"this scheduler was built with {len(self.shards)}"
            )
        for shard, shard_state in zip(self.shards, state["shards"]):
            shard.view._members = set(shard_state["member_ids"])
            shard.view._states_cache = None
            shard.migrations_in = int(shard_state["migrations_in"])
            shard.migrations_out = int(shard_state["migrations_out"])
            shard.granted = float(shard_state.get("granted", 0.0))
            shard.scheduler.load_state(shard_state["scheduler"])
        self.push_worker_state()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def shard_snapshots(self) -> tuple[ShardSnapshot, ...]:
        self.pull_worker_state()
        return tuple(shard.snapshot() for shard in self.shards)

    def merged_cache_stats(self) -> CacheStats:
        self.pull_worker_state()
        merged = CacheStats(0, 0, 0, 0)
        for shard in self.shards:
            merged = merged.merge(shard.cache.stats)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedScheduler({len(self.shards)} shards, "
            f"policy={self.sharding.policy!r}, "
            f"migrations={self.migrations})"
        )


class ShardedCampaignEngine(CampaignEngine):
    """A :class:`CampaignEngine` whose scheduling layer is sharded.

    .. deprecated::
        Direct construction is deprecated in favour of the
        :class:`~repro.engine.campaign.Campaign` facade with
        ``CampaignConfig(num_shards=K)`` — shard count is a config
        field there, not a class choice.  This class remains the
        sharded engine core behind the facade.

    Identical submission/run surface; the event loop, vote simulation,
    early stopping, and re-estimation are all inherited untouched.  Only
    the scheduler hook differs: batches are routed across K shard
    schedulers under a :class:`BudgetAllocator` instead of admitted by
    one scheduler.  With ``ShardingConfig(1)`` the engine is
    byte-identical to the plain one on the same seed.
    """

    def __init__(
        self,
        pool: WorkerPool,
        config: EngineConfig,
        sharding: ShardingConfig | int,
        initial_quality: float | dict[str, float] | None = None,
    ) -> None:
        if type(self) is ShardedCampaignEngine:
            warnings.warn(
                "ShardedCampaignEngine is deprecated; use "
                "repro.engine.Campaign.open(pool, "
                "CampaignConfig(num_shards=K, ...))",
                DeprecationWarning,
                stacklevel=2,
            )
        if isinstance(sharding, int):
            sharding = ShardingConfig(sharding)
        super().__init__(pool, config, initial_quality=initial_quality)
        if sharding.num_shards > len(self.registry):
            raise ValueError(
                f"num_shards ({sharding.num_shards}) cannot exceed the "
                f"pool size ({len(self.registry)})"
            )
        self.sharding = sharding

    def _make_scheduler(self, expected_tasks: int) -> ShardedScheduler:
        return ShardedScheduler(
            self.registry,
            self.config,
            self.sharding,
            expected_tasks,
            telemetry=self.telemetry,
        )

    def _telemetry_gauges(self):
        # The campaign-level cache is unused when sharded; the per-shard
        # caches report through the ShardedScheduler collector instead.
        yield "registry.active_seats", {}, float(self.registry.active_seats)
        yield "registry.total_capacity", {}, float(
            self.registry.total_capacity
        )
        yield "registry.peak_load", {}, float(self.registry.peak_load)
        yield "engine.tasks_active", {}, float(len(self._active))
        yield "engine.tasks_deferred", {}, float(len(self._deferred))

    def _collect_stats(self) -> None:
        super()._collect_stats()
        scheduler = self.scheduler
        assert isinstance(scheduler, ShardedScheduler)
        # The base class reported the (unused) campaign cache; the JQ
        # work lives in the per-shard caches.
        self.metrics.cache_stats = scheduler.merged_cache_stats()
        self.metrics.shard_snapshots = scheduler.shard_snapshots()
        self.metrics.allocator_snapshot = scheduler.allocator.snapshot()
