"""A memoized Jury Quality oracle shared across all selections.

Heavy traffic re-evaluates near-identical juries constantly: every
batch the scheduler admits rebuilds a frontier over (mostly) the same
available workers, and the annealer/exhaustive enumeration revisits
the same subsets thousands of times.  JQ depends only on the *multiset*
of member qualities (plus ``alpha`` and the bucket resolution), not on
worker identity or order, so one campaign-wide cache keyed on the
canonically sorted quality vector collapses all of that repeated work.

Two key modes:

* ``quantization=None`` — keys are the exact sorted qualities.  A hit
  returns the **bitwise-identical** value the uncached objective would
  compute (the cache evaluates misses through a stock
  :class:`~repro.selection.base.JQObjective` on the same canonical
  ordering).
* ``quantization=k`` — qualities are snapped to a ``1/k`` grid *before*
  keying and evaluating.  Juries whose qualities differ by less than
  half a grid step share an entry, trading a bounded JQ perturbation
  (the bucket estimator itself discretizes log-odds far more coarsely
  at the default 50 buckets) for a much higher hit rate once
  re-estimation makes qualities drift continuously.

``bench_engine_throughput`` measures the hit rate and speedup under
simulated load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from ..quality import DEFAULT_NUM_BUCKETS
from ..selection.base import JQObjective


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Pool counters from another cache (e.g. per-shard caches)."""
        return CacheStats(
            self.hits + other.hits,
            self.misses + other.misses,
            self.entries + other.entries,
            self.evictions + other.evictions,
        )

    def render(self) -> str:
        text = (
            f"JQ cache: {self.lookups} lookups, {self.hits} hits "
            f"({self.hit_rate:.1%}), {self.entries} entries"
        )
        if self.evictions:
            text += f", {self.evictions} evicted"
        return text


class JQCache:
    """Campaign-wide memoization of ``qualities -> JQ(BV, alpha)``.

    Parameters
    ----------
    alpha:
        The task prior baked into every cached evaluation.  Campaigns
        mixing priors need one cache per distinct alpha (the engine
        keys its cache on its configured alpha).
    num_buckets:
        Bucket resolution forwarded to the underlying objective.
    quantization:
        ``None`` for exact keys, or the number of quality grid steps
        per unit (e.g. 200 snaps qualities to the nearest 0.005).
    exact_cutoff:
        Forwarded to :class:`JQObjective`: juries at or below this size
        are evaluated exactly, larger ones with the bucket estimator.
    max_entries:
        LRU bound on stored entries (``None`` = unbounded).  When the
        store is full the least-recently-*used* key is evicted; hits
        refresh recency.  Eviction only forgets memoized values — a
        re-miss recomputes the identical JQ — so bounding the cache
        never changes any returned value.
    """

    def __init__(
        self,
        alpha: float = UNINFORMATIVE_PRIOR,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        quantization: int | None = None,
        exact_cutoff: int = 12,
        max_entries: int | None = None,
    ) -> None:
        if quantization is not None and quantization < 1:
            raise ValueError("quantization must be >= 1 grid steps (or None)")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.alpha = float(alpha)
        self.num_buckets = num_buckets
        self.quantization = quantization
        self.max_entries = max_entries
        self._objective = JQObjective(
            alpha=alpha, num_buckets=num_buckets, exact_cutoff=exact_cutoff
        )
        self._store: dict[tuple[float, ...], float] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def canonicalize(self, qualities: Sequence[float] | np.ndarray) -> tuple[float, ...]:
        """The cache key: sorted (and optionally grid-snapped) qualities."""
        arr = np.asarray(qualities, dtype=float)
        if self.quantization is not None:
            arr = np.round(arr * self.quantization) / self.quantization
            arr = np.clip(arr, 0.0, 1.0)
        return tuple(np.sort(arr).tolist())

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def jq(self, qualities: Sequence[float] | np.ndarray) -> float:
        """JQ of a quality multiset under BV at the cache's alpha."""
        key = self.canonicalize(qualities)
        cached = self._store.get(key)
        if cached is not None:
            self._hits += 1
            if self.max_entries is not None:
                # Refresh recency: dict order is the LRU order.
                del self._store[key]
                self._store[key] = cached
            return cached
        self._misses += 1
        if len(key) == 0:
            value = max(self.alpha, 1.0 - self.alpha)
        else:
            value = self._objective(Jury(_quality_jury_workers(key)))
        self._store[key] = value
        if self.max_entries is not None and len(self._store) > self.max_entries:
            del self._store[next(iter(self._store))]
            self._evictions += 1
        return value

    def jq_jury(self, jury: Jury) -> float:
        return self.jq(jury.qualities)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            self._hits, self._misses, len(self._store), self._evictions
        )

    @property
    def underlying_evaluations(self) -> int:
        """JQ computations actually performed (the misses' work)."""
        return self._objective.evaluations

    def clear(self) -> None:
        self._store.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._objective.reset_counter()

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JQCache(alpha={self.alpha}, {self.stats.render()})"


def _quality_jury_workers(qualities: tuple[float, ...]):
    """Anonymous single-use workers carrying a quality vector.

    The objective only reads ``jury.qualities``; ids exist solely to
    satisfy the distinctness invariant.
    """
    from ..core.worker import Worker

    return (Worker(f"q{i}", q) for i, q in enumerate(qualities))


class CachedJQObjective(JQObjective):
    """A drop-in :class:`JQObjective` that answers through a shared
    :class:`JQCache`.

    Anything that accepts a ``JQObjective`` — selectors, frontiers, the
    portfolio planner — can be pointed at the campaign cache by passing
    one of these instead.  ``evaluations`` still counts *calls* (so
    selector work accounting is unchanged); the cache's own stats
    report how many calls were served without recomputation.
    """

    def __init__(self, cache: JQCache) -> None:
        super().__init__(
            alpha=cache.alpha,
            num_buckets=cache.num_buckets,
            exact_cutoff=cache._objective.exact_cutoff,
        )
        self.cache = cache

    def __call__(self, jury: Jury) -> float:
        self.evaluations += 1
        return self.cache.jq(jury.qualities)
