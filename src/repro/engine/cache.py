"""A memoized Jury Quality oracle shared across all selections.

Heavy traffic re-evaluates near-identical juries constantly: every
batch the scheduler admits rebuilds a frontier over (mostly) the same
available workers, and the annealer/exhaustive enumeration revisits
the same subsets thousands of times.  JQ depends only on the *multiset*
of member qualities (plus ``alpha`` and the bucket resolution), not on
worker identity or order, so one campaign-wide cache keyed on the
canonically sorted quality vector collapses all of that repeated work.

Two key modes:

* ``quantization=None`` — keys are the exact sorted qualities.  A hit
  returns the **bitwise-identical** value the uncached objective would
  compute (the cache evaluates misses through a stock
  :class:`~repro.selection.base.JQObjective` on the same canonical
  ordering).
* ``quantization=k`` — qualities are snapped to a ``1/k`` grid *before*
  keying and evaluating.  Juries whose qualities differ by less than
  half a grid step share an entry, trading a bounded JQ perturbation
  (the bucket estimator itself discretizes log-odds far more coarsely
  at the default 50 buckets) for a much higher hit rate once
  re-estimation makes qualities drift continuously.

``bench_engine_throughput`` measures the hit rate and speedup under
simulated load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from ..quality import (
    ALL_SUBSETS_MAX,
    DEFAULT_NUM_BUCKETS,
    all_subsets_jq_bv,
    estimate_jq_batch,
    exact_jq_bv_batch,
)
from ..selection.base import JQObjective

#: Key-grid steps per log-odds bucket used by :func:`adaptive_quantization`.
ADAPTIVE_STEPS_PER_BUCKET = 4


def adaptive_quantization(num_buckets: int) -> int:
    """Key-grid resolution derived from the bucket estimator's resolution.

    The bucket estimator discretizes the log-odds axis into
    ``num_buckets`` buckets, so JQ itself cannot distinguish juries
    whose qualities differ by much less than one bucket.  Keying the
    cache at :data:`ADAPTIVE_STEPS_PER_BUCKET` grid steps per bucket
    keeps the key-snapping perturbation well inside the estimator's own
    discretization while still merging re-estimation drift into shared
    entries.  At the paper's default resolution (50 buckets) this
    reproduces the historical fixed grid of 200.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    return ADAPTIVE_STEPS_PER_BUCKET * num_buckets


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Pool counters from another cache (e.g. per-shard caches)."""
        return CacheStats(
            self.hits + other.hits,
            self.misses + other.misses,
            self.entries + other.entries,
            self.evictions + other.evictions,
        )

    def render(self) -> str:
        text = (
            f"JQ cache: {self.lookups} lookups, {self.hits} hits "
            f"({self.hit_rate:.1%}), {self.entries} entries"
        )
        if self.evictions:
            text += f", {self.evictions} evicted"
        return text

    def telemetry_gauges(self, **labels):
        """``(name, labels, value)`` gauge triples for a
        :meth:`~repro.engine.telemetry.Telemetry.add_collector`
        callable — the uniform shape the engine and sharded-scheduler
        collectors report cache health through."""
        yield "cache.hits", labels, float(self.hits)
        yield "cache.misses", labels, float(self.misses)
        yield "cache.entries", labels, float(self.entries)
        yield "cache.evictions", labels, float(self.evictions)
        yield "cache.hit_rate", labels, self.hit_rate


class JQCache:
    """Campaign-wide memoization of ``qualities -> JQ(BV, alpha)``.

    Parameters
    ----------
    alpha:
        The task prior baked into every cached evaluation.  Campaigns
        mixing priors need one cache per distinct alpha (the engine
        keys its cache on its configured alpha).
    num_buckets:
        Bucket resolution forwarded to the underlying objective.
    quantization:
        ``None`` for exact keys, the number of quality grid steps per
        unit (e.g. 200 snaps qualities to the nearest 0.005), or
        ``"auto"`` to derive the grid from ``num_buckets`` via
        :func:`adaptive_quantization`.
    exact_cutoff:
        Forwarded to :class:`JQObjective`: juries at or below this size
        are evaluated exactly, larger ones with the bucket estimator.
    max_entries:
        LRU bound on stored entries (``None`` = unbounded).  When the
        store is full the least-recently-*used* key is evicted; hits
        refresh recency.  Eviction only forgets memoized values — a
        re-miss recomputes the identical JQ — so bounding the cache
        never changes any returned value.
    """

    def __init__(
        self,
        alpha: float = UNINFORMATIVE_PRIOR,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        quantization: int | str | None = None,
        exact_cutoff: int = 12,
        max_entries: int | None = None,
    ) -> None:
        if quantization == "auto":
            quantization = adaptive_quantization(num_buckets)
        if quantization is not None and (
            not isinstance(quantization, int) or quantization < 1
        ):
            raise ValueError(
                "quantization must be >= 1 grid steps, 'auto', or None"
            )
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.alpha = float(alpha)
        self.num_buckets = num_buckets
        self.quantization = quantization
        self.max_entries = max_entries
        self._objective = JQObjective(
            alpha=alpha, num_buckets=num_buckets, exact_cutoff=exact_cutoff
        )
        self._store: dict[tuple[float, ...], float] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def _snap(self, arr: np.ndarray) -> np.ndarray:
        """Element-wise key-grid snap — the one definition both the
        scalar keying and the batch replay must share, or kernel-path
        keys silently stop matching scalar keys."""
        if self.quantization is None:
            return arr
        return np.clip(
            np.round(arr * self.quantization) / self.quantization, 0.0, 1.0
        )

    def canonicalize(self, qualities: Sequence[float] | np.ndarray) -> tuple[float, ...]:
        """The cache key: sorted (and optionally grid-snapped) qualities."""
        arr = self._snap(np.asarray(qualities, dtype=float))
        return tuple(np.sort(arr).tolist())

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _lookup(self, key: tuple[float, ...], value_fn) -> float:
        """One store access: hit (with LRU recency refresh) or miss
        (compute via ``value_fn``, insert, evict at the bound).  Every
        lookup path funnels through here so the hit/miss/eviction
        sequence — which the metrics fingerprint covers — is identical
        whether values come from the scalar objective or a batched
        kernel."""
        cached = self._store.get(key)
        if cached is not None:
            self._hits += 1
            if self.max_entries is not None:
                # Refresh recency: dict order is the LRU order.
                del self._store[key]
                self._store[key] = cached
            return cached
        self._misses += 1
        value = value_fn()
        self._store[key] = value
        if self.max_entries is not None and len(self._store) > self.max_entries:
            del self._store[next(iter(self._store))]
            self._evictions += 1
        return value

    def jq(self, qualities: Sequence[float] | np.ndarray) -> float:
        """JQ of a quality multiset under BV at the cache's alpha."""
        key = self.canonicalize(qualities)
        return self._lookup(key, lambda: self._compute(key))

    def _compute(self, key: tuple[float, ...]) -> float:
        if len(key) == 0:
            return max(self.alpha, 1.0 - self.alpha)
        return self._objective(Jury(_quality_jury_workers(key)))

    def jq_jury(self, jury: Jury) -> float:
        return self.jq(jury.qualities)

    # ------------------------------------------------------------------
    # Batched lookup (kernel-computed misses, scalar-identical replay)
    # ------------------------------------------------------------------
    def jq_batch(self, rows: Sequence[Sequence[float]]) -> np.ndarray:
        """JQ of many quality multisets in one kernel sweep.

        Values for prospective misses are computed upfront through the
        batched kernels, then the store is *replayed* row by row in
        order — the same hits, misses, LRU refreshes and evictions as
        the equivalent sequence of :meth:`jq` calls, with bit-identical
        values (the kernels reproduce the scalar objective exactly).
        """
        keys = [self.canonicalize(row) for row in rows]
        computed = self._compute_missing(keys)
        out = np.empty(len(keys))
        for i, key in enumerate(keys):
            out[i] = self._lookup(key, lambda k=key: self._from_kernel(k, computed))
        return out

    def jq_all_subsets(self, qualities: Sequence[float] | np.ndarray) -> np.ndarray:
        """JQ of every subset of a candidate pool (indexed by bitmask).

        The subset values are computed in one shared-prefix lattice
        sweep (:func:`repro.quality.all_subsets_jq_bv` on the snapped,
        sorted pool), then replayed through the store in ascending-mask
        order — exactly the enumeration order
        :func:`repro.frontier.exact_frontier` uses, so the cache
        counters evolve identically to the scalar frontier build.
        Entry 0 (the empty jury) scores the prior's mode without
        touching the store, which no scalar caller queries either.
        """
        arr = self._snap(np.asarray(qualities, dtype=float))
        n = arr.size
        order = np.argsort(arr, kind="stable")
        position = np.empty(n, dtype=np.int64)
        position[order] = np.arange(n)
        sorted_q = arr[order]
        # Python floats, as canonicalize() produces — numpy scalars in
        # keys would poison JSON-serialized checkpoints.
        sorted_list = sorted_q.tolist()
        kernel = all_subsets_jq_bv(
            sorted_q,
            alpha=self.alpha,
            exact_cutoff=self._objective.exact_cutoff,
            num_buckets=self.num_buckets,
        )
        out = np.empty(1 << n)
        out[0] = max(self.alpha, 1.0 - self.alpha)
        for mask in range(1, 1 << n):
            # Translate the pool-order mask into sorted-pool space: the
            # cache key is the subset's qualities ascending, which is
            # exactly the sorted-space members in index order.
            smask = 0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                smask |= 1 << int(position[low.bit_length() - 1])
                remaining ^= low
            key = tuple(
                sorted_list[i] for i in range(n) if smask >> i & 1
            )
            value = float(kernel[smask])

            def compute(value=value):
                self._objective.evaluations += 1
                return value

            out[mask] = self._lookup(key, compute)
        return out

    def _compute_missing(
        self, keys: Sequence[tuple[float, ...]]
    ) -> dict[tuple[float, ...], float]:
        """Kernel-evaluate every distinct key not currently stored.

        A superset of the keys the replay will actually miss (duplicates
        hit after their first insertion) — computing them in one batch is
        the point, and values are deterministic so over-computing never
        changes an outcome.
        """
        missing = [
            key
            for key in dict.fromkeys(keys)
            if key not in self._store and len(key) > 0
        ]
        computed: dict[tuple[float, ...], float] = {}
        cutoff = self._objective.exact_cutoff
        exact = [k for k in missing if len(k) <= cutoff]
        bucket = [k for k in missing if len(k) > cutoff]
        if exact:
            values = exact_jq_bv_batch(
                [np.array(k) for k in exact], self.alpha
            )
            computed.update(zip(exact, (float(v) for v in values)))
        if bucket:
            values = estimate_jq_batch(
                [np.array(k) for k in bucket],
                alpha=self.alpha,
                num_buckets=self.num_buckets,
            )
            computed.update(zip(bucket, (float(v) for v in values)))
        return computed

    def _from_kernel(
        self,
        key: tuple[float, ...],
        computed: dict[tuple[float, ...], float],
    ) -> float:
        if len(key) == 0:
            return max(self.alpha, 1.0 - self.alpha)
        value = computed.get(key)
        if value is None:
            # The key was stored when the batch started, then evicted by
            # the replay itself before this row re-missed it: recompute
            # the (deterministic, hence identical) value scalar-side.
            return self._compute(key)
        self._objective.evaluations += 1
        return value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            self._hits, self._misses, len(self._store), self._evictions
        )

    @property
    def underlying_evaluations(self) -> int:
        """JQ computations actually performed (the misses' work)."""
        return self._objective.evaluations

    def clear(self) -> None:
        self._store.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._objective.reset_counter()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full cache state for checkpointing.

        Entries are listed in LRU order (the store's dict order), so a
        restored cache evicts in exactly the sequence the original
        would have — required for byte-identical resumed campaigns.
        """
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "entries": [[list(k), v] for k, v in self._store.items()],
        }

    def load_state(self, state: Mapping) -> None:
        """Restore counters and entries captured by :meth:`state_dict`."""
        self._store = {
            tuple(float(q) for q in key): float(value)
            for key, value in state["entries"]
        }
        self._hits = int(state["hits"])
        self._misses = int(state["misses"])
        self._evictions = int(state["evictions"])

    def warm(self, entries) -> int:
        """Pre-populate from ``(qualities, value)`` pairs (e.g. a cache
        shipped from an earlier campaign).  Keys are re-canonicalized
        under *this* cache's grid; existing entries win, so warming
        never changes a value a lookup would already return.  Returns
        the number of entries added."""
        added = 0
        for qualities, value in entries:
            key = self.canonicalize(qualities)
            if key not in self._store:
                self._store[key] = float(value)
                added += 1
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                del self._store[next(iter(self._store))]
                self._evictions += 1
        return added

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JQCache(alpha={self.alpha}, {self.stats.render()})"


def save_cache_file(path, caches: Sequence[JQCache]) -> int:
    """Export the union of several caches' entries as a JSON warm file.

    All caches must share alpha/num_buckets/quantization (one campaign's
    campaign-level or per-shard caches do by construction).  Returns the
    number of exported entries.
    """
    if not caches:
        raise ValueError("need at least one cache to export")
    first = caches[0]
    for cache in caches[1:]:
        if (
            cache.alpha != first.alpha
            or cache.num_buckets != first.num_buckets
            or cache.quantization != first.quantization
        ):
            raise ValueError("caches to export must share their parameters")
    entries: dict[tuple[float, ...], float] = {}
    for cache in caches:
        for key, value in cache._store.items():
            entries.setdefault(key, value)
    payload = {
        "alpha": first.alpha,
        "num_buckets": first.num_buckets,
        "quantization": first.quantization,
        "entries": [[list(k), v] for k, v in entries.items()],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return len(entries)


def load_cache_file(path, caches: Sequence[JQCache]) -> int:
    """Warm caches from a JSON file written by :func:`save_cache_file`.

    The file's alpha and bucket resolution must match the target caches
    — a JQ value computed under a different prior is simply a different
    number.  Returns entries added to the *first* cache (all caches
    receive the same entries).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    added = 0
    for i, cache in enumerate(caches):
        if (
            payload["alpha"] != cache.alpha
            or payload["num_buckets"] != cache.num_buckets
            or payload["quantization"] != cache.quantization
        ):
            raise ValueError(
                f"cache file {path!s} was built for alpha="
                f"{payload['alpha']}, num_buckets={payload['num_buckets']}, "
                f"quantization={payload['quantization']}; target cache has "
                f"alpha={cache.alpha}, num_buckets={cache.num_buckets}, "
                f"quantization={cache.quantization}"
            )
        count = cache.warm(payload["entries"])
        if i == 0:
            added = count
    return added


def _quality_jury_workers(qualities: tuple[float, ...]):
    """Anonymous single-use workers carrying a quality vector.

    The objective only reads ``jury.qualities``; ids exist solely to
    satisfy the distinctness invariant.
    """
    from ..core.worker import Worker

    return (Worker(f"q{i}", q) for i, q in enumerate(qualities))


class CachedJQObjective(JQObjective):
    """A drop-in :class:`JQObjective` that answers through a shared
    :class:`JQCache`.

    Anything that accepts a ``JQObjective`` — selectors, frontiers, the
    portfolio planner — can be pointed at the campaign cache by passing
    one of these instead.  ``evaluations`` still counts *calls* (so
    selector work accounting is unchanged); the cache's own stats
    report how many calls were served without recomputation.
    """

    def __init__(self, cache: JQCache) -> None:
        super().__init__(
            alpha=cache.alpha,
            num_buckets=cache.num_buckets,
            exact_cutoff=cache._objective.exact_cutoff,
        )
        self.cache = cache

    def __call__(self, jury: Jury) -> float:
        self.evaluations += 1
        return self.cache.jq(jury.qualities)

    def batch_qualities(self, rows) -> np.ndarray:
        """Batched evaluation *through the cache*: kernel-computed
        misses, with the store replayed row by row so hits/misses/LRU
        evolve exactly as the equivalent scalar call sequence."""
        self.evaluations += len(rows)
        return self.cache.jq_batch(rows)

    def all_subsets(self, qualities) -> np.ndarray | None:
        arr = np.asarray(qualities, dtype=float)
        if arr.size > ALL_SUBSETS_MAX:
            return None
        return self.cache.jq_all_subsets(arr)
