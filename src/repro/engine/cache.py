"""A memoized Jury Quality oracle shared across all selections.

Heavy traffic re-evaluates near-identical juries constantly: every
batch the scheduler admits rebuilds a frontier over (mostly) the same
available workers, and the annealer/exhaustive enumeration revisits
the same subsets thousands of times.  JQ depends only on the *multiset*
of member qualities (plus ``alpha`` and the bucket resolution), not on
worker identity or order, so one campaign-wide cache keyed on the
canonically sorted quality vector collapses all of that repeated work.

Two key modes:

* ``quantization=None`` — keys are the exact sorted qualities.  A hit
  returns the **bitwise-identical** value the uncached objective would
  compute (the cache evaluates misses through a stock
  :class:`~repro.selection.base.JQObjective` on the same canonical
  ordering).
* ``quantization=k`` — qualities are snapped to a ``1/k`` grid *before*
  keying and evaluating.  Juries whose qualities differ by less than
  half a grid step share an entry, trading a bounded JQ perturbation
  (the bucket estimator itself discretizes log-odds far more coarsely
  at the default 50 buckets) for a much higher hit rate once
  re-estimation makes qualities drift continuously.

``bench_engine_throughput`` measures the hit rate and speedup under
simulated load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.jury import Jury
from ..core.task import UNINFORMATIVE_PRIOR
from ..quality import DEFAULT_NUM_BUCKETS
from ..selection.base import JQObjective

#: Key-grid steps per log-odds bucket used by :func:`adaptive_quantization`.
ADAPTIVE_STEPS_PER_BUCKET = 4


def adaptive_quantization(num_buckets: int) -> int:
    """Key-grid resolution derived from the bucket estimator's resolution.

    The bucket estimator discretizes the log-odds axis into
    ``num_buckets`` buckets, so JQ itself cannot distinguish juries
    whose qualities differ by much less than one bucket.  Keying the
    cache at :data:`ADAPTIVE_STEPS_PER_BUCKET` grid steps per bucket
    keeps the key-snapping perturbation well inside the estimator's own
    discretization while still merging re-estimation drift into shared
    entries.  At the paper's default resolution (50 buckets) this
    reproduces the historical fixed grid of 200.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    return ADAPTIVE_STEPS_PER_BUCKET * num_buckets


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Pool counters from another cache (e.g. per-shard caches)."""
        return CacheStats(
            self.hits + other.hits,
            self.misses + other.misses,
            self.entries + other.entries,
            self.evictions + other.evictions,
        )

    def render(self) -> str:
        text = (
            f"JQ cache: {self.lookups} lookups, {self.hits} hits "
            f"({self.hit_rate:.1%}), {self.entries} entries"
        )
        if self.evictions:
            text += f", {self.evictions} evicted"
        return text


class JQCache:
    """Campaign-wide memoization of ``qualities -> JQ(BV, alpha)``.

    Parameters
    ----------
    alpha:
        The task prior baked into every cached evaluation.  Campaigns
        mixing priors need one cache per distinct alpha (the engine
        keys its cache on its configured alpha).
    num_buckets:
        Bucket resolution forwarded to the underlying objective.
    quantization:
        ``None`` for exact keys, the number of quality grid steps per
        unit (e.g. 200 snaps qualities to the nearest 0.005), or
        ``"auto"`` to derive the grid from ``num_buckets`` via
        :func:`adaptive_quantization`.
    exact_cutoff:
        Forwarded to :class:`JQObjective`: juries at or below this size
        are evaluated exactly, larger ones with the bucket estimator.
    max_entries:
        LRU bound on stored entries (``None`` = unbounded).  When the
        store is full the least-recently-*used* key is evicted; hits
        refresh recency.  Eviction only forgets memoized values — a
        re-miss recomputes the identical JQ — so bounding the cache
        never changes any returned value.
    """

    def __init__(
        self,
        alpha: float = UNINFORMATIVE_PRIOR,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        quantization: int | str | None = None,
        exact_cutoff: int = 12,
        max_entries: int | None = None,
    ) -> None:
        if quantization == "auto":
            quantization = adaptive_quantization(num_buckets)
        if quantization is not None and (
            not isinstance(quantization, int) or quantization < 1
        ):
            raise ValueError(
                "quantization must be >= 1 grid steps, 'auto', or None"
            )
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.alpha = float(alpha)
        self.num_buckets = num_buckets
        self.quantization = quantization
        self.max_entries = max_entries
        self._objective = JQObjective(
            alpha=alpha, num_buckets=num_buckets, exact_cutoff=exact_cutoff
        )
        self._store: dict[tuple[float, ...], float] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def canonicalize(self, qualities: Sequence[float] | np.ndarray) -> tuple[float, ...]:
        """The cache key: sorted (and optionally grid-snapped) qualities."""
        arr = np.asarray(qualities, dtype=float)
        if self.quantization is not None:
            arr = np.round(arr * self.quantization) / self.quantization
            arr = np.clip(arr, 0.0, 1.0)
        return tuple(np.sort(arr).tolist())

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def jq(self, qualities: Sequence[float] | np.ndarray) -> float:
        """JQ of a quality multiset under BV at the cache's alpha."""
        key = self.canonicalize(qualities)
        cached = self._store.get(key)
        if cached is not None:
            self._hits += 1
            if self.max_entries is not None:
                # Refresh recency: dict order is the LRU order.
                del self._store[key]
                self._store[key] = cached
            return cached
        self._misses += 1
        if len(key) == 0:
            value = max(self.alpha, 1.0 - self.alpha)
        else:
            value = self._objective(Jury(_quality_jury_workers(key)))
        self._store[key] = value
        if self.max_entries is not None and len(self._store) > self.max_entries:
            del self._store[next(iter(self._store))]
            self._evictions += 1
        return value

    def jq_jury(self, jury: Jury) -> float:
        return self.jq(jury.qualities)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            self._hits, self._misses, len(self._store), self._evictions
        )

    @property
    def underlying_evaluations(self) -> int:
        """JQ computations actually performed (the misses' work)."""
        return self._objective.evaluations

    def clear(self) -> None:
        self._store.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._objective.reset_counter()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full cache state for checkpointing.

        Entries are listed in LRU order (the store's dict order), so a
        restored cache evicts in exactly the sequence the original
        would have — required for byte-identical resumed campaigns.
        """
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "entries": [[list(k), v] for k, v in self._store.items()],
        }

    def load_state(self, state: Mapping) -> None:
        """Restore counters and entries captured by :meth:`state_dict`."""
        self._store = {
            tuple(float(q) for q in key): float(value)
            for key, value in state["entries"]
        }
        self._hits = int(state["hits"])
        self._misses = int(state["misses"])
        self._evictions = int(state["evictions"])

    def warm(self, entries) -> int:
        """Pre-populate from ``(qualities, value)`` pairs (e.g. a cache
        shipped from an earlier campaign).  Keys are re-canonicalized
        under *this* cache's grid; existing entries win, so warming
        never changes a value a lookup would already return.  Returns
        the number of entries added."""
        added = 0
        for qualities, value in entries:
            key = self.canonicalize(qualities)
            if key not in self._store:
                self._store[key] = float(value)
                added += 1
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                del self._store[next(iter(self._store))]
                self._evictions += 1
        return added

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JQCache(alpha={self.alpha}, {self.stats.render()})"


def save_cache_file(path, caches: Sequence[JQCache]) -> int:
    """Export the union of several caches' entries as a JSON warm file.

    All caches must share alpha/num_buckets/quantization (one campaign's
    campaign-level or per-shard caches do by construction).  Returns the
    number of exported entries.
    """
    if not caches:
        raise ValueError("need at least one cache to export")
    first = caches[0]
    for cache in caches[1:]:
        if (
            cache.alpha != first.alpha
            or cache.num_buckets != first.num_buckets
            or cache.quantization != first.quantization
        ):
            raise ValueError("caches to export must share their parameters")
    entries: dict[tuple[float, ...], float] = {}
    for cache in caches:
        for key, value in cache._store.items():
            entries.setdefault(key, value)
    payload = {
        "alpha": first.alpha,
        "num_buckets": first.num_buckets,
        "quantization": first.quantization,
        "entries": [[list(k), v] for k, v in entries.items()],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return len(entries)


def load_cache_file(path, caches: Sequence[JQCache]) -> int:
    """Warm caches from a JSON file written by :func:`save_cache_file`.

    The file's alpha and bucket resolution must match the target caches
    — a JQ value computed under a different prior is simply a different
    number.  Returns entries added to the *first* cache (all caches
    receive the same entries).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    added = 0
    for i, cache in enumerate(caches):
        if (
            payload["alpha"] != cache.alpha
            or payload["num_buckets"] != cache.num_buckets
            or payload["quantization"] != cache.quantization
        ):
            raise ValueError(
                f"cache file {path!s} was built for alpha="
                f"{payload['alpha']}, num_buckets={payload['num_buckets']}, "
                f"quantization={payload['quantization']}; target cache has "
                f"alpha={cache.alpha}, num_buckets={cache.num_buckets}, "
                f"quantization={cache.quantization}"
            )
        count = cache.warm(payload["entries"])
        if i == 0:
            added = count
    return added


def _quality_jury_workers(qualities: tuple[float, ...]):
    """Anonymous single-use workers carrying a quality vector.

    The objective only reads ``jury.qualities``; ids exist solely to
    satisfy the distinctness invariant.
    """
    from ..core.worker import Worker

    return (Worker(f"q{i}", q) for i, q in enumerate(qualities))


class CachedJQObjective(JQObjective):
    """A drop-in :class:`JQObjective` that answers through a shared
    :class:`JQCache`.

    Anything that accepts a ``JQObjective`` — selectors, frontiers, the
    portfolio planner — can be pointed at the campaign cache by passing
    one of these instead.  ``evaluations`` still counts *calls* (so
    selector work accounting is unchanged); the cache's own stats
    report how many calls were served without recomputation.
    """

    def __init__(self, cache: JQCache) -> None:
        super().__init__(
            alpha=cache.alpha,
            num_buckets=cache.num_buckets,
            exact_cutoff=cache._objective.exact_cutoff,
        )
        self.cache = cache

    def __call__(self, jury: Jury) -> float:
        self.evaluations += 1
        return self.cache.jq(jury.qualities)
