"""The campaign engine: a deterministic event loop over shared state.

This is the serving layer the one-shot library lacked.  One
:class:`CampaignEngine` owns

* a :class:`~repro.engine.state.WorkerRegistry` (capacity, load, spend,
  drifting quality estimates),
* a campaign-wide :class:`~repro.engine.cache.JQCache`,
* a :class:`~repro.engine.scheduler.CampaignScheduler` (budget pacing +
  capacity-aware jury seating), and
* an :class:`~repro.engine.metrics.EngineMetrics` accumulator,

and advances them by draining an :class:`~repro.engine.events.EventQueue`:

``task-arrival``
    buffered into batches; a full batch (or the last arrival) triggers
    scheduling, which seats juries and enqueues their members' votes.
``vote-arrival``
    feeds the task's :class:`~repro.online.OnlineDecisionSession`;
    when the posterior clears the confidence target with votes still
    outstanding the task **stops early** — outstanding votes are
    cancelled, their workers released, and the unspent reservation
    refunded to the campaign budget.
``task-complete``
    finalizes the verdict, releases seats, credits worker agreement
    stats, optionally triggers quality re-estimation, and retries any
    deferred tasks now that capacity freed up.

Runs are reproducible: event order is ``(logical time, enqueue
serial)``, all randomness flows through one seeded generator consumed
in pop order, and wall-clock time is only ever *measured* (for the
throughput metric), never branched on.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.task import UNINFORMATIVE_PRIOR, validate_prior
from ..core.worker import WorkerPool
from ..online import OnlineDecisionSession
from .cache import JQCache
from .events import (
    EngineTask,
    Event,
    EventQueue,
    TaskArrival,
    TaskComplete,
    VoteArrival,
)
from .ingest import AssignmentBook, NoOpenOffer
from .metrics import EngineMetrics, TaskRecord
from .scheduler import Assignment, CampaignScheduler
from .state import WorkerRegistry, informativeness_key
from .telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of one campaign.

    Parameters
    ----------
    budget:
        Total campaign budget across all tasks.
    expected_tasks:
        Expected campaign size, for budget pacing.  ``None`` means "the
        tasks submitted before :meth:`CampaignEngine.run`".
    capacity:
        Max concurrent jury seats per worker.
    batch_size:
        Arrivals buffered before the scheduler runs.
    alpha:
        Selection prior ``Pr(t = 0)`` used by the JQ cache and
        scheduler.  Per-task priors (``EngineTask.prior``) govern the
        *aggregation* posterior of each task.
    confidence_target:
        Early-stop threshold for the per-task online session.
    num_buckets:
        JQ bucket resolution for large juries.
    quantization:
        JQ-cache key grid: ``None`` = exact keys, an int = grid steps
        per unit, or ``"auto"`` (the default) to derive the grid from
        ``num_buckets`` via
        :func:`~repro.engine.cache.adaptive_quantization` (4 steps per
        log-odds bucket — 200 at the default 50-bucket resolution).
    cache_max_entries:
        LRU bound on each JQ cache (``None`` = unbounded).  Applies to
        the engine's campaign cache, and per shard in the sharded
        engine.
    frontier_pool_size:
        Per-batch candidate pool size (exact frontier; up to
        ``scheduler.MAX_FRONTIER_POOL`` — pools past ``ALL_SUBSETS_MAX``
        build through the streamed lattice sweep).
    reestimate_every:
        Re-fit worker qualities after every N completed tasks
        (0 disables).
    reestimate_method / reestimate_rate:
        Forwarded to :meth:`WorkerRegistry.reestimate`.
    jq_kernel:
        ``"batch"`` (default) builds scheduler frontiers through the
        batched all-subsets JQ kernel; ``"scalar"`` keeps the per-jury
        path.  Decisions and fingerprints are byte-identical either
        way — the toggle exists for benchmarking and regression pins.
    checkpoint_every:
        Under the :class:`~repro.engine.campaign.Campaign` facade,
        checkpoint the campaign to its backend after every N completed
        tasks (0 disables) — bounds data loss on long runs without
        manual :meth:`~repro.engine.campaign.Campaign.checkpoint`
        calls.  Ignored by the bare engine (no backend to write to).
    vote_latency:
        Logical ticks between consecutive jurors' votes.
    ingestion:
        ``"sync"`` (default) is the classic pre-loaded event loop;
        ``"async"`` serves through a thread-safe
        :class:`~repro.engine.ingest.IntakeQueue`, so live traffic can
        stream in (``submit`` from any thread, bounded backpressure)
        while batches are being seated.  A campaign whose tasks are all
        submitted before ``run`` is fingerprint-byte-identical either
        way (pinned by the invariant harness).
    parallel_shards:
        Dispatch the sharded engine's per-shard admits to a thread pool
        of this many workers (0 = the sequential in-loop dispatch).
        Decisions are byte-identical to sequential dispatch — shards
        only touch their own members and results merge in shard-id
        order — so the toggle is purely a throughput lever.  Ignored by
        the single-scheduler engine.
    dispatch:
        ``"threads"`` (default) runs sharded per-shard admits inline or
        on the ``parallel_shards`` thread pool; ``"processes"`` routes
        them to a persistent
        :class:`~repro.engine.procpool.ShardProcessPool` — one sticky
        worker *process* per shard, breaking the GIL limit on the
        envelope-walking DP.  Decisions and fingerprints stay
        byte-identical (the parent replays worker decisions in shard-id
        order); env var ``REPRO_ENGINE_FORCE_DISPATCH`` overrides the
        setting under the Campaign facade.  Ignored by the
        single-scheduler engine.
    vote_fanout:
        Drain same-tick simulated vote arrivals over *distinct* tasks
        on a thread pool of this many workers (0 = the classic
        one-at-a-time drain).  Uniform draws are pre-consumed in pop
        order and results committed in pop order, so the fanout drain
        is byte-identical to the sequential one (pinned).
    ingest_max_pending:
        Async backpressure bound: producers block once this many
        submitted tasks await intake draining.
    ingest_grace:
        Async coalescing deadline (seconds): how long an idle serving
        loop waits for straggler producers before finishing (or
        returning from a paused run).  ``"auto"`` derives the deadline
        from the engine's observed admit latency (EWMA) — slow admits
        earn producers a longer window — falling back to 50 ms until
        the first batch lands.
    ingest_producer_quota:
        Per-producer share of ``ingest_max_pending`` a single named
        producer may occupy (a fraction in ``(0, 1]``; 0 disables).
        Producers over their share block in ``submit`` until their own
        staged tasks drain — per-producer backpressure, so one runaway
        client cannot starve the rest of the intake queue.
    telemetry:
        ``"off"`` (default) serves with the no-op
        :data:`~repro.engine.telemetry.NULL_TELEMETRY`; ``"on"`` attaches
        a live :class:`~repro.engine.telemetry.Telemetry` hub (counters,
        histograms, event trace, profiling spans).  Telemetry only
        *observes* — decisions, RNG draws, and fingerprints are
        byte-identical either way (pinned by the telemetry suite).
    trace_path:
        Under the Campaign facade, write a Chrome trace-event JSON file
        here after every ``run()`` (requires ``telemetry="on"``; open it
        in Perfetto).  Ignored by the bare engine.
    metrics_interval:
        Width (seconds) of the windowed intake/throughput rate buckets
        in the telemetry snapshot.
    vote_source:
        ``"simulated"`` (default) draws every vote from the engine's
        seeded RNG against each worker's true quality — the closed-loop
        simulation mode.  ``"external"`` publishes seated juries as
        open *offers* on an :class:`AssignmentBook` and applies only
        votes delivered explicitly through
        :meth:`CampaignEngine.deliver_vote` — the mode behind the HTTP
        serving layer, where a real crowd is on the other end.  The
        latent-truth draw for unlabeled tasks is identical in both
        modes, so accuracy scoring works the same way.
    seed:
        Seed for the engine's single random generator (vote simulation
        and latent-truth draws).
    """

    budget: float
    expected_tasks: int | None = None
    capacity: int = 4
    batch_size: int = 25
    alpha: float = UNINFORMATIVE_PRIOR
    confidence_target: float = 0.97
    num_buckets: int = 50
    quantization: int | str | None = "auto"
    cache_max_entries: int | None = None
    frontier_pool_size: int = 10
    reestimate_every: int = 0
    reestimate_method: str = "one-coin"
    reestimate_rate: float = 0.3
    jq_kernel: str = "batch"
    checkpoint_every: int = 0
    vote_latency: float = 1.0
    ingestion: str = "sync"
    parallel_shards: int = 0
    dispatch: str = "threads"
    vote_fanout: int = 0
    ingest_max_pending: int = 10_000
    ingest_grace: float | str = 0.05
    ingest_producer_quota: float = 0.0
    telemetry: str = "off"
    trace_path: str | None = None
    metrics_interval: float = 1.0
    vote_source: str = "simulated"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.reestimate_every < 0:
            raise ValueError("reestimate_every must be >= 0")
        if self.jq_kernel not in ("batch", "scalar"):
            raise ValueError("jq_kernel must be 'batch' or 'scalar'")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.vote_latency <= 0:
            raise ValueError("vote_latency must be positive")
        if self.ingestion not in ("sync", "async"):
            raise ValueError("ingestion must be 'sync' or 'async'")
        if self.parallel_shards < 0:
            raise ValueError("parallel_shards must be >= 0")
        if self.dispatch not in ("threads", "processes"):
            raise ValueError("dispatch must be 'threads' or 'processes'")
        if self.vote_fanout < 0:
            raise ValueError("vote_fanout must be >= 0")
        if self.ingest_max_pending < 1:
            raise ValueError("ingest_max_pending must be >= 1")
        if self.ingest_grace != "auto":
            if isinstance(self.ingest_grace, str) or self.ingest_grace <= 0:
                raise ValueError(
                    "ingest_grace must be positive (seconds) or 'auto'"
                )
        if not 0.0 <= self.ingest_producer_quota <= 1.0:
            raise ValueError(
                "ingest_producer_quota must lie in [0, 1] (0 disables)"
            )
        if self.telemetry not in ("off", "on"):
            raise ValueError("telemetry must be 'off' or 'on'")
        if self.vote_source not in ("simulated", "external"):
            raise ValueError("vote_source must be 'simulated' or 'external'")
        if self.metrics_interval <= 0:
            raise ValueError("metrics_interval must be positive")
        if not 0.5 <= self.confidence_target <= 1.0:
            raise ValueError("confidence_target must lie in [0.5, 1]")
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ValueError("cache_max_entries must be >= 1 (or None)")
        if self.quantization is not None and self.quantization != "auto":
            if not isinstance(self.quantization, int) or self.quantization < 1:
                raise ValueError(
                    "quantization must be >= 1 grid steps, 'auto', or None"
                )
        validate_prior(self.alpha)


@dataclass
class _TaskRuntime:
    """Mutable per-task serving state while a task is in flight."""

    task: EngineTask
    assignment: Assignment
    session: OnlineDecisionSession
    sim_truth: int  # vote-generating latent truth (drawn when unknown)
    scored_truth: int | None  # only set when the caller supplied it
    pending_workers: list[str] = field(default_factory=list)
    done: bool = False


class CampaignEngine:
    """Event-driven jury-selection serving for one campaign.

    .. deprecated::
        Direct construction is deprecated in favour of the
        :class:`~repro.engine.campaign.Campaign` facade
        (``Campaign.open(pool, CampaignConfig(...))``), which adds the
        resumable lifecycle (``run(until=...)``, ``checkpoint()``,
        ``resume()``) and pluggable persistent state backends.  This
        class remains the engine core behind the facade; the classic
        one-shot surface keeps working::

            engine = CampaignEngine(pool, EngineConfig(budget=50, seed=7))
            engine.submit(EngineTask(f"t{i}", ground_truth=...) for i in ...)
            metrics = engine.run()
            print(metrics.render(budget=50))
    """

    def __init__(
        self,
        pool: WorkerPool,
        config: EngineConfig,
        initial_quality: float | dict[str, float] | None = None,
    ) -> None:
        if type(self) is CampaignEngine:
            warnings.warn(
                "CampaignEngine is deprecated; use "
                "repro.engine.Campaign.open(pool, CampaignConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
        self.config = config
        self.registry = WorkerRegistry(
            pool, capacity=config.capacity, initial_quality=initial_quality
        )
        self.cache = JQCache(
            alpha=config.alpha,
            num_buckets=config.num_buckets,
            quantization=config.quantization,
            max_entries=config.cache_max_entries,
        )
        self.metrics = EngineMetrics()
        self.telemetry = (
            Telemetry(interval=config.metrics_interval)
            if config.telemetry == "on"
            else NULL_TELEMETRY
        )
        self.telemetry.add_collector(self._telemetry_gauges)
        # External-vote serving: seated juries become open offers on
        # the book instead of simulated VoteArrival events.
        self.offers: AssignmentBook | None = (
            AssignmentBook() if config.vote_source == "external" else None
        )
        self.scheduler: CampaignScheduler | None = None
        self._queue = EventQueue()
        self._rng = np.random.default_rng(config.seed)
        self._batch: list[EngineTask] = []
        self._deferred: list[EngineTask] = []
        self._active: dict[str, _TaskRuntime] = {}
        self._task_ids: set[str] = set()
        self._clock = 0.0
        self._expected_tasks: int | None = None
        self._ran = False
        self._finished = False
        # Set by the Campaign facade; drives config.checkpoint_every.
        self._checkpoint_hook = None
        # Observed scheduler-admit wall latency (EWMA, seconds); feeds
        # the adaptive async intake grace (ingest_grace="auto").
        self.admit_latency_ewma: float | None = None
        # Lazy thread pool for the vote-fanout drain (vote_fanout > 0).
        self._vote_pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        tasks,
        start_time: float = 0.0,
        spacing: float = 1.0,
    ) -> int:
        """Enqueue task arrivals at evenly spaced logical times.

        Returns the number of tasks enqueued.  May be called repeatedly
        before :meth:`run`.
        """
        return self.ingest(
            (start_time + i * spacing, task) for i, task in enumerate(tasks)
        )

    def ingest(self, stamped_tasks) -> int:
        """Inject pre-stamped ``(arrival_time, task)`` pairs into the
        event queue — the async intake path
        (:class:`~repro.engine.ingest.AsyncIngestLoop` stamps arrival
        times at submission, under the intake mutex, and drains them
        here on the loop thread).  The event heap is not thread-safe:
        only the thread driving the loop may call this.
        """
        count = 0
        for arrival_time, task in stamped_tasks:
            if not isinstance(task, EngineTask):
                raise TypeError(
                    f"expected EngineTask, got {type(task).__name__}"
                )
            if task.task_id in self._task_ids:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            self._task_ids.add(task.task_id)
            self._queue.push(TaskArrival(float(arrival_time), task))
            count += 1
        return count

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self) -> EngineMetrics:
        """Drain the event queue and return the campaign metrics."""
        if self._ran:
            raise RuntimeError("a CampaignEngine instance runs one campaign")
        self._ran = True
        self._start()
        start = time.perf_counter()
        while self._queue:
            self._step()
        self._finish()
        self.metrics.wall_seconds += time.perf_counter() - start
        return self.metrics

    # Lifecycle primitives — the resumable surface the Campaign facade
    # drives (run() above is the classic one-shot composition of them).
    def _start(self) -> None:
        """Build the scheduler on first use (idempotent).  A restored
        campaign arrives with ``_expected_tasks`` already pinned — the
        pacing baseline must not be re-derived from a queue whose
        arrivals were partly consumed before the checkpoint."""
        if self.scheduler is None:
            if self._expected_tasks is None:
                self._expected_tasks = self.config.expected_tasks or max(
                    self._queue.pending(TaskArrival), 1
                )
            self.scheduler = self._make_scheduler(self._expected_tasks)

    def _step(self) -> None:
        """Pop and dispatch exactly one event."""
        event = self._queue.pop()
        self._clock = max(self._clock, event.time)
        self._dispatch(event)

    def _finish(self) -> None:
        """Finalize once the queue has drained (idempotent).

        Anything still deferred when the queue drains could never be
        seated (pathological capacity/budget starvation): answer the
        prior rather than drop the task on the floor.
        """
        if self._finished:
            return
        if self.offers is not None and self._active:
            raise RuntimeError(
                f"cannot finalize: {len(self._active)} task(s) still "
                "await external votes — deliver them or keep serving"
            )
        self._finished = True
        for task in self._deferred:
            self._finalize_unfunded(task)
        self._deferred = []
        self._collect_stats()
        if self.scheduler is not None:
            self.scheduler.close()
        if self._vote_pool is not None:
            self._vote_pool.shutdown(wait=True)
            self._vote_pool = None

    def _make_scheduler(self, expected_tasks: int):
        """Build this campaign's scheduler.  Subclass hook: the sharded
        engine returns a coordinator with the same ``admit``/``refund``
        surface instead of a single :class:`CampaignScheduler`."""
        return CampaignScheduler(
            self.registry,
            self.cache,
            budget=self.config.budget,
            expected_tasks=expected_tasks,
            frontier_pool_size=self.config.frontier_pool_size,
            jq_kernel=self.config.jq_kernel,
            telemetry=self.telemetry,
        )

    def _telemetry_gauges(self):
        """Pull-based gauges for the telemetry snapshot (collector: read
        only at export time, zero hot-path cost)."""
        yield from self.cache.stats.telemetry_gauges()
        yield "registry.active_seats", {}, float(self.registry.active_seats)
        yield "registry.total_capacity", {}, float(
            self.registry.total_capacity
        )
        yield "registry.peak_load", {}, float(self.registry.peak_load)
        yield "engine.tasks_active", {}, float(len(self._active))
        yield "engine.tasks_deferred", {}, float(len(self._deferred))
        if self.offers is not None:
            yield "engine.open_offers", {}, float(self.offers.open_count)

    def _collect_stats(self) -> None:
        """Fold end-of-run state into the metrics.  Subclass hook: the
        sharded engine aggregates per-shard caches and attaches shard
        and allocator snapshots."""
        self.metrics.peak_worker_load = self.registry.peak_load
        self.metrics.cache_stats = self.cache.stats
        self.metrics.reestimations = self.registry.reestimations
        if self.registry.reestimations:
            self.metrics.quality_estimation_error = (
                self.registry.estimation_error()
            )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        if isinstance(event, TaskArrival):
            self._on_arrival(event)
        elif isinstance(event, VoteArrival):
            if self.config.vote_fanout > 0:
                self._on_vote_fanout(event)
            else:
                self._on_vote(event)
        elif isinstance(event, TaskComplete):
            self._on_complete(event)
        else:  # pragma: no cover - closed event algebra
            raise TypeError(f"unknown event {type(event).__name__}")

    def _on_arrival(self, event: TaskArrival) -> None:
        self._batch.append(event.task)
        self.metrics.submitted += 1
        self.telemetry.inc("engine.tasks_submitted")
        self.telemetry.mark("intake")
        if (
            len(self._batch) >= self.config.batch_size
            or self._queue.pending(TaskArrival) == 0
        ):
            self._flush_batch()

    def _flush_batch(self) -> None:
        """Schedule everything waiting: deferred tasks first (they have
        waited longest), then the fresh batch."""
        waiting = self._deferred + self._batch
        self._batch = []
        if not waiting:
            self._deferred = []
            return
        # Cap each scheduling pass at one batch so a long deferred
        # backlog (capacity starvation) costs O(batch) per retry, not
        # O(backlog).
        take = waiting[: self.config.batch_size]
        rest = waiting[self.config.batch_size :]
        assert self.scheduler is not None
        admit_start = time.perf_counter()
        assignments, deferred = self.scheduler.admit(take)
        admit_seconds = time.perf_counter() - admit_start
        self.admit_latency_ewma = (
            admit_seconds
            if self.admit_latency_ewma is None
            else 0.2 * admit_seconds + 0.8 * self.admit_latency_ewma
        )
        self._deferred = deferred + rest
        self.telemetry.event(
            "admit",
            batch=len(take),
            seated=len(assignments),
            deferred=len(deferred),
        )
        for assignment in assignments:
            self._start_task(assignment)

    def _start_task(self, assignment: Assignment) -> None:
        task = assignment.task
        truth = task.ground_truth
        if truth is None:
            # Simulation needs *some* latent truth to generate votes;
            # drawn tasks are excluded from accuracy scoring.
            truth = 0 if self._rng.random() < task.prior else 1
        session = OnlineDecisionSession(
            alpha=task.prior,
            confidence_target=self.config.confidence_target,
        )
        runtime = _TaskRuntime(
            task=task,
            assignment=assignment,
            session=session,
            sim_truth=truth,
            scored_truth=task.ground_truth,
            pending_workers=[],
        )
        self._active[task.task_id] = runtime
        if not assignment.funded:
            self._queue.push(
                TaskComplete(self._clock, task.task_id, "unfunded")
            )
            return
        jurors = sorted(assignment.jury, key=informativeness_key)
        runtime.pending_workers = [w.worker_id for w in jurors]
        if self.offers is not None:
            # External votes: publish one open offer per seat and wait
            # for deliver_vote() instead of scheduling simulated votes.
            self.offers.publish(
                task.task_id, runtime.pending_workers, prior=task.prior
            )
            self.telemetry.event(
                "offer", task=task.task_id, seats=len(jurors)
            )
            return
        for k, worker in enumerate(jurors):
            self._queue.push(
                VoteArrival(
                    self._clock + (k + 1) * self.config.vote_latency,
                    task.task_id,
                    worker.worker_id,
                )
            )

    def _on_vote(self, event: VoteArrival) -> None:
        runtime = self._active.get(event.task_id)
        if runtime is None or runtime.done:
            self.metrics.votes_cancelled += 1  # landed after early stop
            self.telemetry.inc("engine.votes_cancelled")
            self.telemetry.event(
                "cancel", task=event.task_id, worker=event.worker_id
            )
            return
        worker = self.registry.worker(event.worker_id)
        q_true = self.registry.true_quality(event.worker_id)
        truth = runtime.sim_truth
        vote = truth if self._rng.random() < q_true else 1 - truth
        runtime.session.add_vote(worker, vote)
        self.registry.record_vote(event.worker_id, event.task_id, vote)
        self.metrics.votes_cast += 1
        self.telemetry.inc("engine.votes_cast")
        self.telemetry.event(
            "vote", task=event.task_id, worker=event.worker_id, vote=vote
        )
        runtime.pending_workers.remove(event.worker_id)

        if not runtime.pending_workers:
            runtime.done = True
            self._queue.push(
                TaskComplete(event.time, event.task_id, "all-votes")
            )
        elif runtime.session.should_stop:
            runtime.done = True
            self._queue.push(
                TaskComplete(event.time, event.task_id, "early-stop")
            )

    def _on_vote_fanout(self, first: VoteArrival) -> None:
        """Drain a same-tick run of vote arrivals on the fanout pool.

        Byte-identity with the sequential drain rests on three fences:

        * only *same-time* events join the run — any ``TaskComplete`` a
          run member pushes carries that same time with a later enqueue
          serial, so sequentially it would pop after every run member
          anyway (a strictly earlier-time completion would pop — and
          could retry deferred tasks, consuming RNG — between votes, so
          later-time votes must not be folded in);
        * only *distinct live* tasks join, so the parallel phase
          touches disjoint decision sessions and a member cannot
          complete another member's task mid-run;
        * uniforms are pre-drawn in pop order and effects (vote matrix
          rows, metrics, completion pushes) committed in pop order.

        Only the per-vote simulation (uniform compare + posterior
        update) runs on the pool — the registry, metrics, and event
        queue are touched solely from the loop thread.
        """
        events = [first]
        run_tasks = {first.task_id}
        while True:
            nxt = self._queue.peek()
            if (
                not isinstance(nxt, VoteArrival)
                or nxt.time != first.time
                or nxt.task_id in run_tasks
            ):
                break
            runtime = self._active.get(nxt.task_id)
            if runtime is None or runtime.done:
                break
            run_tasks.add(nxt.task_id)
            event = self._queue.pop()
            self._clock = max(self._clock, event.time)
            events.append(event)
        live: list[tuple[VoteArrival, _TaskRuntime, float]] = []
        for event in events:
            runtime = self._active.get(event.task_id)
            if runtime is None or runtime.done:
                # Only the run's head can be dead (later members were
                # screened); the sequential path consumes no RNG here.
                self._on_vote(event)
                continue
            live.append((event, runtime, self._rng.random()))
        if not live:
            return

        def simulate(item) -> int:
            event, runtime, u = item
            worker = self.registry.worker(event.worker_id)
            q_true = self.registry.true_quality(event.worker_id)
            truth = runtime.sim_truth
            vote = truth if u < q_true else 1 - truth
            runtime.session.add_vote(worker, vote)
            return vote

        if len(live) == 1:
            votes = [simulate(live[0])]
        else:
            if self._vote_pool is None:
                self._vote_pool = ThreadPoolExecutor(
                    max_workers=self.config.vote_fanout,
                    thread_name_prefix="repro-vote",
                )
            votes = list(self._vote_pool.map(simulate, live))
        for (event, runtime, _), vote in zip(live, votes):
            self.registry.record_vote(event.worker_id, event.task_id, vote)
            self.metrics.votes_cast += 1
            self.telemetry.inc("engine.votes_cast")
            self.telemetry.event(
                "vote", task=event.task_id, worker=event.worker_id, vote=vote
            )
            runtime.pending_workers.remove(event.worker_id)
            if not runtime.pending_workers:
                runtime.done = True
                self._queue.push(
                    TaskComplete(event.time, event.task_id, "all-votes")
                )
            elif runtime.session.should_stop:
                runtime.done = True
                self._queue.push(
                    TaskComplete(event.time, event.task_id, "early-stop")
                )

    def deliver_vote(self, task_id: str, worker_id: str, vote: int) -> bool:
        """Apply one externally supplied vote (``vote_source="external"``
        only; loop thread only — this touches the event heap).

        Mirrors the simulated :meth:`_on_vote` path minus the RNG draw:
        the vote is recorded, the decision session updated, and an
        early stop or final vote pushes the task's ``TaskComplete``
        onto the event queue (drive the loop afterwards to dispatch
        it).  Returns ``False`` — counting the vote as cancelled, the
        external analogue of a simulated vote landing after an early
        stop — when the task already completed; claims through
        :meth:`~repro.engine.ingest.AssignmentBook.claim` normally
        prevent that, but a vote claimed just before its task finished
        still lands here late.
        """
        if self.offers is None:
            raise RuntimeError(
                "deliver_vote requires vote_source='external' "
                "(this campaign simulates votes)"
            )
        if vote not in (0, 1):
            raise ValueError(f"vote must be 0 or 1, got {vote!r}")
        runtime = self._active.get(task_id)
        if runtime is None or runtime.done:
            self.metrics.votes_cancelled += 1
            self.telemetry.inc("engine.votes_cancelled")
            self.telemetry.event("cancel", task=task_id, worker=worker_id)
            return False
        if worker_id not in runtime.pending_workers:
            raise NoOpenOffer(
                f"worker {worker_id!r} holds no open seat on task "
                f"{task_id!r}"
            )
        worker = self.registry.worker(worker_id)
        runtime.session.add_vote(worker, int(vote))
        self.registry.record_vote(worker_id, task_id, int(vote))
        self.metrics.votes_cast += 1
        self.telemetry.inc("engine.votes_cast")
        self.telemetry.event(
            "vote", task=task_id, worker=worker_id, vote=int(vote)
        )
        runtime.pending_workers.remove(worker_id)

        if not runtime.pending_workers:
            runtime.done = True
            self._queue.push(
                TaskComplete(self._clock, task_id, "all-votes")
            )
        elif runtime.session.should_stop:
            runtime.done = True
            self._queue.push(
                TaskComplete(self._clock, task_id, "early-stop")
            )
        if runtime.done:
            # Seats whose votes are no longer needed: close the offers
            # so late claims fail fast instead of queueing dead votes.
            self.offers.revoke_task(task_id)
        return True

    def _on_complete(self, event: TaskComplete) -> None:
        runtime = self._active.pop(event.task_id)
        assignment = runtime.assignment
        session = runtime.session
        assert self.scheduler is not None

        if event.reason == "unfunded":
            self.metrics.record_task(self._unfunded_record(runtime.task))
        else:
            answer = session.answer
            spent = session.cost
            # Release every seat (voted or not) and refund what the
            # early stop left unspent.
            for worker_id in assignment.jury.worker_ids:
                self.registry.release(worker_id, event.task_id)
            self.scheduler.refund(assignment.reserved_cost - spent)
            self.registry.resolve(event.task_id, answer)
            self.metrics.record_task(
                TaskRecord(
                    task_id=event.task_id,
                    answer=answer,
                    confidence=session.confidence,
                    predicted_jq=assignment.predicted_jq,
                    reserved_cost=assignment.reserved_cost,
                    spent_cost=spent,
                    votes_used=session.votes_used,
                    reason=event.reason,
                    correct=None
                    if runtime.scored_truth is None
                    else (answer == runtime.scored_truth),
                )
            )

        self.telemetry.inc("engine.tasks_completed", reason=event.reason)
        self.telemetry.mark("throughput")

        every = self.config.reestimate_every
        if every and self.metrics.completed % every == 0:
            with self.telemetry.span("reestimate"):
                self.registry.reestimate(
                    method=self.config.reestimate_method,
                    learning_rate=self.config.reestimate_rate,
                )
            self.telemetry.event(
                "re-estimation", passes=self.registry.reestimations
            )

        # Freed capacity may unblock deferred tasks.
        if self._deferred and self._queue.pending(TaskArrival) == 0:
            self._flush_batch()

        # Scheduled checkpointing piggybacks on the same completion
        # hook as re-estimation; snapshotting is read-only, so a run
        # that checkpoints is byte-identical to one that does not.
        ckpt_every = self.config.checkpoint_every
        if (
            ckpt_every
            and self._checkpoint_hook is not None
            and self.metrics.completed % ckpt_every == 0
        ):
            self._checkpoint_hook()

    def _finalize_unfunded(self, task: EngineTask) -> None:
        """Terminal fallback for tasks that never found a seat."""
        self.metrics.record_task(self._unfunded_record(task))

    @staticmethod
    def _unfunded_record(task: EngineTask) -> TaskRecord:
        """A task served no jury answers its prior's mode; both the
        confidence and the 'predicted' accuracy are the prior mass."""
        answer = 0 if task.prior >= 0.5 else 1
        confidence = max(task.prior, 1.0 - task.prior)
        return TaskRecord(
            task_id=task.task_id,
            answer=answer,
            confidence=confidence,
            predicted_jq=confidence,
            reserved_cost=0.0,
            spent_cost=0.0,
            votes_used=0,
            reason="unfunded",
            correct=None
            if task.ground_truth is None
            else (answer == task.ground_truth),
        )
