"""The `Campaign` facade: an explicit, resumable serving lifecycle.

The pre-facade API was "construct ``CampaignEngine`` or
``ShardedCampaignEngine`` with the right kwargs, ``submit()``,
``run()`` once, lose everything".  :class:`Campaign` replaces that with
a lifecycle::

    campaign = Campaign.open(pool, CampaignConfig(budget=150, seed=7),
                             backend=SQLiteBackend("campaign.db"))
    campaign.submit(EngineTask(f"t{i}") for i in range(1000))
    campaign.run(until=400)     # resumable stepping, not one-shot
    campaign.checkpoint()       # full state -> backend
    campaign.close()

    # ... later, possibly in another process ...
    campaign = Campaign.resume(SQLiteBackend("campaign.db"))
    metrics = campaign.run()    # finishes the same campaign

A checkpoint captures *everything* replay identity needs — worker
registry (vote histories, drifted quality estimates, live seats),
answer matrix, budget/allocator ledgers, shard membership, pending
events, in-flight decision sessions, RNG state, metrics, the JQ caches
and frontier memos — so a campaign checkpointed mid-run and resumed
produces a :meth:`~repro.engine.metrics.EngineMetrics.fingerprint`
byte-identical to an uninterrupted run (pinned by the invariant
harness, across backends and shard counts).

Shard count is a config field (``CampaignConfig(num_shards=K)``), not a
class choice; the deprecated engine classes remain as shims.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Iterable

from ..core.jury import Jury
from ..core.worker import Worker, WorkerPool
from ..online import OnlineDecisionSession
from .backends import (
    SNAPSHOT_VERSION,
    BackendError,
    MemoryBackend,
    StateBackend,
)
from .config import CampaignConfig
from .engine import CampaignEngine, _TaskRuntime
from .events import EngineTask, EventQueue
from .ingest import AsyncIngestLoop, IngestStats
from .metrics import EngineMetrics
from .procpool import LeaseCoordinator
from .scheduler import Assignment
from .sharding import ShardedCampaignEngine, ShardedScheduler
from .state import WorkerRegistry
from .cache import load_cache_file, save_cache_file

#: Environment toggles forcing the concurrent serving path — CI runs
#: the whole engine suite once with both set, so every lifecycle test
#: doubles as a deadlock/race probe for the async machinery.  Applied
#: only at the facade (the deprecated engine classes honor their
#: explicit config), and only when the value is non-empty.
FORCE_INGESTION_ENV = "REPRO_ENGINE_FORCE_INGESTION"
FORCE_PARALLEL_SHARDS_ENV = "REPRO_ENGINE_FORCE_PARALLEL_SHARDS"
FORCE_TELEMETRY_ENV = "REPRO_ENGINE_FORCE_TELEMETRY"
FORCE_DISPATCH_ENV = "REPRO_ENGINE_FORCE_DISPATCH"


def _apply_env_overrides(config: CampaignConfig) -> CampaignConfig:
    updates: dict = {}
    ingestion = os.environ.get(FORCE_INGESTION_ENV)
    if ingestion:
        updates["ingestion"] = ingestion
    parallel = os.environ.get(FORCE_PARALLEL_SHARDS_ENV)
    if parallel:
        updates["parallel_shards"] = int(parallel)
    dispatch = os.environ.get(FORCE_DISPATCH_ENV)
    if dispatch:
        # Re-runs the whole engine suite under process dispatch, which
        # is byte-identical to threaded dispatch by construction — the
        # CI ``procpool`` job is exactly this toggle over the suite.
        updates["dispatch"] = dispatch
    if os.environ.get(FORCE_TELEMETRY_ENV):
        # Any non-empty value forces the live hub on — telemetry only
        # observes, so forcing it must never change a decision (that is
        # exactly what the CI job running under this toggle verifies).
        updates["telemetry"] = "on"
    if not updates:
        return config
    return dataclasses.replace(config, **updates)


class _FacadeEngine(CampaignEngine):
    """Engine core as constructed by the facade (no deprecation
    warning — the facade *is* the supported entry point)."""


class _FacadeShardedEngine(ShardedCampaignEngine):
    """Sharded engine core as constructed by the facade."""


def _build_engine(
    pool: WorkerPool,
    config: CampaignConfig,
    initial_quality=None,
):
    sharding = config.sharding_config()
    if sharding is None:
        return _FacadeEngine(
            pool, config.engine_config(), initial_quality=initial_quality
        )
    return _FacadeShardedEngine(
        pool,
        config.engine_config(),
        sharding,
        initial_quality=initial_quality,
    )


_INTERNAL = object()


class Campaign:
    """One campaign with an explicit open/run/checkpoint/close lifecycle.

    Construct via :meth:`open` (fresh) or :meth:`resume` (from a
    backend's checkpoint); the class is also a context manager
    (``with Campaign.open(...) as campaign:``), closing the backend on
    exit.
    """

    def __init__(self, *, _token=None) -> None:
        if _token is not _INTERNAL:
            raise TypeError(
                "use Campaign.open(pool, config, backend=...) or "
                "Campaign.resume(backend)"
            )
        self._engine: CampaignEngine | None = None
        self._config: CampaignConfig | None = None
        self._backend: StateBackend = MemoryBackend()
        self._ingest: AsyncIngestLoop | None = None
        self._coordinator: LeaseCoordinator | None = None
        self._closed = False
        # Sync campaigns have no intake queue; external-vote mode still
        # needs the "no more tasks are coming" handshake before run()
        # may finalize, so the facade tracks it directly.
        self._sync_intake_closed = False

    def _attach_ingest(self) -> None:
        """Build the async intake loop when the config asks for it
        (``ingestion="async"``); the sync path keeps ``None``."""
        if self._config.ingestion == "async":
            self._ingest = AsyncIngestLoop(
                self._engine,
                max_pending=self._config.ingest_max_pending,
                grace=self._config.ingest_grace,
                producer_quota=self._config.ingest_producer_quota,
            )

    def _attach_coordinator(self) -> None:
        """Join the shared seat-lease store when the config names one
        (``coordinate_path``): every seat this engine takes acquires a
        cross-process lease first, so N engines serving one worker pool
        cannot double-seat (see :mod:`repro.engine.procpool`)."""
        if self._config.coordinate_path:
            self._coordinator = LeaseCoordinator(
                self._config.coordinate_path, ttl=self._config.lease_ttl
            )
            self._engine.registry.attach_lease_coordinator(
                self._coordinator
            )

    @property
    def coordinator(self) -> LeaseCoordinator | None:
        """This engine's lease-store handle (``None`` when the campaign
        is not coordinated)."""
        return self._coordinator

    # ------------------------------------------------------------------
    # Lifecycle entry points
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        pool: WorkerPool,
        config: CampaignConfig,
        backend: StateBackend | None = None,
        initial_quality: float | dict[str, float] | None = None,
    ) -> "Campaign":
        """Start a fresh campaign over ``pool`` under ``config``.

        ``backend`` receives :meth:`checkpoint` snapshots;
        :class:`~repro.engine.backends.MemoryBackend` (in-process only)
        when omitted.
        """
        campaign = cls(_token=_INTERNAL)
        config = _apply_env_overrides(config)
        campaign._config = config
        campaign._engine = _build_engine(pool, config, initial_quality)
        if backend is not None:
            campaign._backend = backend
        campaign._engine._checkpoint_hook = campaign.checkpoint
        campaign._attach_ingest()
        campaign._attach_coordinator()
        return campaign

    @classmethod
    def resume(cls, backend: StateBackend) -> "Campaign":
        """Rebuild a campaign from the backend's last checkpoint and
        keep serving it — same decisions, same metrics fingerprint, as
        if the run had never been interrupted."""
        snapshot = backend.load()
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise BackendError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        campaign = cls(_token=_INTERNAL)
        campaign._backend = backend
        campaign._restore(snapshot)
        return campaign

    def close(self) -> None:
        """Release the backend, the intake, and any dispatch pool
        (idempotent).  State already checkpointed stays checkpointed;
        un-checkpointed progress is lost — call :meth:`checkpoint`
        first to keep it."""
        if not self._closed:
            self._closed = True
            if self._ingest is not None:
                self._ingest.close_intake()
            if self._engine is not None and self._engine.scheduler is not None:
                self._engine.scheduler.close()
            if (
                self._engine is not None
                and self._engine._vote_pool is not None
            ):
                self._engine._vote_pool.shutdown(wait=True)
                self._engine._vote_pool = None
            if self._coordinator is not None:
                self._coordinator.close()
            self._backend.close()

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(
        self,
        tasks: Iterable[EngineTask],
        start_time: float = 0.0,
        spacing: float = 1.0,
        timeout: float | None = None,
    ) -> int:
        """Enqueue task arrivals (see :meth:`CampaignEngine.submit`).
        Allowed any time before the campaign finishes — including
        between :meth:`run` calls and after a :meth:`resume`.  Under
        ``ingestion="async"`` submission goes through the thread-safe
        intake queue (bounded backpressure), so producers on any thread
        may stream tasks in **while** :meth:`run` is serving;
        ``timeout`` bounds how long a producer waits out backpressure
        (async only — the sync path never blocks)."""
        self._require_serving()
        if self._ingest is not None:
            return self._ingest.submit(tasks, start_time, spacing, timeout)
        return self._engine.submit(tasks, start_time, spacing)

    def run(self, until: int | None = None) -> EngineMetrics:
        """Advance the campaign and return the live metrics.

        ``until=None`` drains the event queue (the campaign finishes);
        ``until=N`` pauses as soon as at least ``N`` tasks have
        completed, leaving juries in flight and every pending event
        queued — exactly what :meth:`checkpoint` then persists.
        Calling :meth:`run` again continues from the pause point.

        Under ``ingestion="async"`` the same contract is served through
        the intake loop: live submissions from other threads are folded
        in as they arrive, and ``until=None`` finishes once the queue
        and the intake have both quiesced (after an ``ingest_grace``
        straggler window).
        """
        self._require_open()
        engine = self._engine
        if self._ingest is not None:
            metrics = self._ingest.run(until)
            self._write_configured_trace()
            return metrics
        engine._start()
        start = time.perf_counter()
        while engine._queue and (
            until is None or engine.metrics.completed < until
        ):
            engine._step()
        # External-vote campaigns may only finalize once no jury still
        # awaits votes and the caller has declared the task stream over
        # (close_intake()) — otherwise this run() is just a pump.
        external_waiting = engine.offers is not None and (
            bool(engine._active) or not self._intake_closed
        )
        if not engine._queue and not external_waiting:
            engine._finish()
        else:
            # Paused mid-campaign: fold the live gauges (peak load,
            # cache stats, re-estimation passes) into the metrics so a
            # paused report is not all zeros.  The finish pass
            # overwrites them with final values, so resumed-run
            # fingerprints are untouched.
            engine._collect_stats()
        engine.metrics.wall_seconds += time.perf_counter() - start
        self._write_configured_trace()
        return engine.metrics

    def _write_configured_trace(self) -> None:
        """Honor ``config.trace_path`` after every run (cumulative: the
        hub keeps its ring buffers across pauses, so the last write
        carries the fullest trace)."""
        path = self._config.trace_path
        if path and self._engine.telemetry.enabled:
            self._engine.telemetry.write_trace(path)

    def serve(
        self,
        stop=None,
        poll: float = 0.05,
        drain_hook=None,
        tick=None,
        tick_interval: float | None = None,
    ) -> EngineMetrics:
        """Serve-forever daemon mode (requires ``ingestion="async"``).

        Blocks the calling thread, idling indefinitely for live traffic
        — unlike :meth:`run`, which concludes after one quiet
        ``ingest_grace`` window.  Exits by finalizing once the intake
        is closed and everything quiesced, or by *pausing* (checkpoint
        and :meth:`resume` later) once ``stop`` — a
        ``threading.Event`` — is set.  See
        :meth:`AsyncIngestLoop.serve` for the hook parameters; the
        HTTP layer (:class:`~repro.engine.server.CampaignServer`)
        drives vote delivery and admin commands through them.
        """
        self._require_serving()
        if self._ingest is None:
            raise RuntimeError(
                "serve() requires ingestion='async' "
                "(CampaignConfig(ingestion='async'))"
            )
        if self._coordinator is not None:
            # A coordinated engine must renew its seat leases well
            # inside the TTL or a live engine's seats get reclaimed as
            # if it had crashed.  Renewal rides the serve loop's tick
            # at ttl/3; the caller's own tick keeps its own cadence.
            # A StaleEpochError out of renew() (this owner re-registered
            # elsewhere) propagates and stops serving — fenced means
            # fenced.
            coordinator = self._coordinator
            renew_every = coordinator.ttl / 3.0
            caller_tick, caller_interval = tick, tick_interval
            last = {
                "renew": time.monotonic(),
                "tick": time.monotonic(),
            }

            def tick() -> None:
                now = time.monotonic()
                if now - last["renew"] >= renew_every:
                    last["renew"] = now
                    coordinator.renew()
                if (
                    caller_tick is not None
                    and caller_interval
                    and now - last["tick"] >= caller_interval
                ):
                    last["tick"] = now
                    caller_tick()

            tick_interval = (
                renew_every
                if not caller_interval
                else min(renew_every, caller_interval)
            )
        metrics = self._ingest.serve(
            stop=stop,
            poll=poll,
            drain_hook=drain_hook,
            tick=tick,
            tick_interval=tick_interval,
        )
        self._write_configured_trace()
        return metrics

    def close_intake(self) -> None:
        """Stop accepting task submissions (idempotent).  The
        producer-side handshake for live serving: once the last
        producer joins, closing the intake lets an in-flight ``run()``
        or ``serve()`` finish instead of idling for more traffic.  For
        sync external-vote campaigns this is the explicit "no more
        tasks" declaration that allows :meth:`run` to finalize."""
        self._sync_intake_closed = True
        if self._ingest is not None:
            self._ingest.close_intake()

    @property
    def _intake_closed(self) -> bool:
        if self._ingest is not None:
            return self._ingest.intake.closed
        return self._sync_intake_closed

    # ------------------------------------------------------------------
    # External-vote surface (vote_source="external")
    # ------------------------------------------------------------------
    @property
    def offers(self):
        """The open-offer book under ``vote_source="external"``
        (``None`` when votes are simulated)."""
        return self._engine.offers

    def _pump(self) -> None:
        """Drive the engine to a quiescent point on the caller's thread
        (single-threaded external driving only — the serve loop owns
        the engine while it runs)."""
        engine = self._engine
        engine._start()
        if self._ingest is not None:
            self._ingest.quiesce_intake()
        while engine._queue:
            engine._step()

    def _require_external(self) -> None:
        if self._engine.offers is None:
            raise RuntimeError(
                "this campaign simulates votes "
                "(CampaignConfig(vote_source='external') enables "
                "assignments()/vote())"
            )
        if self._ingest is not None and self._ingest.running:
            raise RuntimeError(
                "serve() owns the engine; submit assignments/votes "
                "through the serving endpoint instead"
            )

    def assignments(self, worker_id: str) -> list[dict]:
        """The worker's open vote offers (external mode, in-process
        driving).  Pumps pending arrivals first so freshly submitted
        tasks are seated before the worker looks for work."""
        self._require_serving()
        self._require_external()
        self._pump()
        return self._engine.offers.for_worker(worker_id)

    def vote(self, task_id: str, worker_id: str, vote: int) -> bool:
        """Claim the worker's open offer on ``task_id`` and apply the
        vote (external mode, in-process driving).  Returns ``False``
        when the vote landed after the task completed (counted as
        cancelled); raises
        :class:`~repro.engine.ingest.NoOpenOffer` when the seat is not
        open.  Mirrors, step for step, what one ``POST /votes`` does on
        the serving loop — the fingerprint-parity pin between the two
        transports rests on that equivalence."""
        self._require_serving()
        self._require_external()
        self._pump()
        self._engine.offers.claim(task_id, worker_id)
        accepted = self._engine.deliver_vote(task_id, worker_id, vote)
        self._pump()
        return accepted

    @property
    def intake_stats(self):
        """Live intake counters (async campaigns; ``None`` for sync)."""
        if self._ingest is None:
            return None
        return self._ingest.intake.stats

    @property
    def telemetry(self):
        """The engine's telemetry hub —
        :data:`~repro.engine.telemetry.NULL_TELEMETRY` when
        ``config.telemetry="off"``."""
        return self._engine.telemetry

    def snapshot_metrics(self) -> dict:
        """JSON-serialisable metrics snapshot: campaign aggregates plus
        the full telemetry export (counters, gauges, histograms, and the
        windowed intake/throughput rates)."""
        self._require_open()
        metrics = self._engine.metrics
        return {
            "completed": metrics.completed,
            "submitted": metrics.submitted,
            "early_stopped": metrics.early_stopped,
            "unfunded": metrics.unfunded,
            "votes_cast": metrics.votes_cast,
            "votes_cancelled": metrics.votes_cancelled,
            "total_spend": metrics.total_spend,
            "total_refunded": metrics.total_refunded,
            "throughput": metrics.throughput,
            "wall_seconds": metrics.wall_seconds,
            "intake": metrics.intake_stats,
            "telemetry": self._engine.telemetry.snapshot(),
        }

    def write_trace(self, path) -> int:
        """Write the campaign's Chrome trace-event JSON to ``path`` and
        return the event count (0 when telemetry is off).  The file
        loads directly in Perfetto (https://ui.perfetto.dev)."""
        self._require_open()
        return self._engine.telemetry.write_trace(str(path))

    def checkpoint(self) -> None:
        """Persist the full campaign state to the backend, replacing
        any earlier checkpoint.  Async campaigns fold staged intake
        into the event queue first, so no accepted task is ever lost to
        a checkpoint taken between drain and schedule.  (Like
        :meth:`run`, this must be called from the serving thread.)"""
        self._require_open()
        if self._ingest is not None:
            self._ingest.quiesce_intake()
        self._engine.telemetry.event(
            "checkpoint", completed=self._engine.metrics.completed
        )
        self._backend.save(self._snapshot())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> CampaignConfig:
        return self._config

    @property
    def backend(self) -> StateBackend:
        return self._backend

    @property
    def metrics(self) -> EngineMetrics:
        return self._engine.metrics

    @property
    def registry(self) -> WorkerRegistry:
        return self._engine.registry

    @property
    def done(self) -> bool:
        """True once the event queue has drained and finalization ran."""
        return self._engine._finished

    @property
    def engine(self) -> CampaignEngine:
        """The underlying engine core (single or sharded) — an escape
        hatch for observability; drive the campaign through the facade."""
        return self._engine

    def render(self) -> str:
        return self.metrics.render(budget=self._config.budget)

    # ------------------------------------------------------------------
    # Warm-cache shipping
    # ------------------------------------------------------------------
    def _caches(self):
        engine = self._engine
        if isinstance(engine.scheduler, ShardedScheduler):
            # Under process dispatch the worker-side caches are the
            # live ones; sync the parent replicas before reading.
            engine.scheduler.pull_worker_state()
            return [shard.cache for shard in engine.scheduler.shards]
        return [engine.cache]

    def export_cache(self, path) -> int:
        """Write this campaign's warmed JQ-cache entries (union across
        shards) to a JSON file another campaign can import."""
        self._require_open()
        return save_cache_file(path, self._caches())

    def import_cache(self, path) -> int:
        """Warm this campaign's JQ caches from an exported file.  Call
        after :meth:`submit` (importing forces the serving stack to
        build, which fixes the expected-task pacing baseline)."""
        self._require_open()
        if self._ingest is not None:
            # Staged arrivals must reach the event queue before the
            # stack builds, or the pacing baseline would see none of
            # them.
            self._ingest.quiesce_intake()
        self._engine._start()
        imported = load_cache_file(path, self._caches())
        scheduler = self._engine.scheduler
        if isinstance(scheduler, ShardedScheduler):
            # Warmed entries must reach the shard worker processes, or
            # process dispatch would serve from cold caches.
            scheduler.push_worker_state()
        return imported

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("campaign is closed")

    def _require_serving(self) -> None:
        self._require_open()
        if self.done:
            raise RuntimeError("campaign already finished")

    # ------------------------------------------------------------------
    # Snapshot assembly
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        engine = self._engine
        runtime_states = [
            {
                "task": rt.task.state_dict(),
                "jury": [
                    [w.worker_id, w.quality, w.cost]
                    for w in rt.assignment.jury.workers
                ],
                "predicted_jq": rt.assignment.predicted_jq,
                "reserved_cost": rt.assignment.reserved_cost,
                "session": rt.session.state_dict(),
                "sim_truth": rt.sim_truth,
                "scored_truth": rt.scored_truth,
                "pending_workers": list(rt.pending_workers),
                "done": rt.done,
            }
            for rt in engine._active.values()
        ]
        campaign_section = {
            "config": self._config.to_dict(),
            "clock": engine._clock,
            "expected_tasks": engine._expected_tasks,
            "finished": engine._finished,
            "reestimations": engine.registry.reestimations,
            "task_ids": sorted(engine._task_ids),
            "batch": [t.state_dict() for t in engine._batch],
            "deferred": [t.state_dict() for t in engine._deferred],
            "active": runtime_states,
            "queue": engine._queue.state_dict(),
            "rng": engine._rng.bit_generator.state,
            "metrics": engine.metrics.state_dict(),
            # Observability state rides along (None when telemetry is
            # off / the intake is sync); restore is .get()-tolerant so
            # snapshots predating these keys still load.
            "telemetry": engine.telemetry.state_dict(),
            "intake_stats": (
                None
                if self._ingest is None
                else self._ingest.intake.stats.state_dict()
            ),
        }

        scheduler = engine.scheduler
        caches = {"campaign": engine.cache.state_dict()}
        if scheduler is None:
            ledger = {"mode": "unstarted"}
        elif isinstance(scheduler, ShardedScheduler):
            state = scheduler.state_dict()
            ledger = {
                "mode": "sharded",
                "allocator": state["allocator"],
                "migrations": state["migrations"],
            }
            for shard_state in state["shards"]:
                ledger[f"shard:{shard_state['shard_id']}"] = shard_state
            for shard in scheduler.shards:
                caches[f"shard:{shard.shard_id}"] = shard.cache.state_dict()
        else:
            ledger = {"mode": "single", "scheduler": scheduler.state_dict()}

        return {
            "version": SNAPSHOT_VERSION,
            "campaign": campaign_section,
            "workers": engine.registry.worker_rows(),
            "votes": engine.registry.answers.vote_rows(),
            "ledger": ledger,
            "caches": caches,
        }

    def _restore(self, snapshot: dict) -> None:
        section = snapshot["campaign"]
        config = _apply_env_overrides(
            CampaignConfig.from_dict(section["config"])
        )
        registry = WorkerRegistry.from_rows(
            snapshot["workers"],
            snapshot["votes"],
            section["reestimations"],
        )
        engine = _build_engine(registry.original_pool(), config)
        engine.registry = registry
        engine.cache.load_state(snapshot["caches"]["campaign"])
        engine._clock = float(section["clock"])
        expected = section["expected_tasks"]
        engine._expected_tasks = None if expected is None else int(expected)
        engine._finished = bool(section["finished"])
        engine._task_ids = set(section["task_ids"])
        engine._batch = [
            EngineTask.from_state(t) for t in section["batch"]
        ]
        engine._deferred = [
            EngineTask.from_state(t) for t in section["deferred"]
        ]
        engine._queue = EventQueue.from_state(section["queue"])
        engine._rng.bit_generator.state = section["rng"]
        engine.metrics = EngineMetrics.from_state(section["metrics"])
        engine._ran = True  # the facade owns the loop from here on
        engine._active = {}
        for rt_state in section["active"]:
            task = EngineTask.from_state(rt_state["task"])
            jury = Jury(
                Worker(wid, float(q), float(c))
                for wid, q, c in rt_state["jury"]
            )
            scored = rt_state["scored_truth"]
            runtime = _TaskRuntime(
                task=task,
                assignment=Assignment(
                    task,
                    jury,
                    float(rt_state["predicted_jq"]),
                    float(rt_state["reserved_cost"]),
                ),
                session=OnlineDecisionSession.from_state(
                    rt_state["session"]
                ),
                sim_truth=int(rt_state["sim_truth"]),
                scored_truth=None if scored is None else int(scored),
                pending_workers=list(rt_state["pending_workers"]),
                done=bool(rt_state["done"]),
            )
            engine._active[task.task_id] = runtime
        if engine.offers is not None:
            # The offer book is derived state: every live task's
            # not-yet-voted seats are exactly its open offers.  Rebuild
            # in snapshot order so resumed fleets see a deterministic
            # book.
            for runtime in engine._active.values():
                if not runtime.done and runtime.pending_workers:
                    engine.offers.publish(
                        runtime.task.task_id,
                        runtime.pending_workers,
                        prior=runtime.task.prior,
                    )

        ledger = snapshot["ledger"]
        if ledger["mode"] != "unstarted":
            engine._start()  # honors the restored _expected_tasks
            if ledger["mode"] == "single":
                engine.scheduler.load_state(ledger["scheduler"])
            else:
                engine.scheduler.load_state(
                    {
                        "allocator": ledger["allocator"],
                        "migrations": ledger["migrations"],
                        "shards": [
                            ledger[f"shard:{k}"]
                            for k in range(config.num_shards)
                        ],
                    }
                )
                for shard in engine.scheduler.shards:
                    shard.cache.load_state(
                        snapshot["caches"][f"shard:{shard.shard_id}"]
                    )
                # load_state pushed scheduler state before the caches
                # above were restored; push again so the shard worker
                # processes hold the full checkpoint.
                engine.scheduler.push_worker_state()
        engine.telemetry.load_state(section.get("telemetry"))
        self._config = config
        self._engine = engine
        engine._checkpoint_hook = self.checkpoint
        self._attach_ingest()
        self._attach_coordinator()
        intake_state = section.get("intake_stats")
        if self._ingest is not None and intake_state:
            # The intake queue is rebuilt fresh; the counters are not —
            # a resumed campaign's intake totals keep accumulating
            # instead of silently resetting to zero.
            self._ingest.intake.stats = IngestStats.from_state(intake_state)
