"""Campaign observability: throughput, accuracy, spend, cache stats.

A serving layer is only trustworthy if its promises are measurable.
:class:`EngineMetrics` accumulates per-task records as the event loop
runs and renders one report answering the questions a campaign
operator actually asks:

* **throughput** — tasks completed per wall-clock second;
* **realized accuracy vs predicted JQ** — does the frontier's promise
  (mean predicted JQ at assignment time) match the fraction of tasks
  answered correctly?  (The Figure-10(d) validation, now continuous.)
* **spend** — gross reservations, refunds from early stops, and net
  spend against the campaign budget;
* **cache** — hit rate and entry count of the shared JQ cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Mapping

import numpy as np

from .cache import CacheStats


@dataclass(frozen=True)
class ShardSnapshot:
    """End-of-run summary of one shard (sharded engine only)."""

    shard_id: int
    workers: int
    admitted: int
    unfunded: int
    deferred: int
    substitutions: int
    reserved: float
    migrations_in: int
    migrations_out: int
    cache: CacheStats
    # Added with the telemetry subsystem; defaults keep snapshots taken
    # before these fields existed loadable.
    seats: int = 0
    capacity: int = 0
    granted: float = 0.0

    def render(self) -> str:
        return (
            f"shard {self.shard_id}: {self.workers} workers, "
            f"seats {self.seats}/{self.capacity}, "
            f"{self.admitted} admitted ({self.unfunded} unfunded, "
            f"{self.deferred} deferrals, {self.substitutions} subs), "
            f"granted {self.granted:.4g}, reserved {self.reserved:.4g}, "
            f"migrations +{self.migrations_in}/-{self.migrations_out}, "
            f"cache {self.cache.hit_rate:.0%} hit"
        )


@dataclass(frozen=True)
class AllocatorSnapshot:
    """End-of-run ledger of the top-level budget allocator."""

    budget: float
    entitled: float
    granted: float
    reserved: float
    refunded: float
    reabsorbed: float
    rounds: int

    def render(self) -> str:
        return (
            f"allocator: {self.rounds} rounds, "
            f"granted {self.granted:.4g}, reserved {self.reserved:.4g}, "
            f"re-absorbed {self.reabsorbed:.4g} unspent "
            f"+ {self.refunded:.4g} refunds"
        )


@dataclass(frozen=True)
class TaskRecord:
    """Outcome of one completed task."""

    task_id: str
    answer: int
    confidence: float
    predicted_jq: float
    reserved_cost: float
    spent_cost: float
    votes_used: int
    reason: str  # "all-votes" | "early-stop" | "unfunded"
    correct: bool | None  # None when ground truth is unknown

    @property
    def refund(self) -> float:
        return self.reserved_cost - self.spent_cost


@dataclass
class EngineMetrics:
    """Mutable accumulator the engine feeds while running."""

    records: list[TaskRecord] = field(default_factory=list)
    submitted: int = 0
    votes_cast: int = 0
    votes_cancelled: int = 0
    wall_seconds: float = 0.0
    peak_worker_load: int = 0
    cache_stats: CacheStats | None = None
    reestimations: int = 0
    quality_estimation_error: float | None = None
    shard_snapshots: tuple[ShardSnapshot, ...] | None = None
    allocator_snapshot: AllocatorSnapshot | None = None
    # Async-intake totals (an IngestStats.state_dict() dict), folded in
    # when the campaign serves through an IntakeQueue.  Render-only —
    # wall-clock-tinged (blocked time), so the fingerprint excludes it.
    intake_stats: dict | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_task(self, record: TaskRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def early_stopped(self) -> int:
        return sum(1 for r in self.records if r.reason == "early-stop")

    @property
    def unfunded(self) -> int:
        return sum(1 for r in self.records if r.reason == "unfunded")

    @property
    def total_spend(self) -> float:
        """Net spend: what the campaign actually paid workers."""
        return float(sum(r.spent_cost for r in self.records))

    @property
    def total_refunded(self) -> float:
        return float(sum(r.refund for r in self.records))

    @property
    def throughput(self) -> float:
        """Completed tasks per wall-clock second (0 before any run)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def mean_predicted_jq(self) -> float | None:
        funded = [r.predicted_jq for r in self.records if r.reason != "unfunded"]
        if not funded:
            return None
        return float(np.mean(funded))

    @property
    def realized_accuracy(self) -> float | None:
        """Fraction correct among scored (truth-known, funded) tasks."""
        scored = [
            r.correct
            for r in self.records
            if r.correct is not None and r.reason != "unfunded"
        ]
        if not scored:
            return None
        return float(np.mean(scored))

    @property
    def mean_votes_per_task(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.votes_used for r in self.records]))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything the fingerprint covers plus the render-only
        snapshot fields (so a resumed *finished* campaign still renders
        its full report)."""
        return {
            "records": [asdict(r) for r in self.records],
            "submitted": self.submitted,
            "votes_cast": self.votes_cast,
            "votes_cancelled": self.votes_cancelled,
            "wall_seconds": self.wall_seconds,
            "peak_worker_load": self.peak_worker_load,
            "reestimations": self.reestimations,
            "quality_estimation_error": self.quality_estimation_error,
            "cache_stats": (
                None if self.cache_stats is None else asdict(self.cache_stats)
            ),
            "shard_snapshots": (
                None
                if self.shard_snapshots is None
                else [asdict(s) for s in self.shard_snapshots]
            ),
            "allocator_snapshot": (
                None
                if self.allocator_snapshot is None
                else asdict(self.allocator_snapshot)
            ),
            "intake_stats": self.intake_stats,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "EngineMetrics":
        metrics = cls()
        for record in state["records"]:
            metrics.records.append(TaskRecord(**record))
        metrics.submitted = int(state["submitted"])
        metrics.votes_cast = int(state["votes_cast"])
        metrics.votes_cancelled = int(state["votes_cancelled"])
        metrics.wall_seconds = float(state["wall_seconds"])
        metrics.peak_worker_load = int(state["peak_worker_load"])
        metrics.reestimations = int(state["reestimations"])
        qerr = state["quality_estimation_error"]
        metrics.quality_estimation_error = None if qerr is None else float(qerr)
        if state["cache_stats"] is not None:
            metrics.cache_stats = CacheStats(**state["cache_stats"])
        if state["shard_snapshots"] is not None:
            metrics.shard_snapshots = tuple(
                ShardSnapshot(**{**s, "cache": CacheStats(**s["cache"])})
                for s in state["shard_snapshots"]
            )
        if state["allocator_snapshot"] is not None:
            metrics.allocator_snapshot = AllocatorSnapshot(
                **state["allocator_snapshot"]
            )
        metrics.intake_stats = state.get("intake_stats")
        return metrics

    # ------------------------------------------------------------------
    # Replay identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Deterministic digest of everything a replay must reproduce.

        Covers every task record (full float precision) and the
        campaign counters, and deliberately excludes wall-clock-derived
        values (``wall_seconds``, throughput) and the shard/allocator
        snapshots — so two runs of the same seeded campaign, or a
        single-shard run vs. the plain engine, compare byte-identical
        exactly when their *decisions* were identical.
        """
        lines = [
            f"{r.task_id}|{r.answer}|{r.confidence!r}|{r.predicted_jq!r}"
            f"|{r.reserved_cost!r}|{r.spent_cost!r}|{r.votes_used}"
            f"|{r.reason}|{r.correct}"
            for r in self.records
        ]
        lines.append(
            f"submitted={self.submitted}|votes={self.votes_cast}"
            f"|cancelled={self.votes_cancelled}"
            f"|peak={self.peak_worker_load}"
            f"|reestimations={self.reestimations}"
            f"|qerr={self.quality_estimation_error!r}"
        )
        if self.cache_stats is not None:
            lines.append(
                f"cache={self.cache_stats.hits}/{self.cache_stats.misses}"
                f"/{self.cache_stats.entries}"
            )
        digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def render(self, budget: float | None = None) -> str:
        def pct(x: float | None) -> str:
            return "n/a" if x is None else f"{x:.2%}"

        lines = [
            "Campaign engine report",
            "----------------------",
            f"tasks        : {self.completed}/{self.submitted} completed "
            f"({self.early_stopped} early-stopped, {self.unfunded} unfunded)",
            f"votes        : {self.votes_cast} cast, "
            f"{self.votes_cancelled} cancelled by early stop "
            f"({self.mean_votes_per_task:.2f}/task)",
            f"throughput   : {self.throughput:,.0f} tasks/s "
            f"({self.wall_seconds:.3f}s wall)",
            f"accuracy     : realized {pct(self.realized_accuracy)} "
            f"vs predicted JQ {pct(self.mean_predicted_jq)}",
        ]
        spend_line = (
            f"spend        : {self.total_spend:.4g} net "
            f"(refunded {self.total_refunded:.4g})"
        )
        if budget is not None:
            spend_line += f" / budget {budget:g}"
        lines.append(spend_line)
        lines.append(f"peak load    : {self.peak_worker_load} concurrent seats")
        if self.reestimations:
            err = self.quality_estimation_error
            err_txt = "n/a" if err is None else f"{err:.4f}"
            lines.append(
                f"re-estimation: {self.reestimations} passes, "
                f"mean |q_est - q_true| = {err_txt}"
            )
        if self.cache_stats is not None:
            lines.append(f"cache        : {self.cache_stats.render()}")
        if self.intake_stats:
            stats = self.intake_stats
            lines.append(
                f"intake       : {stats.get('submitted', 0)} submitted, "
                f"{stats.get('drained', 0)} drained in "
                f"{stats.get('drains', 0)} drains "
                f"(peak {stats.get('peak_pending', 0)} pending, "
                f"{stats.get('overflows', 0)} overflows, "
                f"{stats.get('blocked_submits', 0)} blocked)"
            )
        if self.allocator_snapshot is not None:
            lines.append(f"sharding     : {self.allocator_snapshot.render()}")
        if self.shard_snapshots:
            for snapshot in self.shard_snapshots:
                lines.append(f"  {snapshot.render()}")
        return "\n".join(lines)
