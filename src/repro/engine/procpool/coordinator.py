"""Cross-process seat coordination: leases over a shared SQLite file.

One engine process enforcing worker capacity in memory is easy; N
``repro serve`` processes sharing one worker pool is the DB-nets
problem — concurrent transitions (jury seatings) consuming and
producing rows (seats) in one relational store, where the store's
transactional guarantees *are* the conservation law.  The
:class:`LeaseCoordinator` is the thin engine-side client for the lease
tables :class:`~repro.engine.backends.SQLiteBackend` carries:

* **seat leases** — one row per occupied ``(worker, task)`` seat, with
  an owner, an expiry, and the owner's registration *epoch*.  Acquire
  is atomic check-then-insert inside one immediate transaction: purge
  expired rows, count the worker's live seats against capacity, insert.
  Two engines racing one remaining seat serialize on the database —
  exactly one wins.
* **expiry** — a crashed engine's leases outlive it only until their
  TTL passes; the next acquire (or an explicit reap) reclaims the
  seats, so capacity lost to a SIGKILL mid-admit returns to the pool
  without operator surgery.
* **epoch fencing** — every (re)registration of an owner bumps its
  epoch, and lease operations carry the epoch they were issued under.
  A process that lost its registration (crashed and restarted, or
  deposed by an operator re-registering the same owner id) holds a
  stale epoch and is rejected with
  :class:`~repro.engine.backends.StaleEpochError` instead of silently
  double-seating against its zombie leases.

Attach a coordinator to an engine's registry
(:meth:`~repro.engine.state.WorkerRegistry.attach_lease_coordinator`,
wired by ``CampaignConfig(coordinate_path=...)``) and every local seat
assignment acquires the shared lease first; a denial surfaces as
:class:`~repro.engine.state.CapacityError`, which the scheduler treats
exactly like a locally saturated worker — substitute or defer.
"""

from __future__ import annotations

import os
import socket
import threading

from ..backends import BackendError, SQLiteBackend


def default_owner() -> str:
    """A per-process owner id: host + pid is unique among live engines
    sharing one coordination file."""
    return f"{socket.gethostname()}:{os.getpid()}"


class LeaseCoordinator:
    """One engine process's handle on the shared seat-lease store.

    Parameters
    ----------
    path:
        The shared coordination database (a
        :class:`~repro.engine.backends.SQLiteBackend` file, typically
        *separate* from each engine's checkpoint backend so per-engine
        snapshots never clobber the shared state).  An existing
        ``SQLiteBackend`` may be passed instead of a path.
    ttl:
        Lease lifetime in seconds.  Live engines renew well inside it
        (``Campaign.serve`` renews at ``ttl / 3``); a crashed engine's
        seats return to the pool once it passes.
    owner:
        Stable identity for this engine process (default: host:pid).
    """

    def __init__(self, path, ttl: float = 30.0, owner: str | None = None):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        if isinstance(path, SQLiteBackend):
            self.backend = path
            self._owns_backend = False
        else:
            self.backend = SQLiteBackend(path)
            self._owns_backend = True
        self.ttl = float(ttl)
        self.owner = owner or default_owner()
        # Registration fences earlier incarnations of this owner id.
        self.epoch = self.backend.register_engine(self.owner)
        # Serialize this process's lease traffic: the registry calls in
        # from striped seat locks (and serve() renews from the loop
        # thread), but the backend holds a single SQLite connection.
        self._mutex = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # The seat surface the registry drives
    # ------------------------------------------------------------------
    def acquire(self, worker_id: str, task_id: str, capacity: int) -> bool:
        """Try to lease one seat; ``False`` when the worker's shared
        seat count is already at capacity (someone else got there)."""
        with self._mutex:
            return self.backend.acquire_lease(
                worker_id,
                task_id,
                owner=self.owner,
                epoch=self.epoch,
                ttl=self.ttl,
                capacity=capacity,
            )

    def release(self, worker_id: str, task_id: str) -> None:
        """Release this engine's lease on a seat (idempotent).  Scoped
        to this incarnation's epoch: a deposed zombie cannot delete a
        seat its successor re-acquired."""
        with self._mutex:
            self.backend.release_lease(
                worker_id, task_id, owner=self.owner, epoch=self.epoch
            )

    def renew(self) -> int:
        """Extend every lease this engine holds by one TTL; returns the
        number renewed.  Raises ``StaleEpochError`` once deposed."""
        with self._mutex:
            return self.backend.renew_leases(
                self.owner, epoch=self.epoch, ttl=self.ttl
            )

    def shared_load(self, worker_id: str) -> int:
        """The worker's live (unexpired) seat count across all engines."""
        with self._mutex:
            return self.backend.count_leases(worker_id)

    def update_shared_ledger(self, scope: str, update, retries: int = 16):
        """Read-modify-CAS one shared ledger scope.

        ``update`` maps the current value (``None`` when the scope does
        not exist yet) to the new value.  Lost races re-read and retry —
        the optimistic-concurrency loop over the ledger's version
        column that lets N engines keep one cross-process conservation
        ledger (e.g. total granted/reserved) without a held lock.
        Returns the value that was written.
        """
        for _ in range(retries):
            with self._mutex:
                row = self.backend.read_ledger(scope)
                if row is None:
                    value = update(None)
                    if self.backend.cas_ledger(scope, value):
                        return value
                else:
                    current, version = row
                    value = update(current)
                    if self.backend.cas_ledger(
                        scope, value, expected_version=version
                    ):
                        return value
        raise BackendError(
            f"ledger scope {scope!r} CAS lost {retries} races in a row"
        )

    def release_all(self) -> int:
        """Drop every lease this incarnation holds (graceful shutdown);
        returns the number released."""
        with self._mutex:
            return self.backend.release_owner(self.owner, epoch=self.epoch)

    def close(self, release: bool = True) -> None:
        """Release held seats (unless ``release=False`` — e.g. tests
        simulating a crash) and close the backend if we opened it."""
        if self._closed:
            return
        self._closed = True
        if release:
            try:
                self.release_all()
            except Exception:  # pragma: no cover - best-effort shutdown
                pass
        if self._owns_backend:
            self.backend.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeaseCoordinator(owner={self.owner!r}, epoch={self.epoch}, "
            f"ttl={self.ttl:g}s)"
        )
