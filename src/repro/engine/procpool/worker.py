"""Worker-process side of the process-pool shard dispatcher.

Each shard worker process owns a *real* serving stack for its shard — a
:class:`~repro.engine.scheduler.CampaignScheduler` over a
:class:`~repro.engine.cache.JQCache` — driven against a
:class:`ShadowRegistry`: a picklable replica of the
:class:`~repro.engine.sharding.ShardRegistryView` surface the scheduler
consumes (``available_pool`` / ``states`` / ``worker`` /
``free_capacity`` / ``assign``), rebuilt from the parent's member rows
at the start of every round.

The split of authority is what keeps process dispatch byte-identical to
sequential dispatch:

* the **parent** owns the global registry (seats, releases, quality
  re-estimation, peak load) and ships each round's membership-filtered
  worker rows down in :class:`ShardWorkState`;
* the **worker** owns the shard's scheduler and cache *between* rounds
  — frontier memos, reservation ledger, stats, and every cache counter
  evolve in the worker exactly as they would inline, because the very
  same scheduler code runs over the very same member view;
* decisions flow back as plain ids and costs; the parent replays the
  seat assignments through the real registry view in shard-id order.

The pipe protocol (one request, one response, in order)::

    ("init", params)                  -> ("ok", pid)
    ("admit", ShardWorkState)         -> ("ok", AdmitResult)
    ("pull",)                         -> ("ok", (scheduler_state, cache_state))
    ("load", scheduler_state, cache_state) -> ("ok", None)
    ("warm", entries)                 -> ("ok", imported_count)
    ("stop",)                         -> (worker exits)

Errors are returned as ``("error", traceback_text, reserved_delta)`` —
the reservation delta lets the parent repair the allocator ledger
(``granted == reserved + reabsorbed``) even for a round that died
half-seated.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field

from ..cache import JQCache
from ..events import EngineTask
from ..scheduler import CampaignScheduler
from ..state import CapacityError, WorkerState
from ...core.worker import Worker, WorkerPool

#: Scheduler/cache construction parameters a shard worker needs; the
#: parent derives them from its ``EngineConfig`` once at pool start.
SCHEDULER_PARAMS = (
    "budget",
    "expected_tasks",
    "frontier_pool_size",
    "jq_kernel",
    "alpha",
    "num_buckets",
    "quantization",
    "cache_max_entries",
)


@dataclass
class ShardWorkState:
    """One round's work unit for one shard worker — fully picklable.

    ``member_rows`` carries the shard's membership in *global registry
    order* (the order every deterministic downstream ranking keys on):
    one ``(worker_id, est_quality, cost, capacity, active_task_ids)``
    tuple per member, reflecting seats and quality drift up to this
    round.  ``task_states`` is the routed sub-batch
    (:meth:`EngineTask.state_dict` rows, order preserved) and ``grant``
    the shard's allocator grant for the round.
    """

    shard_id: int
    member_rows: list = field(default_factory=list)
    task_states: list = field(default_factory=list)
    grant: float = 0.0


@dataclass
class AdmitResult:
    """A shard worker's decisions for one round, as plain data.

    ``assignments`` rows are ``(task_id, seated_worker_ids, predicted_jq,
    reserved_cost)`` in admission order (empty id list = unfunded);
    ``deferred`` is the deferred task ids in order; ``reserved`` the
    round's total reservation (what the parent settles against the
    shard's grant).
    """

    shard_id: int
    assignments: list = field(default_factory=list)
    deferred: list = field(default_factory=list)
    reserved: float = 0.0


class ShadowRegistry:
    """The shard-membership registry surface, rebuilt per round.

    Replicates exactly what :class:`CampaignScheduler` reads from a
    :class:`~repro.engine.sharding.ShardRegistryView`: member states in
    global registry order, the available pool, per-worker free capacity,
    and check-then-seat ``assign``.  Seat mutations made while admitting
    a round live only until the next :meth:`sync` — the parent registry
    is the durable source of truth.
    """

    def __init__(self) -> None:
        self._states: dict[str, WorkerState] = {}

    def sync(self, member_rows) -> None:
        """Replace the membership with this round's rows (global order)."""
        states: dict[str, WorkerState] = {}
        for worker_id, est_quality, cost, capacity, active in member_rows:
            states[worker_id] = WorkerState(
                worker=Worker(worker_id, float(est_quality), float(cost)),
                true_quality=float(est_quality),
                capacity=int(capacity),
                active_tasks=set(active),
            )
        self._states = states

    # -- the registry surface the scheduler consumes -------------------
    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._states

    @property
    def states(self) -> tuple[WorkerState, ...]:
        return tuple(self._states.values())

    def available_pool(self, exclude=()) -> WorkerPool:
        excluded = set(exclude)
        return WorkerPool(
            s.worker
            for s in self._states.values()
            if s.free_capacity > 0 and s.worker.worker_id not in excluded
        )

    def worker(self, worker_id: str) -> Worker:
        return self._states[worker_id].worker

    def free_capacity(self, worker_id: str) -> int:
        state = self._states.get(worker_id)
        return 0 if state is None else state.free_capacity

    def assign(self, worker_id: str, task_id: str) -> None:
        state = self._states[worker_id]
        if task_id in state.active_tasks:
            raise ValueError(
                f"worker {worker_id!r} already assigned to task {task_id!r}"
            )
        if state.free_capacity <= 0:
            raise CapacityError(
                f"worker {worker_id!r} is at capacity "
                f"({state.load}/{state.capacity})"
            )
        state.active_tasks.add(task_id)


def build_shard_scheduler(shard_id: int, params: dict):
    """Construct a shard's (shadow registry, cache, scheduler) triple
    from the pool's construction parameters.  Shared by the worker
    process and the pool's tests."""
    registry = ShadowRegistry()
    cache = JQCache(
        alpha=params["alpha"],
        num_buckets=params["num_buckets"],
        quantization=params["quantization"],
        max_entries=params["cache_max_entries"],
    )
    scheduler = CampaignScheduler(
        registry,
        cache,
        budget=params["budget"],
        expected_tasks=params["expected_tasks"],
        frontier_pool_size=params["frontier_pool_size"],
        jq_kernel=params["jq_kernel"],
        shard_id=shard_id,
    )
    return registry, cache, scheduler


def admit_work(registry, scheduler, work: ShardWorkState) -> AdmitResult:
    """Run one round on a shard's scheduler and flatten the decisions.

    Kept free of any process machinery so the dispatch tests can drive
    the exact worker-side round logic in-process.
    """
    registry.sync(work.member_rows)
    tasks = [EngineTask.from_state(t) for t in work.task_states]
    before = scheduler.reserved
    assignments, deferred = scheduler.admit(tasks, batch_budget=work.grant)
    return AdmitResult(
        shard_id=work.shard_id,
        assignments=[
            (
                a.task.task_id,
                [w.worker_id for w in a.jury.workers],
                a.predicted_jq,
                a.reserved_cost,
            )
            for a in assignments
        ],
        deferred=[t.task_id for t in deferred],
        reserved=scheduler.reserved - before,
    )


def shard_worker_main(conn, shard_id: int) -> None:
    """The shard worker process's request loop (one pipe, one shard).

    Runs until ``("stop",)`` or until the pipe breaks (parent died —
    exit quietly rather than orphan).  Every request is answered; the
    parent matches responses to requests positionally.
    """
    registry = cache = scheduler = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        reserved_before = 0.0 if scheduler is None else scheduler.reserved
        if op == "stop":
            break
        try:
            if op == "init":
                registry, cache, scheduler = build_shard_scheduler(
                    shard_id, message[1]
                )
                conn.send(("ok", os.getpid()))
            elif op == "admit":
                conn.send(("ok", admit_work(registry, scheduler, message[1])))
            elif op == "pull":
                conn.send(
                    ("ok", (scheduler.state_dict(), cache.state_dict()))
                )
            elif op == "load":
                scheduler.load_state(message[1])
                cache.load_state(message[2])
                conn.send(("ok", None))
            elif op == "warm":
                conn.send(("ok", cache.warm(message[1])))
            else:
                conn.send(("error", f"unknown op {op!r}", 0.0))
        except BaseException:
            delta = 0.0
            if op == "admit" and scheduler is not None:
                # A half-seated round still reserved budget; report the
                # delta so the parent can settle the grant correctly.
                delta = max(scheduler.reserved - reserved_before, 0.0)
            try:
                conn.send(("error", traceback.format_exc(), delta))
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:
        pass
