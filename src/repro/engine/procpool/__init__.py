"""Multi-process campaign pools: process-pool shard dispatch + leases.

Every "parallel" path below this package runs threads under one GIL.
The shard frontier walk — candidate ranking, envelope DP, substitution
— is pure Python/numpy over small arrays, so threaded dispatch
serializes exactly where the work is.  This package breaks that limit
with two cooperating halves:

* :class:`ShardProcessPool` (this module + :mod:`.worker`) — one
  persistent worker **process** per shard, each owning the shard's real
  scheduler and JQ cache over a synced shadow of the shard's registry
  view.  The parent routes and grants exactly as before, ships each
  round's :class:`~repro.engine.procpool.worker.ShardWorkState` down a
  pipe, and replays the returned decisions through the real registry in
  shard-id order — so ``dispatch="processes"`` is fingerprint-
  byte-identical to ``"threads"`` and sequential dispatch while the
  envelope walks genuinely parallelize.
* :class:`~repro.engine.procpool.coordinator.LeaseCoordinator` — seat
  leases with expiry and epoch fencing in the shared
  :class:`~repro.engine.backends.SQLiteBackend`, so N ``repro serve``
  engine *processes* can serve one worker pool without double-seating
  (the DB-nets shape: transitions consuming and producing rows in one
  relational store).

Pool protocol and determinism notes live in :mod:`.worker`.
"""

from __future__ import annotations

import multiprocessing as mp
import os

from ..telemetry import NULL_TELEMETRY
from .coordinator import LeaseCoordinator
from .worker import (
    SCHEDULER_PARAMS,
    AdmitResult,
    ShadowRegistry,
    ShardWorkState,
    admit_work,
    build_shard_scheduler,
    shard_worker_main,
)

__all__ = [
    "AdmitResult",
    "LeaseCoordinator",
    "ProcPoolError",
    "SCHEDULER_PARAMS",
    "ShadowRegistry",
    "ShardProcessPool",
    "ShardWorkState",
    "admit_work",
    "build_shard_scheduler",
    "shard_worker_main",
]

#: How long ``close()`` waits for a worker to exit before terminating it.
_JOIN_TIMEOUT = 5.0


class ProcPoolError(RuntimeError):
    """A shard worker process failed or died mid-round."""


def _pool_context():
    """``fork`` where available (cheap, inherits the loaded modules),
    ``spawn`` elsewhere."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


class ShardProcessPool:
    """One sticky worker process per shard, speaking the pipe protocol.

    The pool is deliberately *not* a task queue: shard ``k``'s rounds
    always run on shard ``k``'s process, because that process holds the
    shard's live scheduler state (frontier memo, reservation ledger,
    cache) between rounds.  Affinity is what makes worker-side state —
    and therefore every cache counter in the metrics fingerprint —
    evolve exactly as inline dispatch would.

    Parameters
    ----------
    num_shards:
        Worker processes to spawn (one per shard).
    params:
        Scheduler/cache construction parameters (see
        :data:`~repro.engine.procpool.worker.SCHEDULER_PARAMS`).
    telemetry:
        Parent-side observability hub; dispatch rounds report spans and
        per-process (``shard``/``pid``-labelled) counters here.  The
        worker processes themselves run without telemetry — observation
        stays in one process, decisions stay identical.
    """

    def __init__(self, num_shards: int, params: dict, telemetry=NULL_TELEMETRY):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        missing = [k for k in SCHEDULER_PARAMS if k not in params]
        if missing:
            raise ValueError(f"params is missing {missing}")
        self.telemetry = telemetry
        self._ctx = _pool_context()
        self._procs: list = []
        self._pipes: list = []
        self.pids: list[int] = []
        self._broken = False
        try:
            for shard_id in range(num_shards):
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=shard_worker_main,
                    args=(child_conn, shard_id),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._pipes.append(parent_conn)
            for shard_id in range(num_shards):
                pid = self._request(shard_id, ("init", dict(params)))
                self.pids.append(pid)
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return len(self._procs)

    @property
    def broken(self) -> bool:
        """True once a worker died mid-request; the pool is unusable."""
        return self._broken

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _send(self, shard_id: int, message) -> None:
        if self._broken:
            raise ProcPoolError("shard process pool is broken")
        try:
            self._pipes[shard_id].send(message)
        except (BrokenPipeError, OSError) as exc:
            self._broken = True
            raise ProcPoolError(
                f"shard {shard_id} worker is gone ({exc})"
            ) from exc

    def _recv(self, shard_id: int):
        try:
            response = self._pipes[shard_id].recv()
        except (EOFError, OSError) as exc:
            self._broken = True
            raise ProcPoolError(
                f"shard {shard_id} worker died mid-request"
            ) from exc
        if response[0] == "error":
            raise ProcPoolError(
                f"shard {shard_id} worker failed:\n{response[1]}"
            )
        return response[1]

    def _request(self, shard_id: int, message):
        self._send(shard_id, message)
        return self._recv(shard_id)

    # ------------------------------------------------------------------
    # The dispatch surface
    # ------------------------------------------------------------------
    def admit_round(
        self, work_states: list[ShardWorkState]
    ) -> list[AdmitResult]:
        """Dispatch one round's shard work units concurrently.

        All requests are written before the first response is read, so
        the shard processes compute in parallel; responses are collected
        — and must be consumed — in the given (shard-id) order.  A
        worker error surfaces as :class:`ProcPoolError` *after* every
        surviving shard's response has been read, carrying each shard's
        reservation delta so the caller can settle the allocator ledger
        for the whole round (``errors`` maps shard id -> reserved
        delta on the exception's ``partial_reserved`` attribute).
        """
        for work in work_states:
            self._send(work.shard_id, ("admit", work))
        results: list[AdmitResult] = []
        failures: list[str] = []
        partial: dict[int, float] = {}
        for work in work_states:
            try:
                response = self._pipes[work.shard_id].recv()
            except (EOFError, OSError):
                self._broken = True
                failures.append(f"shard {work.shard_id} worker died mid-admit")
                partial[work.shard_id] = 0.0
                continue
            if response[0] == "error":
                failures.append(
                    f"shard {work.shard_id} worker failed:\n{response[1]}"
                )
                partial[work.shard_id] = float(response[2])
                continue
            results.append(response[1])
        if failures:
            error = ProcPoolError("; ".join(failures))
            error.partial_reserved = partial
            error.results = results
            raise error
        return results

    def pull(self, shard_ids) -> dict[int, tuple]:
        """Fetch ``(scheduler_state, cache_state)`` from each shard
        worker (requests pipelined, responses in order)."""
        shard_ids = list(shard_ids)
        for shard_id in shard_ids:
            self._send(shard_id, ("pull",))
        return {shard_id: self._recv(shard_id) for shard_id in shard_ids}

    def push(self, shard_id: int, scheduler_state, cache_state) -> None:
        """Load a full scheduler/cache state into one shard worker
        (checkpoint restore, cache import)."""
        self._request(shard_id, ("load", scheduler_state, cache_state))

    def warm(self, shard_id: int, entries) -> int:
        """Warm one shard worker's cache with exported entries."""
        return int(self._request(shard_id, ("warm", entries)))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker (idempotent).  Workers exit on ``stop`` —
        or on the pipe closing — and are terminated if they linger."""
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT)
        self._pipes = []
        self._procs = []
        self._broken = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "broken" if self._broken else f"{len(self._procs)} workers"
        return f"ShardProcessPool({state}, pid={os.getpid()})"
