"""Capacity-aware batch scheduling of campaign tasks.

The scheduler turns "a batch of tasks just arrived" into concrete jury
assignments, under two global constraints the one-shot library never
had to enforce:

* **campaign budget** — total reserved spend across all tasks (minus
  refunds from early-stopped tasks) never exceeds the campaign budget;
* **worker capacity** — a worker sits on at most ``capacity``
  concurrent juries, so one high-quality worker cannot be placed on
  10,000 tasks at once.

Mechanics per batch:

1. rank the registry's *available* workers by marginal information per
   dollar (``phi(q) / cost``, the Lemma-2 ordering) and keep the top
   ``frontier_pool_size`` as the batch's candidate pool;
2. build that pool's exact cost-JQ frontier through the shared
   :class:`~repro.engine.cache.JQCache` (batch after batch re-evaluates
   the same juries — this is where the cache earns its keep);
3. split the batch's budget share across tasks with the existing
   concave-envelope greedy (:func:`repro.portfolio.allocate_budget`);
4. materialize each funded allocation into an actual jury, substituting
   same-or-cheaper available workers for any member who saturated while
   earlier tasks in the batch were being seated.  Tasks that cannot be
   seated at all are *deferred* back to the engine for the next batch.

Budget pacing: admitting a batch grows the campaign's cumulative
*entitlement* by the batch's pro-rata share
``budget * batch_size / expected_tasks``; a batch may reserve up to the
entitlement not yet spent — so early arrivals cannot starve the rest of
the campaign, while unspent shares and early-stop refunds carry over to
later batches instead of being forfeited.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..core.jury import Jury
from ..core.worker import WorkerPool
from ..frontier import Frontier, FrontierPoint, exact_frontier
from ..portfolio import allocate_budget
from .cache import CachedJQObjective, JQCache
from .events import EngineTask
from .state import (
    CapacityError,
    WorkerRegistry,
    informativeness,
    informativeness_key,
)
from .telemetry import NULL_TELEMETRY


#: Upper bound on ``frontier_pool_size``.  The streamed lattice sweep
#: (:func:`repro.quality.stream.streamed_frontier_jq`) keeps frontier
#: builds memory-bounded past ``ALL_SUBSETS_MAX``, so the cap is set by
#: per-batch runtime (``2^k - 1`` juries are still scored on a memo
#: miss), not by the dense kernel's memory wall that used to pin it
#: at 12.
MAX_FRONTIER_POOL = 20

#: Exact frontiers over a 10-worker pool can carry hundreds of points;
#: the budget-split greedy walks every envelope step of every task, so
#: allocation uses a thinned frontier of at most this many points.
MAX_ALLOCATION_POINTS = 24

#: Distinct candidate-pool configurations the frontier memo holds; at
#: the bound the least-recently-used configuration is evicted (the
#: JQCache LRU discipline) — a drift backstop, not a tuned working-set
#: size.
MAX_FRONTIER_MEMO = 256


def pro_rata_round_budget(
    budget: float,
    expected_tasks: int,
    entitled: float,
    new_tasks: int,
    reserved: float,
    refunded: float,
) -> tuple[float, float]:
    """The engine's one budget-pacing rule.

    Each *new* task grows the cumulative entitlement by its pro-rata
    share ``budget / expected_tasks`` (capped at the budget); a round
    may spend up to the entitlement not yet (net) reserved, and never
    more than what remains of the budget.  Returns ``(new_entitled,
    round_budget)``.

    Shared verbatim by :meth:`CampaignScheduler.admit` (single-
    scheduler pacing) and the sharded engine's
    :meth:`~repro.engine.sharding.BudgetAllocator.open_round`
    (campaign-wide pacing) — one definition is what keeps the pinned
    single-shard byte-identity structural rather than coincidental.
    """
    share = budget * new_tasks / expected_tasks
    entitled = min(entitled + share, budget)
    net_reserved = reserved - refunded
    remaining = budget - reserved + refunded
    return entitled, min(remaining, max(entitled - net_reserved, 0.0))


def _thin_frontier(frontier: Frontier) -> Frontier:
    """Subsample a frontier for allocation without losing its range.

    Keeps the cheapest and best points and an even spread in between.
    The retained points are the original :class:`FrontierPoint` objects
    (their ``worker_ids`` drive seating), so thinning only coarsens the
    budget split's step resolution, never the juries themselves.
    """
    points = frontier.points
    if len(points) <= MAX_ALLOCATION_POINTS:
        return frontier
    idx = np.unique(
        np.linspace(0, len(points) - 1, MAX_ALLOCATION_POINTS).astype(int)
    )
    return Frontier(tuple(points[i] for i in idx), exact=False)


class SubstituteIndex:
    """Availability-indexed heap of substitution candidates.

    The naive substitute search rescans the whole ranked pool for every
    saturated seat — O(pool) per seat, and the scan's head fills up with
    saturated high-informativeness workers precisely when substitution
    is busiest (the profiled 64-worker bottleneck).  This index keeps
    the same most-informative-first order in a heap and exploits the one
    monotonicity ``admit`` guarantees: within a single batch, seats are
    only ever *taken* (releases happen between batches), so a worker
    observed saturated stays saturated for the rest of the batch and is
    dropped from the heap permanently.  Candidates skipped for other,
    per-query reasons (already on this jury, too expensive for this
    seat) are pushed back.  A companion min-cost heap answers the
    all-too-expensive case — the dropped-seat flood under saturation —
    in O(1) amortized instead of a full scan.

    Pop order equals the sorted order (``informativeness_key`` is
    unique per worker), so the index returns *exactly* the worker the
    linear scan would — :func:`linear_best_substitute` is the reference
    oracle the equivalence tests compare against.
    """

    def __init__(self, states: Iterable) -> None:
        states = list(states)
        self._heap = [(informativeness_key(s.worker), s) for s in states]
        heapq.heapify(self._heap)
        # Companion min-cost heap: under saturation most queries *fail*
        # (every available worker is dearer than the seat's cap), and a
        # failed search is the one that scans everything.  The cheapest
        # available cost only rises within a batch, so peeking it
        # rejects those queries in O(1) amortized.
        self._cost_heap = [
            (s.worker.cost, s.worker.worker_id, s) for s in states
        ]
        heapq.heapify(self._cost_heap)

    def _min_available_cost(self) -> float:
        while self._cost_heap:
            state = self._cost_heap[0][2]
            if state.free_capacity <= 0:
                heapq.heappop(self._cost_heap)  # saturated: gone for good
                continue
            return self._cost_heap[0][0]
        return float("inf")

    def best(self, max_cost: float, exclude: set[str]) -> str | None:
        """Most informative available worker at or under ``max_cost``
        and outside ``exclude`` (``None`` when nobody qualifies)."""
        if self._min_available_cost() > max_cost + 1e-12:
            return None  # nobody affordable, excluded or not
        putback = []
        found = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            state = entry[1]
            if state.free_capacity <= 0:
                continue  # saturated for the rest of this batch: drop
            putback.append(entry)
            worker = state.worker
            if (
                worker.worker_id in exclude
                or worker.cost > max_cost + 1e-12
            ):
                continue  # disqualified for this seat only
            found = worker.worker_id
            break
        for entry in putback:
            heapq.heappush(self._heap, entry)
        return found


def linear_best_substitute(
    ranked_states: Sequence, max_cost: float, exclude: set[str]
) -> str | None:
    """Reference substitute search: first available worker at or under
    ``max_cost`` in a most-informative-first pre-sorted sequence.  This
    is the original O(pool)-per-seat scan, kept as the oracle that
    :class:`SubstituteIndex` must agree with (equivalence is asserted by
    the scheduler tests and the substitution micro-benchmark)."""
    for state in ranked_states:
        worker = state.worker
        if (
            worker.worker_id not in exclude
            and state.free_capacity > 0
            and worker.cost <= max_cost + 1e-12
        ):
            return worker.worker_id
    return None


@dataclass(frozen=True)
class Assignment:
    """The scheduler's decision for one admitted task."""

    task: EngineTask
    jury: Jury  # empty jury = unfunded, answer the prior
    predicted_jq: float
    reserved_cost: float

    @property
    def funded(self) -> bool:
        return self.jury.size > 0


@dataclass
class SchedulerStats:
    """Running counters for observability."""

    batches: int = 0
    admitted: int = 0
    unfunded: int = 0
    deferred: int = 0
    substitutions: int = 0
    dropped_seats: int = 0  # planned jurors lost to capacity with no substitute


class CampaignScheduler:
    """Admits task batches against shared budget and worker capacity.

    Parameters
    ----------
    registry:
        The shared worker state (capacity, load, current quality
        estimates).
    cache:
        The campaign JQ cache; all frontier evaluations go through it.
    budget:
        Total campaign budget across every task that will ever arrive.
    expected_tasks:
        How many tasks the campaign expects in total; sets the pro-rata
        batch budget share.
    frontier_pool_size:
        Size of the per-batch candidate pool (default 10; hard-capped
        at :data:`MAX_FRONTIER_POOL`).  Exact frontiers still score
        ``2^k - 1`` juries, but past ``ALL_SUBSETS_MAX`` the build
        streams the lattice level by level
        (:func:`repro.quality.stream.streamed_frontier_jq`), so the cap
        is runtime, not memory.
    jq_kernel:
        ``"batch"`` (default) builds frontier-memo misses through the
        all-subsets lattice kernel — one shared sweep per miss instead
        of ~``2^k`` scalar JQ calls, the difference that matters under
        re-estimation churn; ``"scalar"`` keeps the historical per-jury
        path.  The two are byte-identical in every decision and cache
        counter (pinned by the engine fingerprint regression).
    telemetry:
        Observability hub (:data:`~repro.engine.telemetry.NULL_TELEMETRY`
        by default).  The scheduler reports admit/frontier-build spans
        and memo hit/build counters; with a shard id the reports carry a
        ``shard`` label so per-shard latency is separable in exports.
    shard_id:
        Label for telemetry reports when this scheduler serves one shard
        of the sharded engine (``None`` = single-scheduler campaign).
    """

    def __init__(
        self,
        registry: WorkerRegistry,
        cache: JQCache,
        budget: float,
        expected_tasks: int,
        frontier_pool_size: int = 10,
        jq_kernel: str = "batch",
        telemetry=NULL_TELEMETRY,
        shard_id: int | None = None,
    ) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        if expected_tasks < 1:
            raise ValueError("expected_tasks must be >= 1")
        if not 1 <= frontier_pool_size <= MAX_FRONTIER_POOL:
            raise ValueError(
                f"frontier_pool_size must lie in [1, {MAX_FRONTIER_POOL}]"
            )
        if jq_kernel not in ("batch", "scalar"):
            raise ValueError("jq_kernel must be 'batch' or 'scalar'")
        self.registry = registry
        self.cache = cache
        self.budget = float(budget)
        self.expected_tasks = expected_tasks
        self.frontier_pool_size = frontier_pool_size
        self.jq_kernel = jq_kernel
        self.objective = CachedJQObjective(cache)
        self._reserved = 0.0
        self._refunded = 0.0
        self._entitled = 0.0
        self._entitled_tasks: set[str] = set()
        # Frontier memo: steady-state serving cycles through a handful
        # of available-pool configurations, so the (expensive, 2^k-jury)
        # exact frontier is keyed on the candidate set and reused.
        # Qualities in the key are snapped to the cache's grid so
        # re-estimation drift within half a grid step keeps hitting,
        # and the memo is LRU-bounded (dict order is recency, like
        # JQCache) so drift cannot accumulate stale frontiers forever
        # while the hot working set stays memoized.
        self._frontier_memo: dict[tuple, Frontier] = {}
        self.stats = SchedulerStats()
        self.telemetry = telemetry
        self._telemetry_labels = (
            {} if shard_id is None else {"shard": shard_id}
        )

    # ------------------------------------------------------------------
    # Budget accounting
    # ------------------------------------------------------------------
    @property
    def reserved(self) -> float:
        """Gross spend reserved so far (before refunds)."""
        return self._reserved

    @property
    def refunded(self) -> float:
        """Unspent reservation returned by early-stopped tasks."""
        return self._refunded

    @property
    def remaining_budget(self) -> float:
        return self.budget - self._reserved + self._refunded

    def refund(self, amount: float) -> None:
        """Return unspent reservation (early-stopped task) to the pot."""
        if amount < -1e-9:
            raise ValueError(f"refund must be non-negative, got {amount}")
        self._refunded += max(float(amount), 0.0)

    def close(self) -> None:
        """Release held resources — nothing for the single scheduler;
        the sharded scheduler shuts its dispatch pool down here.  Part
        of the shared scheduler surface the engine drives."""

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(
        self,
        tasks: Sequence[EngineTask],
        batch_budget: float | None = None,
    ) -> tuple[list[Assignment], list[EngineTask]]:
        """Assign juries to a batch of arriving tasks.

        Returns ``(assignments, deferred)``: assignments carry either a
        seated jury or an empty one (unfunded — the engine answers the
        prior); deferred tasks found no seatable jury (capacity
        exhausted) and should be retried once workers free up.

        ``batch_budget`` switches off the scheduler's own entitlement
        pacing: a top-level allocator (the sharded engine's
        :class:`~repro.engine.sharding.BudgetAllocator`) has already
        paced the campaign globally and this call may reserve at most
        the given grant.  ``None`` (the default, single-scheduler mode)
        keeps the built-in pro-rata pacing byte-for-byte unchanged.
        """
        if not tasks:
            return [], []
        with self.telemetry.span("admit", **self._telemetry_labels):
            return self._admit_batch(tasks, batch_budget)

    def _admit_batch(
        self,
        tasks: Sequence[EngineTask],
        batch_budget: float | None,
    ) -> tuple[list[Assignment], list[EngineTask]]:
        self.stats.batches += 1
        if batch_budget is None:
            # Each *distinct* task grows the entitlement once — a
            # deferred task retried across many batches must not mint
            # fresh shares.
            new_ids = {t.task_id for t in tasks} - self._entitled_tasks
            self._entitled_tasks |= new_ids
            self._entitled, batch_budget = pro_rata_round_budget(
                self.budget,
                self.expected_tasks,
                self._entitled,
                len(new_ids),
                self._reserved,
                self._refunded,
            )
        else:
            batch_budget = max(float(batch_budget), 0.0)

        candidates = self._candidate_pool()
        if len(candidates) == 0:
            # No seats anywhere: defer everything rather than answer
            # priors for tasks that could be served next batch.
            self.stats.deferred += len(tasks)
            self.telemetry.inc(
                "scheduler.deferred", len(tasks), **self._telemetry_labels
            )
            return [], list(tasks)

        grid = self.cache.quantization
        memo_key = tuple(
            (
                w.worker_id,
                round(w.quality * grid) / grid if grid else w.quality,
                w.cost,
            )
            for w in candidates
        )
        frontier = self._frontier_memo.get(memo_key)
        if frontier is None:
            self.telemetry.inc(
                "scheduler.frontier_builds", **self._telemetry_labels
            )
            while len(self._frontier_memo) >= MAX_FRONTIER_MEMO:
                # Evict the least-recently-used configuration only —
                # dropping the whole memo made every live pool pay a
                # rebuild after one overflow.
                del self._frontier_memo[next(iter(self._frontier_memo))]
            with self.telemetry.span(
                "frontier_build", **self._telemetry_labels
            ):
                frontier = _thin_frontier(
                    exact_frontier(
                        candidates,
                        self.objective,
                        implementation=(
                            "batch" if self.jq_kernel == "batch" else "scalar"
                        ),
                    )
                )
            self._frontier_memo[memo_key] = frontier
        else:
            self.telemetry.inc(
                "scheduler.frontier_memo_hits", **self._telemetry_labels
            )
            # Refresh recency: dict order is the LRU order.
            del self._frontier_memo[memo_key]
            self._frontier_memo[memo_key] = frontier

        alpha = self.cache.alpha
        baseline = max(alpha, 1.0 - alpha)
        plan = allocate_budget(
            {task.task_id: frontier for task in tasks},
            batch_budget,
            baseline_jq=baseline,
        )
        by_id = {task.task_id: task for task in tasks}

        # Substitution candidates, indexed once per batch (capacity is
        # re-checked lazily while seating).
        substitutes = self._make_substitute_index()

        assignments: list[Assignment] = []
        deferred: list[EngineTask] = []
        for allocation in plan.allocations:
            task = by_id[allocation.task_id]
            if allocation.point is None:
                assignments.append(
                    Assignment(task, Jury(()), baseline, 0.0)
                )
                self.stats.unfunded += 1
                continue
            jury = self._seat_jury(
                task,
                allocation.point.worker_ids,
                allocation.point.cost,
                substitutes,
            )
            if jury is None:
                deferred.append(task)
                self.stats.deferred += 1
                continue
            cost = jury.cost
            self._reserved += cost
            assignments.append(
                Assignment(task, jury, self.objective(jury), cost)
            )
            self.stats.admitted += 1
        funded = sum(1 for a in assignments if a.funded)
        labels = self._telemetry_labels
        if funded:
            self.telemetry.inc("scheduler.admitted", funded, **labels)
        if len(assignments) > funded:
            self.telemetry.inc(
                "scheduler.unfunded", len(assignments) - funded, **labels
            )
        if deferred:
            self.telemetry.inc("scheduler.deferred", len(deferred), **labels)
        return assignments, deferred

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidate_pool(self) -> WorkerPool:
        """Top available workers by log-odds per dollar."""
        available = self.registry.available_pool()

        def score(worker) -> float:
            return informativeness(worker) / max(worker.cost, 1e-9)

        ranked = sorted(
            available, key=lambda w: (-score(w), w.worker_id)
        )
        return WorkerPool(ranked[: self.frontier_pool_size])

    def _make_substitute_index(self):
        """Per-batch substitution index.  Hook: the substitution
        micro-benchmark swaps in the linear reference scan here to
        compare the two on identical traffic."""
        return SubstituteIndex(self.registry.states)

    def _seat_jury(
        self,
        task: EngineTask,
        planned_ids: Sequence[str],
        planned_cost: float,
        substitutes: SubstituteIndex,
    ) -> Jury | None:
        """Seat the planned jury, substituting saturated members.

        Substitutes must cost no more than the member they replace, so
        the seated jury never exceeds the allocation's planned cost —
        which is what keeps the batch within its budget share.  Returns
        ``None`` (and releases any partial seating) when not a single
        seat could be filled.
        """
        seated: list[str] = []
        taken: set[str] = set()
        # Workers whose *shared* seats ran out (a lease coordinator
        # denied the assign — another engine process got there first).
        # Locally they still show free capacity, so they must be
        # excluded explicitly or the substitute index would keep
        # offering them.  Single-process campaigns never populate this
        # set: free_capacity was just checked and shard members are
        # disjoint, so assign cannot raise — decisions (and
        # fingerprints) are untouched.
        failed: set[str] = set()
        for worker_id in planned_ids:
            if (
                worker_id not in taken
                and worker_id not in failed
                and self.registry.free_capacity(worker_id) > 0
            ):
                try:
                    self.registry.assign(worker_id, task.task_id)
                    seated.append(worker_id)
                    taken.add(worker_id)
                    continue
                except CapacityError:
                    failed.add(worker_id)
            # Saturated — or already seated on this jury as an earlier
            # member's substitute; either way this seat needs a fresh
            # (no-dearer) worker.
            max_cost = self.registry.worker(worker_id).cost
            while True:
                substitute = substitutes.best(
                    max_cost=max_cost, exclude=taken | failed
                )
                if substitute is None:
                    self.stats.dropped_seats += 1
                    break
                try:
                    self.registry.assign(substitute, task.task_id)
                except CapacityError:
                    failed.add(substitute)
                    continue
                seated.append(substitute)
                taken.add(substitute)
                self.stats.substitutions += 1
                break
        if not seated:
            return None
        jury = Jury(self.registry.worker(w) for w in seated)
        # Defensive: substitution-by-cheaper guarantees this bound.
        assert jury.cost <= planned_cost + 1e-9
        return jury

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Budget ledger, counters, and the frontier memo.

        The memo must survive a checkpoint: a resumed campaign that
        re-enumerated frontiers would issue extra JQ lookups, drifting
        the cache counters (which the metrics fingerprint covers) away
        from the uninterrupted run.
        """
        return {
            "reserved": self._reserved,
            "refunded": self._refunded,
            "entitled": self._entitled,
            "entitled_tasks": sorted(self._entitled_tasks),
            "stats": dataclasses.asdict(self.stats),
            "frontier_memo": [
                [
                    [list(part) for part in key],
                    {
                        "exact": frontier.exact,
                        "points": [
                            [p.cost, p.jq, list(p.worker_ids)]
                            for p in frontier.points
                        ],
                    },
                ]
                for key, frontier in self._frontier_memo.items()
            ],
        }

    def load_state(self, state: Mapping) -> None:
        self._reserved = float(state["reserved"])
        self._refunded = float(state["refunded"])
        self._entitled = float(state["entitled"])
        self._entitled_tasks = set(state["entitled_tasks"])
        self.stats = SchedulerStats(
            **{k: int(v) for k, v in state["stats"].items()}
        )
        self._frontier_memo = {
            tuple(
                (str(wid), float(q), float(c)) for wid, q, c in key
            ): Frontier(
                tuple(
                    FrontierPoint(float(cost), float(jq), tuple(ids))
                    for cost, jq, ids in frontier["points"]
                ),
                exact=bool(frontier["exact"]),
            )
            for key, frontier in state["frontier_memo"]
        }
