"""Async ingestion: a thread-safe intake queue feeding the event loop.

The classic engine is fed up front: every arrival is enqueued before
:meth:`~repro.engine.engine.CampaignEngine.run`, and nothing may touch
the event heap while the loop drains it.  A serving system cannot live
like that — live traffic arrives *while* batches are being seated.
This module splits arrival intake from scheduling:

* :class:`IntakeQueue` — a thread-safe, **bounded** staging queue.
  Producers call :meth:`~IntakeQueue.submit` from any thread; when the
  queue is full they block (backpressure) until the serving loop drains
  or the queue closes.  Tasks are stamped with their logical arrival
  time *at submission* (under the intake mutex), so the arrival order —
  and therefore the campaign's decisions — is fixed by who got into the
  queue first, not by when the loop happened to look.
* :class:`AsyncIngestLoop` — drives the engine's event loop off the
  intake queue with a **drain-before-step** discipline: every pending
  intake task is injected into the event heap before the next event is
  dispatched.  The discipline is what makes the async path
  deterministic given a delivery order — a campaign whose tasks are all
  submitted before :meth:`~AsyncIngestLoop.run` (or between paused
  runs) produces a metrics fingerprint **byte-identical to the
  synchronous path**, which the invariant harness pins.
* :class:`InterleavingSchedule` — a seeded schedule of drain cadences
  (events stepped between drains, items taken per drain).  Replayable
  concurrency: two runs with the same schedule seed and delivery order
  interleave arrivals with in-flight votes identically, so randomized
  interleaving stress tests can assert byte-identical fingerprints.

Batch *coalescing* falls out of the two layers: the intake mutex makes
bursts arrive as runs of consecutive items, the drain takes everything
pending at once (up to the schedule's cap), and the engine's own
``batch_size`` buffering turns the drained run into scheduling batches.
When the loop goes idle with the intake open it waits ``grace`` seconds
(the coalescing deadline) for stragglers before finishing, so a slow
trickle of producers is served in fuller batches instead of one jury
at a time.

Parallelism across shards lives in
:class:`~repro.engine.sharding.ShardedScheduler` (a
``ThreadPoolExecutor`` dispatching the per-shard admits concurrently);
this module owns the producer-facing half.  The two compose: burst
traffic streams in through the intake while K shard admits seat juries
in parallel — ``benchmarks/bench_async_ingestion.py`` measures the
combination against the sequential loop.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.exceptions import ReproError
from .events import EngineTask
from .metrics import EngineMetrics
from .telemetry import NULL_TELEMETRY


class IngestionError(ReproError, RuntimeError):
    """Base class for intake failures."""


class IngestionClosed(IngestionError):
    """A task was submitted to an intake queue that has been closed."""


class IngestionOverflow(IngestionError):
    """Backpressure timed out: the intake stayed full for longer than
    the submitter was willing to wait."""


@dataclass
class IngestStats:
    """Running intake counters (read under no lock: observability only).

    ``per_producer`` keys on the submitting thread's name and carries
    ``submits`` / ``overflows`` / ``blocked_seconds`` per producer — the
    measurement half of per-producer fairness under backpressure: a
    producer whose ``blocked_seconds`` dwarfs its peers' is the one the
    bound is starving.
    """

    submitted: int = 0
    drained: int = 0
    drains: int = 0
    peak_pending: int = 0
    blocked_submits: int = 0  # staged tasks that had to wait out a full queue
    overflows: int = 0  # submits that gave up after a backpressure timeout
    quota_blocked: int = 0  # submits that waited on their *own* quota
    quota_overflows: int = 0  # quota waits that timed out
    per_producer: dict[str, dict] = field(default_factory=dict)

    def producer(self, name: str) -> dict:
        """The named producer's counter row (created on first use).
        Call under the intake mutex."""
        entry = self.per_producer.get(name)
        if entry is None:
            entry = self.per_producer[name] = {
                "submits": 0,
                "overflows": 0,
                "blocked_seconds": 0.0,
            }
        return entry

    # -- persistence (campaign checkpoints carry intake totals) --------
    def state_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "drained": self.drained,
            "drains": self.drains,
            "peak_pending": self.peak_pending,
            "blocked_submits": self.blocked_submits,
            "overflows": self.overflows,
            "quota_blocked": self.quota_blocked,
            "quota_overflows": self.quota_overflows,
            "per_producer": {
                name: dict(entry) for name, entry in self.per_producer.items()
            },
        }

    @classmethod
    def from_state(cls, state) -> "IngestStats":
        return cls(
            submitted=int(state.get("submitted", 0)),
            drained=int(state.get("drained", 0)),
            drains=int(state.get("drains", 0)),
            peak_pending=int(state.get("peak_pending", 0)),
            blocked_submits=int(state.get("blocked_submits", 0)),
            overflows=int(state.get("overflows", 0)),
            quota_blocked=int(state.get("quota_blocked", 0)),
            quota_overflows=int(state.get("quota_overflows", 0)),
            per_producer={
                name: dict(entry)
                for name, entry in state.get("per_producer", {}).items()
            },
        )


class IntakeQueue:
    """Thread-safe bounded staging queue for live task arrivals.

    Parameters
    ----------
    max_pending:
        Backpressure bound: :meth:`submit` blocks once this many tasks
        are staged and un-drained.  Producers outrunning the serving
        loop wait here instead of growing memory without bound.
    seen_ids:
        Task ids already known to the campaign (the resume path seeds
        this from the restored engine), so duplicate submission is
        caught at the intake mutex — before two threads could race the
        engine's own duplicate check.
    producer_quota:
        Per-producer fairness bound as a fraction of ``max_pending``
        (0 disables).  One producer may occupy at most
        ``max(1, int(producer_quota * max_pending))`` staged slots; a
        producer over its share blocks until its *own* staged tasks
        drain, even while the queue as a whole has room — so one
        firehose producer cannot starve its peers out of the intake.
    """

    def __init__(
        self,
        max_pending: int = 10_000,
        seen_ids=(),
        telemetry=NULL_TELEMETRY,
        producer_quota: float = 0.0,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if not 0.0 <= producer_quota <= 1.0:
            raise ValueError("producer_quota must lie in [0, 1]")
        self.max_pending = max_pending
        self.producer_quota = producer_quota
        self._quota_cap = (
            max(1, int(producer_quota * max_pending))
            if producer_quota > 0
            else None
        )
        self.telemetry = telemetry
        self._mutex = threading.Lock()
        self._not_full = threading.Condition(self._mutex)
        self._not_empty = threading.Condition(self._mutex)
        self._items: deque[tuple[float, EngineTask, str]] = deque()
        self._staged_by_producer: dict[str, int] = {}
        self._seen: set[str] = set(seen_ids)
        self._closed = False
        self.stats = IngestStats()
        self.telemetry.add_collector(self._telemetry_gauges)

    def _telemetry_gauges(self):
        """Pull-based intake gauges (collector: read at export time
        only).  Producer names are caller-chosen thread names and land
        verbatim as label values — the exporter escapes them."""
        with self._mutex:
            pending = len(self._items)
            rows = [
                (name, dict(entry))
                for name, entry in self.stats.per_producer.items()
            ]
        yield "intake.depth", {}, float(pending)
        for name, entry in rows:
            labels = {"producer": name}
            yield "intake.producer_submits", labels, float(entry["submits"])
            yield (
                "intake.producer_overflows",
                labels,
                float(entry["overflows"]),
            )
            yield (
                "intake.producer_blocked_seconds",
                labels,
                float(entry["blocked_seconds"]),
            )

    # ------------------------------------------------------------------
    # Producer side (any thread)
    # ------------------------------------------------------------------
    def _over_quota(self, producer: str) -> bool:
        """Whether the producer has its full quota of slots staged
        (call under the intake mutex)."""
        return (
            self._quota_cap is not None
            and self._staged_by_producer.get(producer, 0) >= self._quota_cap
        )

    def _must_wait(self, producer: str) -> bool:
        return len(self._items) >= self.max_pending or self._over_quota(
            producer
        )

    def submit(
        self,
        tasks,
        start_time: float = 0.0,
        spacing: float = 1.0,
        timeout: float | None = None,
    ) -> int:
        """Stage task arrivals at evenly spaced logical times.

        Mirrors :meth:`CampaignEngine.submit` — same signature, same
        time stamping — but is safe from any thread and enforces the
        backpressure bound.  Blocks while the queue is full; raises
        :class:`IngestionOverflow` when ``timeout`` (seconds, per task)
        expires first, :class:`IngestionClosed` once the queue closed.
        Returns the number of tasks staged.
        """
        count = 0
        producer = threading.current_thread().name
        for i, task in enumerate(tasks):
            if not isinstance(task, EngineTask):
                raise TypeError(
                    f"expected EngineTask, got {type(task).__name__}"
                )
            arrival = start_time + i * spacing
            with self._not_full:
                entry = self.stats.producer(producer)
                if self._must_wait(producer):
                    # Distinguish *why* at entry: a producer over its
                    # own quota while the queue has room is throttled
                    # for fairness, not by global backpressure.
                    if self._over_quota(producer) and (
                        len(self._items) < self.max_pending
                    ):
                        self.stats.quota_blocked += 1
                    else:
                        self.stats.blocked_submits += 1
                    blocked_at = time.monotonic()
                    deadline = (
                        None if timeout is None else blocked_at + timeout
                    )
                    try:
                        while self._must_wait(producer) and not self._closed:
                            remaining = (
                                None
                                if deadline is None
                                else deadline - time.monotonic()
                            )
                            if remaining is not None and remaining <= 0:
                                if self._over_quota(producer) and (
                                    len(self._items) < self.max_pending
                                ):
                                    self.stats.quota_overflows += 1
                                    entry["overflows"] += 1
                                    self.telemetry.inc(
                                        "intake.quota_overflows"
                                    )
                                    self.telemetry.event(
                                        "intake-quota-overflow",
                                        producer=producer,
                                        staged=self._staged_by_producer.get(
                                            producer, 0
                                        ),
                                    )
                                    raise IngestionOverflow(
                                        f"producer {producer!r} is over its "
                                        f"intake quota ({self._quota_cap} "
                                        f"staged) for {timeout:g}s"
                                    )
                                self.stats.overflows += 1
                                entry["overflows"] += 1
                                self.telemetry.inc("intake.overflows")
                                self.telemetry.event(
                                    "intake-overflow",
                                    producer=producer,
                                    pending=len(self._items),
                                )
                                raise IngestionOverflow(
                                    f"intake full ({self.max_pending} pending) "
                                    f"for {timeout:g}s"
                                )
                            self._not_full.wait(remaining)
                    finally:
                        entry["blocked_seconds"] += (
                            time.monotonic() - blocked_at
                        )
                if self._closed:
                    raise IngestionClosed(
                        "intake is closed; the campaign is no longer "
                        "accepting tasks"
                    )
                if task.task_id in self._seen:
                    raise ValueError(f"duplicate task id {task.task_id!r}")
                self._seen.add(task.task_id)
                self._items.append((arrival, task, producer))
                self._staged_by_producer[producer] = (
                    self._staged_by_producer.get(producer, 0) + 1
                )
                self.stats.submitted += 1
                entry["submits"] += 1
                self.stats.peak_pending = max(
                    self.stats.peak_pending, len(self._items)
                )
                self._not_empty.notify_all()
            self.telemetry.inc("intake.submitted")
            count += 1
        if count:
            self.telemetry.event(
                "intake-submit", producer=producer, staged=count
            )
        return count

    def close(self) -> None:
        """Stop accepting tasks (idempotent).  Producers blocked on
        backpressure are woken and raise :class:`IngestionClosed`."""
        with self._mutex:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    # ------------------------------------------------------------------
    # Consumer side (the serving loop's thread)
    # ------------------------------------------------------------------
    def drain(self, max_items: int | None = None) -> list[tuple[float, EngineTask]]:
        """Pop up to ``max_items`` staged ``(arrival_time, task)`` pairs
        (everything pending when ``None``), oldest first.  Never blocks."""
        # The drain is called once per loop step (usually empty), so the
        # timing probe only fires when telemetry is live.
        timed = self.telemetry.enabled
        t0 = time.monotonic() if timed else 0.0
        with self._not_full:
            take = len(self._items)
            if max_items is not None:
                take = min(take, max(int(max_items), 0))
            out = []
            for _ in range(take):
                arrival, task, producer = self._items.popleft()
                staged = self._staged_by_producer.get(producer, 0) - 1
                if staged > 0:
                    self._staged_by_producer[producer] = staged
                else:
                    self._staged_by_producer.pop(producer, None)
                out.append((arrival, task))
            if out:
                self.stats.drained += len(out)
                self.stats.drains += 1
                self._not_full.notify_all()
        if out and timed:
            self.telemetry.observe(
                "intake_drain_seconds", time.monotonic() - t0
            )
            self.telemetry.event("intake-drain", count=len(out))
        return out

    def wait_for_traffic(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds for something to drain;
        returns whether anything is pending.  Wakes early on close."""
        with self._not_empty:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout)
            return bool(self._items)

    def kick(self) -> None:
        """Wake a consumer blocked in :meth:`wait_for_traffic` without
        staging anything — side channels (vote submission, admin
        commands) use this so the serving loop notices their traffic
        promptly instead of sleeping out the poll window."""
        with self._mutex:
            self._not_empty.notify_all()

    @property
    def pending(self) -> int:
        with self._mutex:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntakeQueue({len(self._items)}/{self.max_pending} pending"
            f"{', closed' if self._closed else ''})"
        )


class NoOpenOffer(ReproError, LookupError):
    """A vote was claimed for a (task, worker) pair with no open offer —
    never seated, already voted, or revoked by an early stop."""


class AssignmentBook:
    """Thread-safe registry of open external-vote offers.

    Under ``vote_source="external"`` the engine stops simulating votes:
    seating a jury *publishes* one offer per seated worker here, and the
    offer stays open until that worker's vote is claimed (exactly once)
    or the task completes first and revokes it.  Workers — HTTP clients,
    in-process drivers — discover their open seats with
    :meth:`for_worker` and spend them through
    :meth:`~repro.engine.engine.CampaignEngine.deliver_vote`.

    The book is observational bookkeeping on top of the engine's own
    per-task ``pending_workers`` state (and is rebuilt from it on
    resume); claims are what make vote delivery idempotent-safe under
    concurrent spammy clients — the second claim of the same seat
    raises :class:`NoOpenOffer` instead of double-voting.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        # worker id -> {task id -> offer row}; rows are plain dicts so
        # the HTTP layer can serialize them without translation.
        self._by_worker: dict[str, dict[str, dict]] = {}
        self.published = 0
        self.claimed = 0
        self.revoked = 0

    def publish(self, task_id: str, worker_ids, prior: float) -> None:
        with self._mutex:
            for worker_id in worker_ids:
                self._by_worker.setdefault(worker_id, {})[task_id] = {
                    "task_id": task_id,
                    "worker_id": worker_id,
                    "prior": prior,
                }
                self.published += 1

    def claim(self, task_id: str, worker_id: str) -> dict:
        """Close the (task, worker) offer and return its row; raises
        :class:`NoOpenOffer` when it is not open."""
        with self._mutex:
            offers = self._by_worker.get(worker_id)
            row = None if offers is None else offers.pop(task_id, None)
            if row is None:
                raise NoOpenOffer(
                    f"no open offer for worker {worker_id!r} on task "
                    f"{task_id!r}"
                )
            if not offers:
                del self._by_worker[worker_id]
            self.claimed += 1
            return row

    def revoke_task(self, task_id: str) -> int:
        """Close every remaining offer for a completed task (early stop
        releases seats whose votes are no longer needed).  Returns the
        number revoked."""
        revoked = 0
        with self._mutex:
            for worker_id in list(self._by_worker):
                offers = self._by_worker[worker_id]
                if offers.pop(task_id, None) is not None:
                    revoked += 1
                    if not offers:
                        del self._by_worker[worker_id]
            self.revoked += revoked
        return revoked

    def for_worker(self, worker_id: str) -> list[dict]:
        """The worker's open offers, oldest first (dicts are copies —
        safe to mutate/serialize)."""
        with self._mutex:
            offers = self._by_worker.get(worker_id, {})
            return [dict(row) for row in offers.values()]

    def open_offers(self) -> list[dict]:
        """Every open offer, sorted by (task, worker) for deterministic
        iteration by seeded client fleets."""
        with self._mutex:
            rows = [
                dict(row)
                for offers in self._by_worker.values()
                for row in offers.values()
            ]
        return sorted(rows, key=lambda r: (r["task_id"], r["worker_id"]))

    @property
    def open_count(self) -> int:
        with self._mutex:
            return sum(len(offers) for offers in self._by_worker.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AssignmentBook({self.open_count} open, "
            f"{self.claimed} claimed, {self.revoked} revoked)"
        )


class InterleavingSchedule:
    """Seeded drain cadence for replayable concurrent runs.

    Draws, from one seeded generator consumed in call order, how many
    events the loop dispatches between intake drains
    (:meth:`next_chunk`) and how many staged tasks each drain may take
    (:meth:`next_take`).  Fixing the seed fixes where arrivals land
    between in-flight vote events — the whole interleaving — so two
    runs over the same delivery order are byte-identical, while
    different seeds explore genuinely different schedules.  This is the
    deterministic mode the concurrency stress harness replays.
    """

    def __init__(self, seed: int, max_chunk: int = 8, max_take: int = 16) -> None:
        if max_chunk < 1:
            raise ValueError("max_chunk must be >= 1")
        if max_take < 1:
            raise ValueError("max_take must be >= 1")
        self._rng = np.random.default_rng(seed)
        self.max_chunk = max_chunk
        self.max_take = max_take

    def next_chunk(self) -> int:
        return int(self._rng.integers(1, self.max_chunk + 1))

    def next_take(self) -> int:
        return int(self._rng.integers(1, self.max_take + 1))


class AsyncIngestLoop:
    """Drives one engine's event loop off a live intake queue.

    The loop owns the engine's thread: events are dispatched, juries
    seated, and votes processed on the thread that calls :meth:`run`,
    exactly like the synchronous path — only *arrival intake* is
    concurrent.  The drain-before-step discipline (inject every staged
    arrival before dispatching the next event) plus submission-time
    stamping make the result deterministic in the delivery order alone.

    ``run(until=None)`` serves to quiescence: when the event queue and
    the intake are both empty it waits ``grace`` seconds for straggler
    producers, then finalizes the campaign and closes the intake.
    ``run(until=N)`` pauses after N completions with the intake still
    open — staged tasks are folded into the (checkpointable) event
    queue first, so a paused async campaign snapshots completely.
    """

    def __init__(
        self,
        engine,
        max_pending: int = 10_000,
        grace: float | str = 0.05,
        interleave: InterleavingSchedule | None = None,
        producer_quota: float = 0.0,
    ) -> None:
        if isinstance(grace, str):
            if grace != "auto":
                raise ValueError(
                    f"grace must be a positive number or 'auto', "
                    f"got {grace!r}"
                )
        elif grace <= 0:
            raise ValueError("grace must be positive")
        self.engine = engine
        self.grace = grace
        self.interleave = interleave
        self.intake = IntakeQueue(
            max_pending,
            seen_ids=engine._task_ids,
            telemetry=engine.telemetry,
            producer_quota=producer_quota,
        )
        self._running = False
        self._idle = False

    def _effective_grace(self) -> float:
        """The coalescing deadline in seconds.

        A fixed ``grace`` is used verbatim.  ``grace="auto"`` sizes the
        window from the engine's admit-latency EWMA — a few admit
        rounds' worth (clamped to [10ms, 500ms]) — so cheap campaigns
        quiesce fast while expensive ones hold the window open long
        enough to coalesce stragglers into full batches.  The grace
        only shapes *wall-clock* waiting for traffic, never which tasks
        land in which batch, so it is fingerprint-neutral by
        construction.
        """
        if self.grace != "auto":
            return self.grace
        ewma = self.engine.admit_latency_ewma
        if ewma is None:
            return 0.05
        return min(max(8.0 * ewma, 0.01), 0.5)

    # ------------------------------------------------------------------
    # Producer surface
    # ------------------------------------------------------------------
    def submit(
        self,
        tasks,
        start_time: float = 0.0,
        spacing: float = 1.0,
        timeout: float | None = None,
    ) -> int:
        """Thread-safe :meth:`CampaignEngine.submit` (see
        :meth:`IntakeQueue.submit` for blocking semantics)."""
        return self.intake.submit(tasks, start_time, spacing, timeout)

    def close_intake(self) -> None:
        self.intake.close()

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def quiesce_intake(self) -> int:
        """Fold every staged arrival into the engine's event queue (loop
        thread only — the event heap is not thread-safe).  Returns the
        number injected.  Called before checkpoints so a snapshot never
        loses tasks that were accepted but not yet scheduled."""
        return self.engine.ingest(self.intake.drain())

    def run(self, until: int | None = None) -> EngineMetrics:
        """Serve until quiescence (``until=None``) or pause after
        ``until`` completed tasks.  Not reentrant; producers may submit
        concurrently throughout."""
        if self._running:
            raise RuntimeError("AsyncIngestLoop.run is not reentrant")
        self._running = True
        engine = self.engine
        start = time.perf_counter()
        try:
            self.quiesce_intake()
            engine._start()
            chunk = 0
            paused = False
            while True:
                if until is not None and engine.metrics.completed >= until:
                    paused = True
                    break
                if self.interleave is None:
                    self.quiesce_intake()
                elif chunk <= 0:
                    engine.ingest(
                        self.intake.drain(self.interleave.next_take())
                    )
                    chunk = self.interleave.next_chunk()
                if engine._queue:
                    engine._step()
                    chunk -= 1
                    continue
                # Event queue drained: serve freshly staged traffic, or
                # give straggler producers one grace window.
                chunk = 0
                if self.intake.pending:
                    continue
                if engine.offers is not None and engine._active:
                    # External-vote campaign with votes outstanding:
                    # run() cannot conjure them (vote delivery is the
                    # caller's job), so pause rather than idle or
                    # finalize a half-voted campaign.  serve() is the
                    # blocking mode that waits for that traffic.
                    paused = True
                    break
                if not self.intake.closed and self.intake.wait_for_traffic(
                    self._effective_grace()
                ):
                    continue
                # Quiescence candidate: nothing queued, nothing staged,
                # and the grace window produced nothing (or the intake
                # was closed).  Close the intake *before* concluding —
                # a submit that raced the check above is now staged
                # behind a closed door, so fold it in and keep serving;
                # none can race the next pass.
                self.intake.close()
                self.quiesce_intake()
                if not engine._queue:
                    break
            if paused:
                # Paused at the target: juries in flight, the intake
                # stays open for more traffic.  Stage everything
                # accepted so far (a checkpoint must capture it) and
                # fold the live gauges in so a paused report is not all
                # zeros (the finish pass overwrites them, so resumed
                # fingerprints are untouched).
                self.quiesce_intake()
                engine._collect_stats()
            else:
                # Quiesced: every accepted task was served; finalize
                # exactly like the synchronous path.
                engine._finish()
        finally:
            self._running = False
            # Fold intake totals into the report on every exit (pause,
            # finish, or error) — render-only, excluded from the
            # fingerprint, so sync/async parity is untouched.
            engine.metrics.intake_stats = self.intake.stats.state_dict()
            engine.metrics.wall_seconds += time.perf_counter() - start
        return engine.metrics

    @property
    def running(self) -> bool:
        """Whether a serving loop (:meth:`run` or :meth:`serve`) owns
        the engine right now."""
        return self._running

    @property
    def idle(self) -> bool:
        """Whether a live :meth:`serve` loop is parked waiting for
        traffic (nothing staged, queued, or delivered on its last
        pass).  The quiescence half of an HTTP client's barrier:
        ``idle and staged == 0 and queued_events == 0`` means every
        previously accepted task has been seated."""
        return self._idle

    def serve(
        self,
        stop: threading.Event | None = None,
        poll: float = 0.05,
        drain_hook=None,
        tick=None,
        tick_interval: float | None = None,
    ) -> EngineMetrics:
        """Serve-forever daemon loop.

        Unlike :meth:`run` — which concludes after one quiet
        ``grace`` window — this loop idles indefinitely, waiting for
        traffic, until one of two exits:

        - the intake is **closed** and everything has quiesced (no
          staged arrivals, no queued events, no tasks awaiting external
          votes): the campaign finalizes exactly like ``run()``;
        - ``stop`` is set: the loop folds staged arrivals into the
          (checkpointable) event queue and **pauses** without
          finalizing — the graceful-shutdown path: checkpoint, exit,
          ``Campaign.resume`` later.

        ``drain_hook()`` runs on the loop thread once per iteration —
        the serving layer applies externally delivered votes and admin
        commands through it (return truthy when anything was applied).
        ``tick()`` runs at most every ``tick_interval`` seconds —
        periodic observability flushes.  ``poll`` bounds how long the
        idle loop sleeps between checks for side-channel traffic.
        """
        if self._running:
            raise RuntimeError("AsyncIngestLoop is already serving")
        if poll <= 0:
            raise ValueError("poll must be positive")
        # The idle sleeps must never outlast the tick cadence: ``tick``
        # carries the coordinator's lease renewals, so an idle serve
        # loop sleeping a full ``poll > tick_interval`` would let live
        # leases expire mid-serve and another engine steal the seats.
        effective_poll = (
            poll if not tick_interval else min(poll, tick_interval)
        )
        self._running = True
        engine = self.engine
        start = time.perf_counter()
        last_tick = time.monotonic()
        finished = False
        try:
            self.quiesce_intake()
            engine._start()
            while True:
                if stop is not None and stop.is_set():
                    break
                if (
                    tick is not None
                    and tick_interval
                    and time.monotonic() - last_tick >= tick_interval
                ):
                    last_tick = time.monotonic()
                    tick()
                progressed = self.quiesce_intake() > 0
                if drain_hook is not None and drain_hook():
                    progressed = True
                if progressed or engine._queue:
                    self._idle = False
                if engine._queue:
                    engine._step()
                    continue
                if progressed:
                    continue
                # Idle: nothing queued, staged, or delivered this pass.
                if self.intake.closed:
                    if engine.offers is not None and engine._active:
                        # Votes still owed to seated juries: keep
                        # serving (the intake condition cannot wake on
                        # side-channel traffic once closed, so sleep
                        # out a poll window instead).
                        self._idle = True
                        time.sleep(effective_poll)
                        continue
                    finished = True
                    break
                self._idle = True
                self.intake.wait_for_traffic(effective_poll)
            if finished:
                engine._finish()
            else:
                # Stopped: fold accepted-but-unscheduled arrivals in so
                # the checkpoint that typically follows loses nothing.
                self.quiesce_intake()
                engine._collect_stats()
        finally:
            self._running = False
            self._idle = False
            engine.metrics.intake_stats = self.intake.stats.state_dict()
            engine.metrics.wall_seconds += time.perf_counter() - start
        return engine.metrics
