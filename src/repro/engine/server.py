"""HTTP serving layer: a real crowd on the other end of a `Campaign`.

Every earlier layer consumed *simulated* traffic from in-process
producers.  :class:`CampaignServer` puts a network endpoint on the
:class:`~repro.engine.campaign.Campaign` facade so annotation
platforms — or a seeded test fleet — can drive a campaign over the
wire::

    POST /tasks              submit tasks into the async intake
    GET  /assignments?worker= the worker's open vote offers
    POST /votes              deliver one vote (applied synchronously)
    GET  /status             live campaign/loop counters
    GET  /metrics            Prometheus text exposition (v0.0.4)
    POST /admin/checkpoint   checkpoint to the campaign's backend
    POST /admin/close        close the intake (drain) or pause (stop)

Threading model
---------------
The listener is a stdlib ``ThreadingHTTPServer``: one handler thread
per connection.  The engine's event heap is single-threaded, so handler
threads never touch it directly:

- **Task submission** goes through the thread-safe
  :class:`~repro.engine.ingest.IntakeQueue` (bounded backpressure →
  503 + ``Retry-After`` on overflow).
- **Votes and admin commands** are staged on a :class:`LoopMailbox`
  and *applied on the serving-loop thread* at its next drain point;
  the handler blocks until the application ran and reports the real
  outcome.  Claims happen at application time, so the engine observes
  the exact op sequence a single-threaded in-process driver would
  produce — the foundation of the HTTP-vs-in-process fingerprint
  parity pin.
- **Reads** (``/status``, ``/metrics``, ``/assignments``) touch only
  mutex-guarded or observational state.

The blocking :meth:`CampaignServer.serve` runs
:meth:`Campaign.serve` — the serve-forever daemon loop — on the
calling thread, with the mailbox wired in as its drain hook.  It
returns the final :class:`~repro.engine.metrics.EngineMetrics` when the
intake is closed and drained, or the paused metrics after
:meth:`CampaignServer.stop` (the graceful-shutdown path: checkpoint,
then exit).
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from .campaign import Campaign
from .events import EngineTask
from .ingest import IngestionClosed, IngestionOverflow, NoOpenOffer
from .metrics import EngineMetrics

#: Default cap on request bodies — a hostile client streaming an
#: unbounded payload gets 413 instead of exhausting memory.
DEFAULT_MAX_BODY = 1 << 20

#: How long a handler waits for the serving loop to apply its command
#: before giving up with 503 (the loop may be mid-checkpoint).
DEFAULT_COMMAND_TIMEOUT = 30.0


class ServerError(RuntimeError):
    """The serving loop could not accept or apply a command."""


class _Command:
    """One unit of work staged for the serving-loop thread."""

    __slots__ = ("fn", "done", "result", "error")

    def __init__(self, fn) -> None:
        self.fn = fn
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            self.result = self.fn()
        except BaseException as exc:  # reported to the waiting handler
            self.error = exc
        finally:
            self.done.set()

    def fail(self, exc: BaseException) -> None:
        if not self.done.is_set():
            self.error = exc
            self.done.set()


class LoopMailbox:
    """Thread-safe handoff of commands to the serving-loop thread.

    Handler threads :meth:`call` a closure; the loop thread
    :meth:`drain`s and runs it at its next drain point; the handler
    wakes with the closure's return value (or its exception re-raised).
    ``kick`` is invoked after staging so an idle loop notices the
    traffic immediately instead of sleeping out its poll window.
    """

    def __init__(self, kick=None) -> None:
        self._mutex = threading.Lock()
        self._items: deque[_Command] = deque()
        self._kick = kick
        self._rejecting: BaseException | None = None

    def call(self, fn, timeout: float = DEFAULT_COMMAND_TIMEOUT) -> Any:
        command = _Command(fn)
        with self._mutex:
            if self._rejecting is not None:
                raise self._rejecting
            self._items.append(command)
        if self._kick is not None:
            self._kick()
        if not command.done.wait(timeout):
            raise ServerError(
                f"serving loop did not apply the command within "
                f"{timeout:g}s"
            )
        if command.error is not None:
            raise command.error
        return command.result

    def drain(self) -> list[_Command]:
        with self._mutex:
            out = list(self._items)
            self._items.clear()
        return out

    @property
    def pending(self) -> int:
        with self._mutex:
            return len(self._items)

    def reject_all(self, exc: BaseException) -> None:
        """Fail every staged command and every future :meth:`call` with
        ``exc`` — the loop has exited; nothing will drain again."""
        with self._mutex:
            self._rejecting = exc
            items = list(self._items)
            self._items.clear()
        for command in items:
            command.fail(exc)


class CampaignServer:
    """HTTP facade over one :class:`Campaign` (see the module docstring
    for the endpoint table and threading model).

    ``port=0`` binds an ephemeral port; read :attr:`port` (or
    :attr:`url`) for the bound address.  The instance is a context
    manager that shuts the listener down on exit.
    """

    def __init__(
        self,
        campaign: Campaign,
        host: str | None = None,
        port: int | None = None,
        submit_timeout: float = 2.0,
        command_timeout: float = DEFAULT_COMMAND_TIMEOUT,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        if campaign._ingest is None:
            raise ValueError(
                "CampaignServer requires ingestion='async' — the "
                "listener's handler threads need the thread-safe intake"
            )
        self.campaign = campaign
        self.submit_timeout = submit_timeout
        self.command_timeout = command_timeout
        self.max_body = max_body
        self.mailbox = LoopMailbox(kick=self._kick)
        self._stop = threading.Event()
        self._listener: threading.Thread | None = None
        self._started = time.monotonic()
        self._shutdown = False
        handler = type(
            "_BoundHandler", (_CampaignRequestHandler,), {"ctx": self}
        )
        # The stdlib default listen backlog (5) overflows under a burst
        # of concurrent clients; a dropped handshake ACK then surfaces
        # to the client as a connection reset.  A worker fleet IS a
        # burst, so listen deep.
        server_cls = type(
            "_CampaignHTTPServer",
            (ThreadingHTTPServer,),
            {"request_queue_size": 128, "daemon_threads": True},
        )
        self._httpd = server_cls(
            (host if host is not None else campaign.config.serve_host,
             port if port is not None else campaign.config.serve_port),
            handler,
        )
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]

    # ------------------------------------------------------------- wiring
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _kick(self) -> None:
        """Wake an idle serving loop (side-channel traffic arrived)."""
        ingest = self.campaign._ingest
        if ingest is not None:
            ingest.intake.kick()

    def _drain(self) -> bool:
        """The serve loop's drain hook (loop thread only): apply every
        staged vote/admin command, dispatching queued events first so
        each application sees the same quiescent engine state an
        in-process single-threaded driver would."""
        applied = False
        engine = self.campaign.engine
        for command in self.mailbox.drain():
            while engine._queue:
                engine._step()
            command.run()
            applied = True
        return applied

    # ------------------------------------------------------------ control
    def start_listener(self) -> None:
        """Bind-and-listen on a daemon thread (idempotent).  The
        listener accepts requests even while :meth:`serve` is not yet
        (or no longer) draining the mailbox — commands then fail with
        503 after ``command_timeout``."""
        if self._listener is None:
            self._listener = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-serve[{self.port}]",
                daemon=True,
            )
            self._listener.start()

    def serve(self, tick=None, tick_interval: float | None = None) -> EngineMetrics:
        """Serve forever on the calling thread (see
        :meth:`Campaign.serve`): starts the listener, drains votes and
        admin commands at the loop's drain points, and returns the
        campaign metrics once the intake closes and drains — or once
        :meth:`stop` pauses the loop."""
        self.start_listener()
        try:
            return self.campaign.serve(
                stop=self._stop,
                drain_hook=self._drain,
                tick=tick,
                tick_interval=tick_interval,
            )
        finally:
            self.mailbox.reject_all(
                ServerError("campaign is no longer serving")
            )

    def stop(self) -> None:
        """Ask a running :meth:`serve` to pause (graceful shutdown:
        checkpoint afterwards, resume later).  Does not close the
        intake — tasks accepted before the pause are checkpointed."""
        self._stop.set()
        self._kick()

    def close_intake(self, stop: bool = False) -> None:
        """Stop accepting tasks; with ``stop=True`` also pause the loop
        instead of letting it drain to completion."""
        self.campaign.close_intake()
        if stop:
            self.stop()
        else:
            self._kick()

    def shutdown(self) -> None:
        """Stop the HTTP listener (idempotent).  Separate from
        :meth:`stop`: the loop may keep draining after the listener is
        gone, and tests may keep the listener up across pauses."""
        if not self._shutdown:
            self._shutdown = True
            if self._listener is not None:
                # Only a running serve_forever can acknowledge
                # shutdown(); calling it before start_listener would
                # block forever on the never-set started event.
                self._httpd.shutdown()
            self._httpd.server_close()
            if self._listener is not None:
                self._listener.join(timeout=5.0)

    def __enter__(self) -> "CampaignServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------- status
    def status_payload(self) -> dict:
        """Observational snapshot for ``GET /status``.  Counter reads
        are lock-free (ints/bools); the barrier triple a seeded client
        fleet polls is ``idle and staged == 0 and queued_events == 0``."""
        campaign = self.campaign
        engine = campaign.engine
        ingest = campaign._ingest
        intake = ingest.intake
        metrics = engine.metrics
        offers = engine.offers
        coordinator = campaign.coordinator
        return {
            # Which process answered, and its seat-lease identity when
            # N engines share one worker pool (procpool coordination) —
            # lets an operator tell coordinated peers apart.
            "pid": os.getpid(),
            "coordinated": coordinator is not None,
            "lease_owner": None if coordinator is None else coordinator.owner,
            "lease_epoch": None if coordinator is None else coordinator.epoch,
            "serving": ingest.running,
            "idle": ingest.idle,
            "done": campaign.done,
            "vote_source": campaign.config.vote_source,
            "num_shards": campaign.config.num_shards,
            "submitted": metrics.submitted,
            "completed": metrics.completed,
            "votes_cast": metrics.votes_cast,
            "votes_cancelled": metrics.votes_cancelled,
            "active": len(engine._active),
            "deferred": len(engine._deferred),
            "queued_events": len(engine._queue),
            "staged": intake.pending,
            "intake_closed": intake.closed,
            "open_offers": None if offers is None else offers.open_count,
            "pending_commands": self.mailbox.pending,
            "uptime_seconds": time.monotonic() - self._started,
        }

    def retry_after_hint(self) -> int:
        """Backpressure advice (seconds) for 503 responses.

        A full intake drains at roughly one scheduler admit per
        ``batch_size`` staged tasks, so the honest hint is the time to
        work through a full buffer:
        ``admit_latency_ewma * (ingest_max_pending / batch_size)`` —
        the same EWMA that drives ``ingest_grace="auto"``.  Floored at
        1s (never invite a tighter retry loop than the old hardcoded
        hint) and capped at 60s (a heavy campaign should still be
        re-probed within the minute).  Before any admit has been
        observed the EWMA is unset and the floor is the hint.
        """
        ewma = getattr(self.campaign.engine, "admit_latency_ewma", None)
        if not ewma:
            return 1
        config = self.campaign.config
        backlog_admits = config.ingest_max_pending / max(
            config.batch_size, 1
        )
        return int(min(max(math.ceil(ewma * backlog_admits), 1), 60))

    # ----------------------------------------------------- command bodies
    def submit_tasks(self, payload: dict) -> dict:
        """``POST /tasks`` body → staged count.  Raises ``ValueError``
        (400/409) / ``IngestionOverflow`` (503) / ``IngestionClosed``
        (409) — mapped to HTTP statuses by the handler."""
        rows = payload.get("tasks")
        if not isinstance(rows, list) or not rows:
            raise ValueError("body must carry a non-empty 'tasks' list")
        start_time = float(payload.get("start_time", 0.0))
        spacing = float(payload.get("spacing", 1.0))
        tasks = []
        for row in rows:
            if not isinstance(row, dict):
                raise ValueError("each task must be an object")
            task_id = row.get("task_id")
            if not isinstance(task_id, str) or not task_id:
                raise ValueError("each task needs a non-empty 'task_id'")
            truth = row.get("ground_truth")
            tasks.append(
                EngineTask(
                    task_id,
                    prior=float(row.get("prior", 0.5)),
                    ground_truth=None if truth is None else int(truth),
                )
            )
        staged = self.campaign.submit(
            tasks, start_time, spacing, timeout=self.submit_timeout
        )
        return {"staged": staged}

    def apply_vote(self, task_id: str, worker_id: str, vote: int) -> dict:
        """Stage one vote for loop-thread application and wait for the
        outcome.  Claim + deliver run atomically at the loop's drain
        point — the same sequence :meth:`Campaign.vote` performs
        in-process."""
        campaign = self.campaign

        def _apply():
            campaign.offers.claim(task_id, worker_id)
            return campaign.engine.deliver_vote(task_id, worker_id, vote)

        applied = self.mailbox.call(_apply, timeout=self.command_timeout)
        return {"applied": bool(applied)}

    def checkpoint(self) -> dict:
        campaign = self.campaign
        self.mailbox.call(campaign.checkpoint, timeout=self.command_timeout)
        return {
            "checkpointed": True,
            "completed": campaign.metrics.completed,
        }


class _CampaignRequestHandler(BaseHTTPRequestHandler):
    """Routes one request against the bound :class:`CampaignServer`
    (subclassed per server instance with ``ctx`` set)."""

    ctx: CampaignServer  # bound by CampaignServer.__init__
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # --------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:
        # Access logging goes to the telemetry hub (if live), not
        # stderr — a serving daemon must not scale its console output
        # with traffic.
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status == 503:
            # Derived from the admit-latency EWMA: heavy campaigns get
            # a proportionally later retry instead of an instant storm.
            self.send_header(
                "Retry-After", str(self.ctx.retry_after_hint())
            )
        self.end_headers()
        self.wfile.write(body)
        self.ctx.campaign.telemetry.inc(
            "server.responses", route=self.path.split("?")[0], status=status
        )

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length_text = self.headers.get("Content-Length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise ValueError(f"bad Content-Length {length_text!r}")
        if length < 0:
            raise ValueError("negative Content-Length")
        if length > self.ctx.max_body:
            raise _PayloadTooLarge(length)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ValueError("body must be a JSON object")
        return payload

    # ----------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/status":
                self._send_json(200, self.ctx.status_payload())
            elif parsed.path == "/metrics":
                self._send_text(
                    200,
                    self.ctx.campaign.telemetry.render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif parsed.path == "/assignments":
                self._get_assignments(parsed)
            else:
                self._send_json(404, {"error": f"no route {parsed.path}"})
        except Exception as exc:  # pragma: no cover - defensive surface
            self._send_json(500, {"error": str(exc)})

    def _get_assignments(self, parsed) -> None:
        offers = self.ctx.campaign.engine.offers
        if offers is None:
            self._send_json(
                409,
                {
                    "error": "campaign simulates votes "
                    "(vote_source='simulated'); no assignments to offer"
                },
            )
            return
        query = parse_qs(parsed.query)
        workers = query.get("worker")
        if not workers or not workers[0]:
            self._send_json(
                400, {"error": "query parameter 'worker' is required"}
            )
            return
        worker_id = workers[0]
        self._send_json(
            200,
            {
                "worker": worker_id,
                "assignments": offers.for_worker(worker_id),
            },
        )

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urlparse(self.path)
        try:
            payload = self._read_json()
        except _PayloadTooLarge as exc:
            self._send_json(
                413,
                {
                    "error": f"body of {exc.length} bytes exceeds the "
                    f"{self.ctx.max_body}-byte cap"
                },
            )
            return
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            if parsed.path == "/tasks":
                self._post_tasks(payload)
            elif parsed.path == "/votes":
                self._post_vote(payload)
            elif parsed.path == "/admin/checkpoint":
                self._send_json(200, self.ctx.checkpoint())
            elif parsed.path == "/admin/close":
                mode = payload.get("mode", "drain")
                if mode not in ("drain", "stop"):
                    self._send_json(
                        400, {"error": "mode must be 'drain' or 'stop'"}
                    )
                    return
                self.ctx.close_intake(stop=(mode == "stop"))
                self._send_json(200, {"closing": mode})
            else:
                self._send_json(404, {"error": f"no route {parsed.path}"})
        except ServerError as exc:
            self._send_json(503, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive surface
            self._send_json(500, {"error": str(exc)})

    def _post_tasks(self, payload: dict) -> None:
        try:
            result = self.ctx.submit_tasks(payload)
        except IngestionOverflow as exc:
            self._send_json(503, {"error": str(exc)})
            return
        except IngestionClosed as exc:
            self._send_json(409, {"error": str(exc)})
            return
        except RuntimeError as exc:
            # _require_serving: the campaign already finished.
            self._send_json(409, {"error": str(exc)})
            return
        except (TypeError, ValueError) as exc:
            status = 409 if "duplicate" in str(exc) else 400
            self._send_json(status, {"error": str(exc)})
            return
        self._send_json(202, result)

    def _post_vote(self, payload: dict) -> None:
        if self.ctx.campaign.engine.offers is None:
            self._send_json(
                409,
                {
                    "error": "campaign simulates votes "
                    "(vote_source='simulated'); external votes rejected"
                },
            )
            return
        task_id = payload.get("task_id")
        worker_id = payload.get("worker_id")
        vote = payload.get("vote")
        if not isinstance(task_id, str) or not task_id:
            self._send_json(400, {"error": "'task_id' must be a string"})
            return
        if not isinstance(worker_id, str) or not worker_id:
            self._send_json(400, {"error": "'worker_id' must be a string"})
            return
        if not isinstance(vote, int) or isinstance(vote, bool) or vote not in (0, 1):
            self._send_json(400, {"error": "'vote' must be 0 or 1"})
            return
        try:
            result = self.ctx.apply_vote(task_id, worker_id, vote)
        except NoOpenOffer as exc:
            self._send_json(409, {"error": str(exc)})
            return
        self._send_json(200, result)


class _PayloadTooLarge(Exception):
    def __init__(self, length: int) -> None:
        super().__init__(f"payload of {length} bytes too large")
        self.length = length
