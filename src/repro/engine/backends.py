"""Pluggable persistent state backends for campaign checkpoints.

The DB-nets line of work (Montali & Rivkin) marries an event/net
execution layer to a relational token store, so processes survive
restarts and share state across executors.  This module is that store
for the campaign engine: a :class:`~repro.engine.campaign.Campaign`
serializes its complete serving state — worker registry (vote
histories, drifted quality estimates, seats, spend), answer matrix,
budget/allocator ledgers, shard membership, metrics, RNG state, the JQ
caches and frontier memos, and every pending event — into one
*snapshot* dict, and a :class:`StateBackend` persists it.

Snapshot contract (all values plain JSON types)::

    {
      "version":  1,
      "campaign": {...},   # config + event loop state (opaque JSON)
      "workers":  [row, ...],          # one dict per worker
      "votes":    [[worker_id, task_id, label, wpos, tpos], ...],
      "ledger":   {scope: {...}, ...}, # budget/allocator/shard ledgers
      "caches":   {cache_id: {...}, ...},  # serialized JQCaches
    }

Two implementations:

* :class:`MemoryBackend` — the default; keeps the snapshot in-process.
  Checkpoints survive ``Campaign.close()`` but not the process, which
  is exactly the pre-facade behavior made explicit.
* :class:`SQLiteBackend` — a WAL-mode SQLite file with ``campaign`` /
  ``workers`` / ``votes`` / ``ledger`` / ``cache`` tables.  Campaigns
  survive restarts; the WAL journal lets a reader (dashboard, another
  engine process warming its cache) inspect the file while a writer
  checkpoints.

Both round-trip floats exactly: SQLite ``REAL`` columns are IEEE
doubles, and JSON-encoded floats use ``repr`` shortest round-trip —
which is what makes a resumed campaign's metrics fingerprint
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Protocol, runtime_checkable

from ..core.exceptions import ReproError

#: Current snapshot layout version.
SNAPSHOT_VERSION = 1

#: Top-level sections every snapshot must carry.
SNAPSHOT_SECTIONS = ("campaign", "workers", "votes", "ledger", "caches")


class BackendError(ReproError, RuntimeError):
    """A state backend could not save or load a campaign snapshot."""


@runtime_checkable
class StateBackend(Protocol):
    """What the :class:`~repro.engine.campaign.Campaign` facade needs
    from a persistence layer.  Implement these four methods to plug in
    any store (Redis, Postgres, an object store...)."""

    def save(self, snapshot: dict) -> None:
        """Persist a snapshot, replacing any previous one."""
        ...

    def load(self) -> dict:
        """Return the last saved snapshot; raise :class:`BackendError`
        when none exists."""
        ...

    def exists(self) -> bool:
        """True when a snapshot is available to :meth:`load`."""
        ...

    def close(self) -> None:
        """Release any held resources (idempotent)."""
        ...


def _validate(snapshot: dict) -> None:
    missing = [s for s in SNAPSHOT_SECTIONS if s not in snapshot]
    if missing:
        raise BackendError(f"snapshot is missing sections {missing}")


class MemoryBackend:
    """In-process snapshot store (the default backend).

    Snapshots are stored through a JSON round trip, for two reasons:
    the held snapshot cannot alias live campaign state, and a restore
    sees *exactly* the value shapes (lists, not tuples) a disk backend
    would produce — so the memory and SQLite paths exercise identical
    restore code.
    """

    def __init__(self) -> None:
        self._payload: str | None = None

    def save(self, snapshot: dict) -> None:
        _validate(snapshot)
        self._payload = json.dumps(snapshot)

    def load(self) -> dict:
        if self._payload is None:
            raise BackendError("MemoryBackend holds no checkpoint")
        return json.loads(self._payload)

    def exists(self) -> bool:
        return self._payload is not None

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "empty" if self._payload is None else f"{len(self._payload)}B"
        return f"MemoryBackend({state})"


class SQLiteBackend:
    """Campaign state in a WAL-mode SQLite file.

    Schema (one campaign per file)::

        campaign(key TEXT PRIMARY KEY, value TEXT)    -- version, config
                                                      --  + event-loop JSON
        workers(position INTEGER PRIMARY KEY, worker_id TEXT UNIQUE, ...)
        votes(wpos INTEGER PRIMARY KEY, worker_id, task_id, label, tpos)
        ledger(scope TEXT PRIMARY KEY, value TEXT)    -- budget/allocator/
                                                      --  shard ledgers
        cache(cache_id TEXT, position INTEGER, key TEXT, value REAL,
              PRIMARY KEY(cache_id, position))        -- JQ-cache entries
                                                      --  in LRU order

    ``save`` replaces the whole snapshot inside one transaction, so a
    reader never observes a half-written checkpoint.
    """

    _WORKER_COLUMNS = (
        "position", "worker_id", "est_quality", "true_quality", "cost",
        "capacity", "active_tasks", "votes_cast", "agreements",
        "resolved_votes", "spend", "peak_load",
    )

    #: How long (ms) a writer waits on a locked database before
    #: sqlite raises.  WAL keeps ordinary readers out of writers' way,
    #: but a reader mid-transaction when the WAL needs checkpointing —
    #: or a second writer (another engine process warming its cache) —
    #: takes the lock briefly; without a busy timeout ``checkpoint()``
    #: would raise ``database is locked`` *immediately* instead of
    #: riding out a sub-second hold.
    DEFAULT_BUSY_TIMEOUT_MS = 5_000

    def __init__(self, path, busy_timeout_ms: int | None = None) -> None:
        self.path = str(path)
        self.busy_timeout_ms = (
            self.DEFAULT_BUSY_TIMEOUT_MS
            if busy_timeout_ms is None
            else int(busy_timeout_ms)
        )
        self._conn: sqlite3.Connection | None = None

    def _connect(self) -> sqlite3.Connection:
        """Open (and initialize) the database on first real use.

        Connecting lazily keeps mistakes cheap: resuming from a
        mistyped path raises :class:`BackendError` without littering
        the directory with an empty ``.db`` (+ WAL sidecars) that a
        later resume could be pointed at by accident.
        """
        if self._conn is None:
            # ``timeout`` installs the busy handler before the first
            # statement runs (the WAL/schema setup below already needs
            # it under contention); the PRAGMA keeps the value explicit
            # and introspectable on the live connection.
            # ``check_same_thread=False``: under ``repro serve`` the
            # connection is created by a checkpoint on the serving-loop
            # thread but closed from the main thread after the loop
            # exits.  Accesses are never concurrent — every save/load
            # happens on whichever single thread owns the campaign at
            # that moment — so only the same-thread assertion, not
            # actual serialization, is being waived.
            self._conn = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout_ms / 1000.0,
                check_same_thread=False,
            )
            self._conn.execute(
                f"PRAGMA busy_timeout={self.busy_timeout_ms}"
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._ensure_schema()
        return self._conn

    def _ensure_schema(self) -> None:
        with self._conn:
            self._conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS campaign(
                    key TEXT PRIMARY KEY, value TEXT NOT NULL);
                CREATE TABLE IF NOT EXISTS workers(
                    position INTEGER PRIMARY KEY,
                    worker_id TEXT UNIQUE NOT NULL,
                    est_quality REAL NOT NULL,
                    true_quality REAL NOT NULL,
                    cost REAL NOT NULL,
                    capacity INTEGER NOT NULL,
                    active_tasks TEXT NOT NULL,
                    votes_cast INTEGER NOT NULL,
                    agreements REAL NOT NULL,
                    resolved_votes INTEGER NOT NULL,
                    spend REAL NOT NULL,
                    peak_load INTEGER NOT NULL);
                CREATE TABLE IF NOT EXISTS votes(
                    wpos INTEGER PRIMARY KEY,
                    worker_id TEXT NOT NULL,
                    task_id TEXT NOT NULL,
                    label INTEGER NOT NULL,
                    tpos INTEGER NOT NULL,
                    UNIQUE(worker_id, task_id));
                CREATE TABLE IF NOT EXISTS ledger(
                    scope TEXT PRIMARY KEY, value TEXT NOT NULL);
                CREATE TABLE IF NOT EXISTS cache(
                    cache_id TEXT NOT NULL,
                    position INTEGER NOT NULL,
                    key TEXT NOT NULL,
                    value REAL NOT NULL,
                    PRIMARY KEY(cache_id, position));
                """
            )

    # ------------------------------------------------------------------
    # StateBackend surface
    # ------------------------------------------------------------------
    def save(self, snapshot: dict) -> None:
        _validate(snapshot)
        conn = self._connect()
        with conn:
            for table in ("campaign", "workers", "votes", "ledger", "cache"):
                conn.execute(f"DELETE FROM {table}")
            conn.execute(
                "INSERT INTO campaign VALUES ('version', ?)",
                (json.dumps(snapshot.get("version", SNAPSHOT_VERSION)),),
            )
            conn.execute(
                "INSERT INTO campaign VALUES ('campaign', ?)",
                (json.dumps(snapshot["campaign"]),),
            )
            conn.executemany(
                "INSERT INTO workers VALUES (?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    tuple(
                        json.dumps(row[c]) if c == "active_tasks" else row[c]
                        for c in self._WORKER_COLUMNS
                    )
                    for row in snapshot["workers"]
                ),
            )
            conn.executemany(
                "INSERT INTO votes VALUES (?,?,?,?,?)",
                (
                    (wpos, worker_id, task_id, label, tpos)
                    for worker_id, task_id, label, wpos, tpos
                    in snapshot["votes"]
                ),
            )
            conn.executemany(
                "INSERT INTO ledger VALUES (?,?)",
                (
                    (scope, json.dumps(value))
                    for scope, value in snapshot["ledger"].items()
                ),
            )
            for cache_id, cache_state in snapshot["caches"].items():
                conn.execute(
                    "INSERT INTO ledger VALUES (?,?)",
                    (
                        f"cache-meta:{cache_id}",
                        json.dumps(
                            {
                                k: cache_state[k]
                                for k in ("hits", "misses", "evictions")
                            }
                        ),
                    ),
                )
                conn.executemany(
                    "INSERT INTO cache VALUES (?,?,?,?)",
                    (
                        (cache_id, position, json.dumps(key), value)
                        for position, (key, value)
                        in enumerate(cache_state["entries"])
                    ),
                )

    def load(self) -> dict:
        if not os.path.exists(self.path):
            raise BackendError(f"{self.path} holds no campaign checkpoint")
        conn = self._connect()
        rows = dict(conn.execute("SELECT key, value FROM campaign"))
        if "campaign" not in rows:
            raise BackendError(f"{self.path} holds no campaign checkpoint")
        snapshot: dict = {
            "version": json.loads(rows["version"]),
            "campaign": json.loads(rows["campaign"]),
            "workers": [],
            "votes": [],
            "ledger": {},
            "caches": {},
        }
        for row in conn.execute(
            f"SELECT {', '.join(self._WORKER_COLUMNS)} FROM workers "
            "ORDER BY position"
        ):
            record = dict(zip(self._WORKER_COLUMNS, row))
            record["active_tasks"] = json.loads(record["active_tasks"])
            snapshot["workers"].append(record)
        snapshot["votes"] = [
            [worker_id, task_id, label, wpos, tpos]
            for wpos, worker_id, task_id, label, tpos in conn.execute(
                "SELECT wpos, worker_id, task_id, label, tpos FROM votes "
                "ORDER BY wpos"
            )
        ]
        cache_meta: dict[str, dict] = {}
        for scope, value in conn.execute("SELECT scope, value FROM ledger"):
            if scope.startswith("cache-meta:"):
                cache_meta[scope[len("cache-meta:"):]] = json.loads(value)
            else:
                snapshot["ledger"][scope] = json.loads(value)
        for cache_id, meta in cache_meta.items():
            entries = [
                [json.loads(key), value]
                for key, value in conn.execute(
                    "SELECT key, value FROM cache WHERE cache_id = ? "
                    "ORDER BY position",
                    (cache_id,),
                )
            ]
            snapshot["caches"][cache_id] = {**meta, "entries": entries}
        return snapshot

    def exists(self) -> bool:
        if not os.path.exists(self.path):
            return False
        row = self._connect().execute(
            "SELECT 1 FROM campaign WHERE key = 'campaign'"
        ).fetchone()
        return row is not None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteBackend({self.path!r})"
