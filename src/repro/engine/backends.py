"""Pluggable persistent state backends for campaign checkpoints.

The DB-nets line of work (Montali & Rivkin) marries an event/net
execution layer to a relational token store, so processes survive
restarts and share state across executors.  This module is that store
for the campaign engine: a :class:`~repro.engine.campaign.Campaign`
serializes its complete serving state — worker registry (vote
histories, drifted quality estimates, seats, spend), answer matrix,
budget/allocator ledgers, shard membership, metrics, RNG state, the JQ
caches and frontier memos, and every pending event — into one
*snapshot* dict, and a :class:`StateBackend` persists it.

Snapshot contract (all values plain JSON types)::

    {
      "version":  1,
      "campaign": {...},   # config + event loop state (opaque JSON)
      "workers":  [row, ...],          # one dict per worker
      "votes":    [[worker_id, task_id, label, wpos, tpos], ...],
      "ledger":   {scope: {...}, ...}, # budget/allocator/shard ledgers
      "caches":   {cache_id: {...}, ...},  # serialized JQCaches
    }

Two implementations:

* :class:`MemoryBackend` — the default; keeps the snapshot in-process.
  Checkpoints survive ``Campaign.close()`` but not the process, which
  is exactly the pre-facade behavior made explicit.
* :class:`SQLiteBackend` — a WAL-mode SQLite file with ``campaign`` /
  ``workers`` / ``votes`` / ``ledger`` / ``cache`` tables.  Campaigns
  survive restarts; the WAL journal lets a reader (dashboard, another
  engine process warming its cache) inspect the file while a writer
  checkpoints.

Both round-trip floats exactly: SQLite ``REAL`` columns are IEEE
doubles, and JSON-encoded floats use ``repr`` shortest round-trip —
which is what makes a resumed campaign's metrics fingerprint
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from typing import Protocol, runtime_checkable

from ..core.exceptions import ReproError

#: Current snapshot layout version.
SNAPSHOT_VERSION = 1

#: Top-level sections every snapshot must carry.
SNAPSHOT_SECTIONS = ("campaign", "workers", "votes", "ledger", "caches")


class BackendError(ReproError, RuntimeError):
    """A state backend could not save or load a campaign snapshot."""


class StaleEpochError(BackendError):
    """A lease operation carried a deposed registration epoch.

    Raised when an engine whose owner id has since re-registered (it
    crashed and restarted, or an operator replaced it) tries to touch
    leases under its old epoch — the fencing that keeps a zombie
    process from seating workers against leases it no longer owns.
    """


@runtime_checkable
class StateBackend(Protocol):
    """What the :class:`~repro.engine.campaign.Campaign` facade needs
    from a persistence layer.  Implement these four methods to plug in
    any store (Redis, Postgres, an object store...)."""

    def save(self, snapshot: dict) -> None:
        """Persist a snapshot, replacing any previous one."""
        ...

    def load(self) -> dict:
        """Return the last saved snapshot; raise :class:`BackendError`
        when none exists."""
        ...

    def exists(self) -> bool:
        """True when a snapshot is available to :meth:`load`."""
        ...

    def close(self) -> None:
        """Release any held resources (idempotent)."""
        ...


def _validate(snapshot: dict) -> None:
    missing = [s for s in SNAPSHOT_SECTIONS if s not in snapshot]
    if missing:
        raise BackendError(f"snapshot is missing sections {missing}")


class MemoryBackend:
    """In-process snapshot store (the default backend).

    Snapshots are stored through a JSON round trip, for two reasons:
    the held snapshot cannot alias live campaign state, and a restore
    sees *exactly* the value shapes (lists, not tuples) a disk backend
    would produce — so the memory and SQLite paths exercise identical
    restore code.
    """

    def __init__(self) -> None:
        self._payload: str | None = None

    def save(self, snapshot: dict) -> None:
        _validate(snapshot)
        self._payload = json.dumps(snapshot)

    def load(self) -> dict:
        if self._payload is None:
            raise BackendError("MemoryBackend holds no checkpoint")
        return json.loads(self._payload)

    def exists(self) -> bool:
        return self._payload is not None

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "empty" if self._payload is None else f"{len(self._payload)}B"
        return f"MemoryBackend({state})"


class SQLiteBackend:
    """Campaign state in a WAL-mode SQLite file.

    Schema (one campaign per file)::

        campaign(key TEXT PRIMARY KEY, value TEXT)    -- version, config
                                                      --  + event-loop JSON
        workers(position INTEGER PRIMARY KEY, worker_id TEXT UNIQUE, ...)
        votes(wpos INTEGER PRIMARY KEY, worker_id, task_id, label, tpos)
        ledger(scope TEXT PRIMARY KEY, value TEXT,
               version INTEGER)                       -- budget/allocator/
                                                      --  shard ledgers +
                                                      --  CAS version
        cache(cache_id TEXT, position INTEGER, key TEXT, value REAL,
              PRIMARY KEY(cache_id, position))        -- JQ-cache entries
                                                      --  in LRU order
        leases(worker_id, task_id, owner, epoch, expires,
               PRIMARY KEY(worker_id, task_id))       -- cross-process
                                                      --  seat leases
        engines(owner TEXT PRIMARY KEY, epoch, registered)

    ``save`` replaces the whole snapshot inside one transaction, so a
    reader never observes a half-written checkpoint.  The ``leases`` /
    ``engines`` tables (and the ledger ``version`` column) belong to the
    cross-process coordination layer
    (:mod:`repro.engine.procpool.coordinator`); ``save`` never touches
    them, so checkpointing one engine cannot clobber seats other engines
    hold in a shared coordination file.
    """

    _WORKER_COLUMNS = (
        "position", "worker_id", "est_quality", "true_quality", "cost",
        "capacity", "active_tasks", "votes_cast", "agreements",
        "resolved_votes", "spend", "peak_load",
    )

    #: How long (ms) a writer waits on a locked database before
    #: sqlite raises.  WAL keeps ordinary readers out of writers' way,
    #: but a reader mid-transaction when the WAL needs checkpointing —
    #: or a second writer (another engine process warming its cache) —
    #: takes the lock briefly; without a busy timeout ``checkpoint()``
    #: would raise ``database is locked`` *immediately* instead of
    #: riding out a sub-second hold.
    DEFAULT_BUSY_TIMEOUT_MS = 5_000

    def __init__(
        self, path, busy_timeout_ms: int | None = None, clock=None
    ) -> None:
        self.path = str(path)
        self.busy_timeout_ms = (
            self.DEFAULT_BUSY_TIMEOUT_MS
            if busy_timeout_ms is None
            else int(busy_timeout_ms)
        )
        # Lease expiry runs on the wall clock (the only clock shared
        # across processes and hosts); ``clock`` is injectable so the
        # skewed-clock degradation contract is testable.
        self._clock = time.time if clock is None else clock
        self._conn: sqlite3.Connection | None = None

    def _connect(self) -> sqlite3.Connection:
        """Open (and initialize) the database on first real use.

        Connecting lazily keeps mistakes cheap: resuming from a
        mistyped path raises :class:`BackendError` without littering
        the directory with an empty ``.db`` (+ WAL sidecars) that a
        later resume could be pointed at by accident.
        """
        if self._conn is None:
            # ``timeout`` installs the busy handler before the first
            # statement runs (the WAL/schema setup below already needs
            # it under contention); the PRAGMA keeps the value explicit
            # and introspectable on the live connection.
            # ``check_same_thread=False``: under ``repro serve`` the
            # connection is created by a checkpoint on the serving-loop
            # thread but closed from the main thread after the loop
            # exits.  Accesses are never concurrent — every save/load
            # happens on whichever single thread owns the campaign at
            # that moment — so only the same-thread assertion, not
            # actual serialization, is being waived.
            self._conn = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout_ms / 1000.0,
                check_same_thread=False,
            )
            self._conn.execute(
                f"PRAGMA busy_timeout={self.busy_timeout_ms}"
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._ensure_schema()
        return self._conn

    def _ensure_schema(self) -> None:
        with self._conn:
            self._conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS campaign(
                    key TEXT PRIMARY KEY, value TEXT NOT NULL);
                CREATE TABLE IF NOT EXISTS workers(
                    position INTEGER PRIMARY KEY,
                    worker_id TEXT UNIQUE NOT NULL,
                    est_quality REAL NOT NULL,
                    true_quality REAL NOT NULL,
                    cost REAL NOT NULL,
                    capacity INTEGER NOT NULL,
                    active_tasks TEXT NOT NULL,
                    votes_cast INTEGER NOT NULL,
                    agreements REAL NOT NULL,
                    resolved_votes INTEGER NOT NULL,
                    spend REAL NOT NULL,
                    peak_load INTEGER NOT NULL);
                CREATE TABLE IF NOT EXISTS votes(
                    wpos INTEGER PRIMARY KEY,
                    worker_id TEXT NOT NULL,
                    task_id TEXT NOT NULL,
                    label INTEGER NOT NULL,
                    tpos INTEGER NOT NULL,
                    UNIQUE(worker_id, task_id));
                CREATE TABLE IF NOT EXISTS ledger(
                    scope TEXT PRIMARY KEY, value TEXT NOT NULL,
                    version INTEGER NOT NULL DEFAULT 0);
                CREATE TABLE IF NOT EXISTS cache(
                    cache_id TEXT NOT NULL,
                    position INTEGER NOT NULL,
                    key TEXT NOT NULL,
                    value REAL NOT NULL,
                    PRIMARY KEY(cache_id, position));
                CREATE TABLE IF NOT EXISTS leases(
                    worker_id TEXT NOT NULL,
                    task_id TEXT NOT NULL,
                    owner TEXT NOT NULL,
                    epoch INTEGER NOT NULL,
                    expires REAL NOT NULL,
                    PRIMARY KEY(worker_id, task_id));
                CREATE TABLE IF NOT EXISTS engines(
                    owner TEXT PRIMARY KEY,
                    epoch INTEGER NOT NULL,
                    registered REAL NOT NULL);
                """
            )
            # Files written before the lease layer predate the ledger's
            # optimistic-concurrency column; add it in place so old
            # checkpoints keep loading (rows default to version 0).
            columns = [
                row[1]
                for row in self._conn.execute("PRAGMA table_info(ledger)")
            ]
            if "version" not in columns:
                self._conn.execute(
                    "ALTER TABLE ledger "
                    "ADD COLUMN version INTEGER NOT NULL DEFAULT 0"
                )

    # ------------------------------------------------------------------
    # StateBackend surface
    # ------------------------------------------------------------------
    def save(self, snapshot: dict) -> None:
        _validate(snapshot)
        conn = self._connect()
        with conn:
            for table in ("campaign", "workers", "votes", "ledger", "cache"):
                conn.execute(f"DELETE FROM {table}")
            conn.execute(
                "INSERT INTO campaign VALUES ('version', ?)",
                (json.dumps(snapshot.get("version", SNAPSHOT_VERSION)),),
            )
            conn.execute(
                "INSERT INTO campaign VALUES ('campaign', ?)",
                (json.dumps(snapshot["campaign"]),),
            )
            conn.executemany(
                "INSERT INTO workers VALUES (?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    tuple(
                        json.dumps(row[c]) if c == "active_tasks" else row[c]
                        for c in self._WORKER_COLUMNS
                    )
                    for row in snapshot["workers"]
                ),
            )
            conn.executemany(
                "INSERT INTO votes VALUES (?,?,?,?,?)",
                (
                    (wpos, worker_id, task_id, label, tpos)
                    for worker_id, task_id, label, wpos, tpos
                    in snapshot["votes"]
                ),
            )
            conn.executemany(
                "INSERT INTO ledger(scope, value) VALUES (?,?)",
                (
                    (scope, json.dumps(value))
                    for scope, value in snapshot["ledger"].items()
                ),
            )
            for cache_id, cache_state in snapshot["caches"].items():
                conn.execute(
                    "INSERT INTO ledger(scope, value) VALUES (?,?)",
                    (
                        f"cache-meta:{cache_id}",
                        json.dumps(
                            {
                                k: cache_state[k]
                                for k in ("hits", "misses", "evictions")
                            }
                        ),
                    ),
                )
                conn.executemany(
                    "INSERT INTO cache VALUES (?,?,?,?)",
                    (
                        (cache_id, position, json.dumps(key), value)
                        for position, (key, value)
                        in enumerate(cache_state["entries"])
                    ),
                )

    def load(self) -> dict:
        if not os.path.exists(self.path):
            raise BackendError(f"{self.path} holds no campaign checkpoint")
        conn = self._connect()
        rows = dict(conn.execute("SELECT key, value FROM campaign"))
        if "campaign" not in rows:
            raise BackendError(f"{self.path} holds no campaign checkpoint")
        snapshot: dict = {
            "version": json.loads(rows["version"]),
            "campaign": json.loads(rows["campaign"]),
            "workers": [],
            "votes": [],
            "ledger": {},
            "caches": {},
        }
        for row in conn.execute(
            f"SELECT {', '.join(self._WORKER_COLUMNS)} FROM workers "
            "ORDER BY position"
        ):
            record = dict(zip(self._WORKER_COLUMNS, row))
            record["active_tasks"] = json.loads(record["active_tasks"])
            snapshot["workers"].append(record)
        snapshot["votes"] = [
            [worker_id, task_id, label, wpos, tpos]
            for wpos, worker_id, task_id, label, tpos in conn.execute(
                "SELECT wpos, worker_id, task_id, label, tpos FROM votes "
                "ORDER BY wpos"
            )
        ]
        cache_meta: dict[str, dict] = {}
        for scope, value in conn.execute("SELECT scope, value FROM ledger"):
            if scope.startswith("cache-meta:"):
                cache_meta[scope[len("cache-meta:"):]] = json.loads(value)
            else:
                snapshot["ledger"][scope] = json.loads(value)
        for cache_id, meta in cache_meta.items():
            entries = [
                [json.loads(key), value]
                for key, value in conn.execute(
                    "SELECT key, value FROM cache WHERE cache_id = ? "
                    "ORDER BY position",
                    (cache_id,),
                )
            ]
            snapshot["caches"][cache_id] = {**meta, "entries": entries}
        return snapshot

    def exists(self) -> bool:
        if not os.path.exists(self.path):
            return False
        row = self._connect().execute(
            "SELECT 1 FROM campaign WHERE key = 'campaign'"
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # Cross-process coordination: seat leases + epoch fencing
    # ------------------------------------------------------------------
    # These methods back repro.engine.procpool.coordinator.  Every
    # mutation runs inside one BEGIN IMMEDIATE transaction: the write
    # lock is taken up front, so a check-then-insert (count seats, then
    # lease one) is atomic against every other engine process sharing
    # the file — two engines racing a worker's last seat serialize on
    # the database and exactly one wins.

    @contextmanager
    def _immediate(self):
        """One write transaction holding the lock from the first read."""
        conn = self._connect()
        if conn.in_transaction:  # pragma: no cover - defensive
            conn.commit()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.rollback()
            raise
        else:
            conn.commit()

    @staticmethod
    def _check_epoch(conn, owner: str, epoch: int) -> None:
        row = conn.execute(
            "SELECT epoch FROM engines WHERE owner = ?", (owner,)
        ).fetchone()
        if row is None or int(row[0]) != int(epoch):
            current = "unregistered" if row is None else f"epoch {row[0]}"
            raise StaleEpochError(
                f"engine {owner!r} holds stale epoch {epoch} ({current})"
            )

    @staticmethod
    def _purge_expired(conn, now: float) -> None:
        """Reclaim expired leases — and *depose* their owners.

        Expiry runs on the wall clock, which NTP can step under a live
        engine.  Deleting a lease without fencing its owner would let
        the (possibly still healthy) owner keep operating while a peer
        re-seats the same worker — double-seating, the exact failure
        the lease layer exists to prevent.  Bumping the owner's epoch
        here turns every later write from that incarnation into
        :class:`StaleEpochError`: a skewed clock degrades to a fenced
        engine, never to two engines on one seat.
        """
        owners = [
            row[0]
            for row in conn.execute(
                "SELECT DISTINCT owner FROM leases WHERE expires <= ?",
                (now,),
            )
        ]
        if not owners:
            return
        conn.execute("DELETE FROM leases WHERE expires <= ?", (now,))
        conn.executemany(
            "UPDATE engines SET epoch = epoch + 1 WHERE owner = ?",
            [(owner,) for owner in owners],
        )

    def register_engine(self, owner: str) -> int:
        """Register (or re-register) an engine owner; returns its epoch.

        Re-registration bumps the epoch, deposing any earlier
        incarnation of the same owner id: the zombie's subsequent lease
        calls fail with :class:`StaleEpochError`, and its leases —
        now unrenewable — expire back into the pool.
        """
        now = self._clock()
        with self._immediate() as conn:
            conn.execute(
                "INSERT INTO engines(owner, epoch, registered) "
                "VALUES (?, 1, ?) "
                "ON CONFLICT(owner) DO UPDATE SET "
                "epoch = epoch + 1, registered = excluded.registered",
                (owner, now),
            )
            (epoch,) = conn.execute(
                "SELECT epoch FROM engines WHERE owner = ?", (owner,)
            ).fetchone()
            return int(epoch)

    def acquire_lease(
        self,
        worker_id: str,
        task_id: str,
        owner: str,
        epoch: int,
        ttl: float,
        capacity: int,
    ) -> bool:
        """Atomically lease one ``(worker, task)`` seat.

        Inside a single immediate transaction: purge expired leases
        (a crashed engine's seats return to the pool here, and their
        owners are deposed — see :meth:`_purge_expired`), fence the
        caller's epoch, count the worker's live seats against
        ``capacity``, and insert.  Returns ``False`` when the worker is
        saturated across all engines or the seat is already leased.
        Purging before the fence means a caller whose *own* leases just
        expired (e.g. a forward clock step) gets
        :class:`StaleEpochError` instead of silently re-seating.
        """
        now = self._clock()
        with self._immediate() as conn:
            self._purge_expired(conn, now)
            self._check_epoch(conn, owner, epoch)
            (held,) = conn.execute(
                "SELECT COUNT(*) FROM leases WHERE worker_id = ?",
                (worker_id,),
            ).fetchone()
            if held >= capacity:
                return False
            try:
                conn.execute(
                    "INSERT INTO leases VALUES (?,?,?,?,?)",
                    (worker_id, task_id, owner, int(epoch), now + ttl),
                )
            except sqlite3.IntegrityError:
                return False
            return True

    def release_lease(
        self, worker_id: str, task_id: str, owner: str, epoch=None
    ) -> bool:
        """Drop one seat lease if this owner holds it (idempotent).

        With ``epoch`` given, only that incarnation's row is dropped —
        a deposed zombie releasing on shutdown cannot delete a seat its
        successor re-acquired under a newer epoch.
        """
        with self._immediate() as conn:
            query = (
                "DELETE FROM leases "
                "WHERE worker_id = ? AND task_id = ? AND owner = ?"
            )
            params = [worker_id, task_id, owner]
            if epoch is not None:
                query += " AND epoch = ?"
                params.append(int(epoch))
            cursor = conn.execute(query, params)
            return cursor.rowcount > 0

    def renew_leases(self, owner: str, epoch: int, ttl: float) -> int:
        """Extend every lease the owner still has on file; returns the
        count.

        Fences on epoch first — a deposed engine cannot keep its zombie
        leases alive by renewing them.  Two clock-skew safeties beyond
        the fence:

        * the new expiry is ``MAX(expires, now + ttl)`` — a backward
          clock step can never *shorten* a lease;
        * rows are renewed even when ``expires`` already passed, as
          long as no peer purged them yet (purging deposes the owner,
          which the fence above catches).  A briefly-late but healthy
          engine keeps its seats; one that actually lost them learns so
          via :class:`StaleEpochError`, not by silently renewing a seat
          someone else now holds.
        """
        now = self._clock()
        with self._immediate() as conn:
            self._check_epoch(conn, owner, epoch)
            cursor = conn.execute(
                "UPDATE leases SET expires = MAX(expires, ?) "
                "WHERE owner = ? AND epoch = ?",
                (now + ttl, owner, int(epoch)),
            )
            return cursor.rowcount

    def count_leases(self, worker_id: str) -> int:
        """The worker's live seat count across all engines (expired
        leases are purged first, deposing their owners)."""
        now = self._clock()
        with self._immediate() as conn:
            self._purge_expired(conn, now)
            (held,) = conn.execute(
                "SELECT COUNT(*) FROM leases WHERE worker_id = ?",
                (worker_id,),
            ).fetchone()
            return int(held)

    def release_owner(self, owner: str, epoch=None) -> int:
        """Drop every lease an owner holds (graceful shutdown);
        returns the number released.  With ``epoch`` given, only that
        incarnation's rows are dropped (zombie-shutdown safety, as in
        :meth:`release_lease`)."""
        with self._immediate() as conn:
            query = "DELETE FROM leases WHERE owner = ?"
            params = [owner]
            if epoch is not None:
                query += " AND epoch = ?"
                params.append(int(epoch))
            cursor = conn.execute(query, params)
            return cursor.rowcount

    def list_leases(self) -> list[tuple]:
        """Live ``(worker_id, task_id, owner, epoch, expires)`` rows —
        observability for tests and the ``/status`` endpoint."""
        now = self._clock()
        return list(
            self._connect().execute(
                "SELECT worker_id, task_id, owner, epoch, expires "
                "FROM leases WHERE expires > ? ORDER BY worker_id, task_id",
                (now,),
            )
        )

    # ------------------------------------------------------------------
    # Optimistic concurrency on the ledger
    # ------------------------------------------------------------------
    def read_ledger(self, scope: str):
        """Return ``(value, version)`` for one ledger scope, or ``None``
        when the scope does not exist."""
        row = self._connect().execute(
            "SELECT value, version FROM ledger WHERE scope = ?", (scope,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0]), int(row[1])

    def cas_ledger(self, scope: str, value, expected_version=None) -> bool:
        """Compare-and-swap one ledger scope.

        With ``expected_version=None`` the scope must not exist yet
        (create); otherwise the write lands only if the stored version
        still matches, and bumps it.  Returns ``False`` on a lost race —
        the caller re-reads and retries (see
        ``LeaseCoordinator.update_shared_ledger``).
        """
        payload = json.dumps(value)
        with self._immediate() as conn:
            if expected_version is None:
                try:
                    conn.execute(
                        "INSERT INTO ledger(scope, value, version) "
                        "VALUES (?, ?, 1)",
                        (scope, payload),
                    )
                except sqlite3.IntegrityError:
                    return False
                return True
            cursor = conn.execute(
                "UPDATE ledger SET value = ?, version = version + 1 "
                "WHERE scope = ? AND version = ?",
                (payload, scope, int(expected_version)),
            )
            return cursor.rowcount == 1

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteBackend({self.path!r})"
